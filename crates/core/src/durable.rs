//! Crash recovery: last-known-good snapshot chain + journal tail replay.
//!
//! A data directory persists a serving store as two artifacts:
//!
//! * `snapshot.<seq>.json` — checksummed [`StoreSnapshot`] **generations**
//!   (see [`StoreSnapshot::write_atomic`] and the v2 framing in
//!   [`crate::snapshot`]), one per checkpoint, newest-K retained. `<seq>`
//!   is the WAL sequence number the snapshot covers, so recovery knows
//!   where replay must resume *per generation*. A bare `snapshot.json`
//!   from the pre-chain format is still honored as the oldest fallback.
//! * `wal.<seq>.log` — journal segments holding every acked edge (see
//!   [`crate::journal`]), retained back to the **oldest** generation so
//!   any retained snapshot can still replay forward.
//!
//! [`recover`] rebuilds the store the crashed process promised its
//! clients: verify and load the newest snapshot generation, falling back
//! generation-by-generation past corrupt ones (each is quarantined and
//! counted in `snapshot.fallbacks_total`), then re-apply every journal
//! entry past the loaded generation's seq. Because journal appends happen
//! before acks and snapshots are written atomically, the recovered store
//! contains **every acked edge** short of media corruption — and media
//! corruption is never silent: corrupt WAL records are quarantined and
//! reported (see [`ReplayReport`]), corrupt snapshots are skipped and
//! counted.
//!
//! [`checkpoint`] is the other half of the contract: write the new
//! generation atomically *first*, then trim retention and prune journal
//! segments older than the oldest retained generation. If the process
//! dies between the steps, recovery merely replays entries the snapshot
//! already covers — [`crate::journal::replay`] skips them by sequence
//! number.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::SketchConfig;
use crate::journal::{self, Journal, ReplayReport};
use crate::snapshot::StoreSnapshot;
use crate::store::SketchStore;

/// How many snapshot generations a checkpoint retains by default.
pub const DEFAULT_SNAPSHOT_KEEP: usize = 3;

/// The legacy (pre-generation) snapshot file inside a data directory.
#[must_use]
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.json")
}

/// The snapshot generation covering WAL entries up to and including
/// `seq`.
#[must_use]
pub fn generation_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot.{seq}.json"))
}

/// Lists `(seq, path)` for every snapshot generation in `dir`, sorted by
/// seq ascending. The legacy `snapshot.json` is not a generation and is
/// not listed.
///
/// # Errors
/// Fails if the directory cannot be read; a missing directory lists as
/// empty.
pub fn list_generations(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut generations = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name
            .strip_prefix("snapshot.")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|seq| seq.parse::<u64>().ok())
        else {
            continue;
        };
        generations.push((seq, entry.path()));
    }
    generations.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(generations)
}

/// What [`recover`] rebuilt and from where.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered store, ready to serve.
    pub store: SketchStore,
    /// WAL seq covered by the snapshot that seeded recovery (0 when
    /// starting empty). Journal replay resumed after this seq.
    pub snapshot_seq: u64,
    /// Whether any snapshot (generation or legacy) was loaded.
    pub snapshot_loaded: bool,
    /// Corrupt snapshot generations skipped (and quarantined) on the way
    /// to the one that loaded.
    pub fallbacks: u64,
    /// Journal replay details (entries applied/skipped/quarantined, torn
    /// tail).
    pub journal: ReplayReport,
}

impl Recovery {
    /// The seq the next journal append should carry: one past everything
    /// this recovery has seen (snapshot watermark and replayed tail
    /// alike), so seqs never collide even when corrupt records were
    /// quarantined and the store's edge count runs behind the WAL.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.journal
            .last_seq
            .unwrap_or(0)
            .max(self.snapshot_seq)
            .saturating_add(1)
    }
}

/// Rebuilds the store from `dir`: best verified snapshot first, then the
/// journal tail.
///
/// Generations are tried newest-first; one that fails verification or
/// parsing is moved into `quarantine/` and counted, and the next older
/// one is tried — the last-known-good chain. If no generation loads, the
/// legacy `snapshot.json` is tried the same way; if nothing loads at
/// all, recovery starts from an empty store built with `config` and
/// relies on journal replay alone. When a snapshot loads, its embedded
/// config wins (the journal tail must be applied with the same hashers
/// that produced the snapshot).
///
/// # Errors
/// Fails on *environmental* IO errors (unreadable directory,
/// permissions). Corruption is not an error — it is skipped, quarantined,
/// and reported in the returned [`Recovery`].
pub fn recover(dir: &Path, config: SketchConfig) -> io::Result<Recovery> {
    let metrics = crate::metrics::global();
    let mut fallbacks = 0u64;
    let mut loaded: Option<(StoreSnapshot, u64)> = None;

    let generations = list_generations(dir)?;
    for (seq, path) in generations.iter().rev() {
        match StoreSnapshot::read_from(path) {
            Ok(snap) => {
                loaded = Some((snap, *seq));
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                journal::quarantine_file(dir, path);
                fallbacks += 1;
                metrics.snapshot_fallbacks.incr();
            }
            Err(e) => return Err(e),
        }
    }
    if loaded.is_none() {
        // Pre-generation directories: a single unversioned snapshot.
        match StoreSnapshot::read_from(&snapshot_path(dir)) {
            Ok(snap) => {
                let seq = snap.edges_processed;
                loaded = Some((snap, seq));
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                journal::quarantine_file(dir, &snapshot_path(dir));
                fallbacks += 1;
                metrics.snapshot_fallbacks.incr();
            }
            Err(e) => return Err(e),
        }
    }

    let (mut store, snapshot_seq, snapshot_loaded) = match loaded {
        Some((snap, seq)) => (snap.restore(), seq, true),
        None => (SketchStore::new(config), 0, false),
    };
    let journal = journal::replay(dir, snapshot_seq, |entry| {
        store.insert_edge(entry.u, entry.v);
    })?;
    metrics
        .snapshot_generations_kept
        .set(list_generations(dir)?.len() as u64);
    Ok(Recovery {
        store,
        snapshot_seq,
        snapshot_loaded,
        fallbacks,
        journal,
    })
}

/// Persists `snapshot` as the generation covering WAL seqs up to and
/// including `wal_seq`, trims retention to the newest `keep` generations,
/// then prunes journal segments older than the **oldest retained**
/// generation (so every retained generation can still replay forward).
/// Returns the number of journal segments removed.
///
/// Order matters: the snapshot must be durable before any journal entry
/// covering the same edges is deleted. Callers capture `snapshot` and
/// rotate `journal` to `wal_seq + 1` under the store lock, then call this
/// without it. The legacy `snapshot.json`, if present, is removed once a
/// generation exists — it is strictly older than the generation just
/// written, and leaving it would let a future fallback resurrect
/// pre-pruning state as if it were current.
///
/// # Errors
/// Fails on IO errors — real or injected via the journal's
/// [`crate::chaos::FaultPlan`]. A failure after the snapshot write leaves
/// extra generations or journal segments behind, which is safe (replay
/// skips covered entries; retention re-trims next checkpoint).
pub fn checkpoint(
    snapshot: &StoreSnapshot,
    wal_seq: u64,
    dir: &Path,
    journal: &mut Journal,
    keep: usize,
) -> io::Result<usize> {
    let metrics = crate::metrics::global();
    let _t = crate::trace::op("checkpoint");
    let start = std::time::Instant::now();
    let result = checkpoint_inner(snapshot, wal_seq, dir, journal, keep);
    match &result {
        Ok(_) => {
            metrics.checkpoints.incr();
            metrics.checkpoint_latency.observe(start);
        }
        Err(_) => {
            metrics.checkpoint_failures.incr();
        }
    }
    result
}

fn checkpoint_inner(
    snapshot: &StoreSnapshot,
    wal_seq: u64,
    dir: &Path,
    journal: &mut Journal,
    keep: usize,
) -> io::Result<usize> {
    if let Some(plan) = journal.faults() {
        plan.next_snapshot()?;
    }
    // Snapshots follow the journal's format choice, so one `--format`
    // flag governs the whole data directory.
    snapshot.write_atomic_as(&generation_path(dir, wal_seq), journal.format())?;
    match fs::remove_file(snapshot_path(dir)) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let mut generations = list_generations(dir)?;
    let keep = keep.max(1);
    while generations.len() > keep {
        let (_, path) = generations.remove(0);
        fs::remove_file(&path)?;
    }
    crate::metrics::global()
        .snapshot_generations_kept
        .set(generations.len() as u64);
    let oldest_retained = generations.first().map_or(wal_seq, |(seq, _)| *seq);
    journal.prune_below(oldest_retained)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{self, FaultPlan};
    use crate::journal::{FsyncPolicy, JournalEntry, QUARANTINE_DIR};
    use graphstream::{BarabasiAlbert, EdgeStream, VertexId};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "streamlink-durable-{}-{tag}-{n}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg() -> SketchConfig {
        SketchConfig::with_slots(32).seed(9)
    }

    /// Simulates a serving process: journal-then-apply for each edge,
    /// seq taken from the journal (not the store count).
    fn ingest(store: &mut SketchStore, journal: &mut Journal, u: u64, v: u64) {
        let seq = journal.next_seq();
        journal
            .append(JournalEntry {
                seq,
                u: VertexId(u),
                v: VertexId(v),
            })
            .unwrap();
        store.insert_edge(VertexId(u), VertexId(v));
    }

    /// The serving checkpoint protocol: capture + rotate (under the store
    /// lock in real serving), then write + trim + prune.
    fn run_checkpoint(store: &SketchStore, dir: &Path, journal: &mut Journal, keep: usize) {
        let snap = StoreSnapshot::capture(store);
        let wal_seq = journal.next_seq() - 1;
        journal.rotate(wal_seq + 1).unwrap();
        checkpoint(&snap, wal_seq, dir, journal, keep).unwrap();
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = temp_dir("fresh");
        let rec = recover(&dir, cfg()).unwrap();
        assert!(!rec.snapshot_loaded);
        assert_eq!(rec.snapshot_seq, 0);
        assert_eq!(rec.fallbacks, 0);
        assert_eq!(rec.store.edges_processed(), 0);
        assert_eq!(rec.journal, ReplayReport::default());
        assert_eq!(rec.next_seq(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_only_recovery_matches_direct_ingestion() {
        let dir = temp_dir("walonly");
        let edges: Vec<_> = BarabasiAlbert::new(80, 2, 3).edges().collect();

        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::OnRotate).unwrap();
        for e in &edges {
            ingest(&mut store, &mut journal, e.src.0, e.dst.0);
        }
        drop(journal); // crash: no snapshot ever written

        let rec = recover(&dir, cfg()).unwrap();
        assert!(!rec.snapshot_loaded);
        assert_eq!(rec.journal.replayed, edges.len() as u64);
        assert_eq!(rec.store.edges_processed(), store.edges_processed());
        for v in store.vertices() {
            assert_eq!(rec.store.sketch(v), store.sketch(v), "sketch at {v}");
            assert_eq!(rec.store.degree(v), store.degree(v));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_v3_chain_checkpoints_and_recovers() {
        // The full v3 recovery chain: binary WAL, binary snapshot
        // generation (the checkpoint follows the journal's format), and
        // a crash with a journal tail to replay.
        let dir = temp_dir("v3chain");
        let edges: Vec<_> = BarabasiAlbert::new(120, 2, 4).edges().collect();
        let cut = edges.len() / 2;

        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create_with_format(
            &dir,
            1,
            FsyncPolicy::OnRotate,
            crate::codec::WireFormat::BinaryV3,
            None,
        )
        .unwrap();
        for e in &edges[..cut] {
            ingest(&mut store, &mut journal, e.src.0, e.dst.0);
        }
        run_checkpoint(&store, &dir, &mut journal, DEFAULT_SNAPSHOT_KEEP);
        for e in &edges[cut..] {
            ingest(&mut store, &mut journal, e.src.0, e.dst.0);
        }
        drop(journal); // crash

        let generations = list_generations(&dir).unwrap();
        let (_, gen_path) = generations.last().unwrap();
        assert!(
            crate::codec::is_binary(&fs::read(gen_path).unwrap()),
            "the generation file must be a binary envelope"
        );

        let rec = recover(&dir, cfg()).unwrap();
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.journal.replayed, (edges.len() - cut) as u64);
        assert_eq!(rec.store.edges_processed(), store.edges_processed());
        for v in store.vertices() {
            assert_eq!(rec.store.sketch(v), store.sketch(v), "sketch at {v}");
            assert_eq!(rec.store.degree(v), store.degree(v));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_tail_recovery() {
        let dir = temp_dir("snaptail");
        let edges: Vec<_> = BarabasiAlbert::new(120, 2, 4).edges().collect();
        let cut = edges.len() / 2;

        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::OnRotate).unwrap();
        for e in &edges[..cut] {
            ingest(&mut store, &mut journal, e.src.0, e.dst.0);
        }
        run_checkpoint(&store, &dir, &mut journal, DEFAULT_SNAPSHOT_KEEP);
        for e in &edges[cut..] {
            ingest(&mut store, &mut journal, e.src.0, e.dst.0);
        }
        drop(journal); // crash after more ingestion

        let rec = recover(&dir, cfg()).unwrap();
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.snapshot_seq, cut as u64);
        assert_eq!(rec.journal.replayed, (edges.len() - cut) as u64);
        assert_eq!(rec.store.edges_processed(), edges.len() as u64);
        assert_eq!(rec.next_seq(), edges.len() as u64 + 1);
        for v in store.vertices() {
            assert_eq!(rec.store.sketch(v), store.sketch(v), "sketch at {v}");
            assert_eq!(rec.store.degree(v), store.degree(v));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_snapshot_and_prune_is_harmless() {
        let dir = temp_dir("nopurge");
        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for i in 0..10 {
            ingest(&mut store, &mut journal, i, i + 100);
        }
        let snap = StoreSnapshot::capture(&store);
        journal.rotate(11).unwrap();
        // Snapshot written but trim/prune never ran (crash in between):
        // the old segment's entries are all covered by the snapshot.
        snap.write_atomic(&generation_path(&dir, 10)).unwrap();
        drop(journal);

        let rec = recover(&dir, cfg()).unwrap();
        assert_eq!(rec.journal.replayed, 0);
        assert_eq!(rec.journal.skipped, 10);
        assert_eq!(rec.store.edges_processed(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_config_wins_over_caller_config() {
        let dir = temp_dir("cfgwins");
        let mut store = SketchStore::new(cfg());
        store.insert_edge(VertexId(1), VertexId(2));
        StoreSnapshot::capture(&store)
            .write_atomic(&generation_path(&dir, 1))
            .unwrap();

        let other = SketchConfig::with_slots(64).seed(123);
        let rec = recover(&dir, other).unwrap();
        assert_eq!(rec.store.config().slots(), cfg().slots());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_generation_falls_back_to_older_one() {
        let dir = temp_dir("fallback");
        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for i in 0..6 {
            ingest(&mut store, &mut journal, i, i + 100);
        }
        run_checkpoint(&store, &dir, &mut journal, 3);
        for i in 6..10 {
            ingest(&mut store, &mut journal, i, i + 100);
        }
        run_checkpoint(&store, &dir, &mut journal, 3);
        drop(journal);

        // Rot the newest generation mid-payload.
        chaos::flip_bit(&generation_path(&dir, 10), 60, 3).unwrap();

        let rec = recover(&dir, cfg()).unwrap();
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.fallbacks, 1, "one generation skipped");
        assert_eq!(rec.snapshot_seq, 6, "older generation seeded recovery");
        // WAL back to the oldest retained generation is intact, so the
        // fallback replays the tail and nothing is lost.
        assert_eq!(rec.journal.replayed, 4);
        assert_eq!(rec.store.edges_processed(), 10);
        for v in store.vertices() {
            assert_eq!(rec.store.sketch(v), store.sketch(v), "sketch at {v}");
        }
        // The corrupt generation was quarantined, not left to fail again.
        assert!(!generation_path(&dir, 10).exists());
        assert!(dir.join(QUARANTINE_DIR).join("snapshot.10.json").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_generations_corrupt_falls_back_to_journal_replay() {
        // The old behavior was a hard error; self-healing recovery keeps
        // every acked edge by replaying the full WAL instead.
        let dir = temp_dir("allcorrupt");
        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for i in 0..8 {
            ingest(&mut store, &mut journal, i, i + 100);
        }
        let snap = StoreSnapshot::capture(&store);
        journal.rotate(9).unwrap();
        snap.write_atomic(&generation_path(&dir, 8)).unwrap();
        // No prune ran, so the WAL still holds seqs 1..=8.
        drop(journal);
        fs::write(generation_path(&dir, 8), b"{ not a snapshot").unwrap();

        let rec = recover(&dir, cfg()).unwrap();
        assert!(!rec.snapshot_loaded);
        assert_eq!(rec.fallbacks, 1);
        assert_eq!(rec.journal.replayed, 8);
        assert_eq!(rec.store.edges_processed(), 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_legacy_snapshot_is_quarantined_not_fatal() {
        let dir = temp_dir("legacycorrupt");
        fs::write(snapshot_path(&dir), b"{ not json").unwrap();
        let rec = recover(&dir, cfg()).unwrap();
        assert!(!rec.snapshot_loaded);
        assert_eq!(rec.fallbacks, 1);
        assert!(!snapshot_path(&dir).exists());
        assert!(dir.join(QUARANTINE_DIR).join("snapshot.json").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_data_directory_loads_unmodified() {
        // A directory written entirely by the pre-CRC format: bare-JSON
        // snapshot.json plus v1 `E` journal lines.
        let dir = temp_dir("v1dir");
        let mut store = SketchStore::new(cfg());
        for i in 0..5 {
            store.insert_edge(VertexId(i), VertexId(i + 10));
        }
        let snap = StoreSnapshot::capture(&store);
        fs::write(snapshot_path(&dir), serde_json::to_string(&snap).unwrap()).unwrap();
        fs::write(dir.join("wal.6.log"), "E 6 5 15\nE 7 6 16\n").unwrap();

        let rec = recover(&dir, cfg()).unwrap();
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.snapshot_seq, 5);
        assert_eq!(rec.fallbacks, 0);
        assert_eq!(rec.journal.replayed, 2);
        assert_eq!(rec.store.edges_processed(), 7);
        assert_eq!(rec.next_seq(), 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_newest_k_generations_and_their_wal() {
        let dir = temp_dir("retain");
        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        let mut next = 0;
        for round in 1..=4u64 {
            for _ in 0..3 {
                ingest(&mut store, &mut journal, next, next + 1000);
                next += 1;
            }
            run_checkpoint(&store, &dir, &mut journal, 2);
            let gens = list_generations(&dir).unwrap();
            assert!(gens.len() <= 2, "round {round}: {gens:?}");
        }
        let gens = list_generations(&dir).unwrap();
        assert_eq!(
            gens.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![9, 12],
            "newest two generations retained"
        );
        // WAL must still cover the oldest retained generation's tail:
        // falling back to gen 9 needs seqs 10.. available.
        drop(journal);
        fs::remove_file(generation_path(&dir, 12)).unwrap();
        let rec = recover(&dir, cfg()).unwrap();
        assert_eq!(rec.snapshot_seq, 9);
        assert_eq!(rec.journal.replayed, 3);
        assert_eq!(rec.store.edges_processed(), 12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_removes_legacy_snapshot_file() {
        let dir = temp_dir("legacygone");
        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        ingest(&mut store, &mut journal, 1, 2);
        fs::write(snapshot_path(&dir), b"{}").unwrap();
        run_checkpoint(&store, &dir, &mut journal, 2);
        assert!(
            !snapshot_path(&dir).exists(),
            "legacy file must not survive a generation checkpoint"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_snapshot_fault_fails_checkpoint_then_heals() {
        let dir = temp_dir("snapfault");
        let plan = Arc::new(FaultPlan::new());
        plan.fail_snapshot(0);
        let mut store = SketchStore::new(cfg());
        let mut journal =
            Journal::create_with_faults(&dir, 1, FsyncPolicy::Never, Some(plan)).unwrap();
        for i in 0..4 {
            ingest(&mut store, &mut journal, i, i + 10);
        }
        let snap = StoreSnapshot::capture(&store);
        let wal_seq = journal.next_seq() - 1;
        journal.rotate(wal_seq + 1).unwrap();
        let err = checkpoint(&snap, wal_seq, &dir, &mut journal, 2).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(!generation_path(&dir, 4).exists(), "nothing written");

        // One-shot: the next checkpoint succeeds, and recovery is whole.
        checkpoint(&snap, wal_seq, &dir, &mut journal, 2).unwrap();
        drop(journal);
        let rec = recover(&dir, cfg()).unwrap();
        assert_eq!(rec.store.edges_processed(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantined_wal_record_shifts_next_seq_past_the_gap() {
        // After a mid-file record is lost, edges_processed < wal seq; the
        // next seq must come from the WAL watermark, never the count —
        // otherwise new appends collide with existing seqs and replay
        // skipping silently drops them.
        let dir = temp_dir("seqgap");
        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for i in 0..5 {
            ingest(&mut store, &mut journal, i, i + 100);
        }
        drop(journal);
        let (_, path) = &journal::list_segments(&dir).unwrap()[0];
        let content = fs::read_to_string(path).unwrap();
        fs::write(path, content.replacen("F 3", "F 9", 1)).unwrap();

        let rec = recover(&dir, cfg()).unwrap();
        assert_eq!(rec.journal.quarantined, 1);
        assert_eq!(rec.store.edges_processed(), 4, "one record lost to rot");
        assert_eq!(rec.journal.last_seq, Some(5));
        assert_eq!(rec.next_seq(), 6, "must not reuse seq 5");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_journal_tail_recovers_acked_prefix() {
        let dir = temp_dir("torn");
        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for i in 0..5 {
            ingest(&mut store, &mut journal, i, i + 50);
        }
        drop(journal);
        // Crash mid-append of entry 6 (never acked).
        let (_, path) = &journal::list_segments(&dir).unwrap()[0];
        chaos::append_garbage(path, b"F 6 5").unwrap();

        let rec = recover(&dir, cfg()).unwrap();
        assert!(rec.journal.torn_tail);
        assert_eq!(rec.journal.quarantined, 0);
        assert_eq!(rec.store.edges_processed(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }
}
