//! Zero-dependency request tracing: span guards, a fixed-capacity
//! global ring buffer, and a slow-operation log.
//!
//! The metrics registry ([`crate::metrics`]) answers *how much* and *how
//! fast in aggregate*; this module answers *where one slow request spent
//! its time*. Three pieces:
//!
//! * **Operation spans** — [`op`] returns a guard that times a
//!   top-level operation (a protocol command, a merge, a checkpoint)
//!   and, on drop, records a [`SpanRecord`] into the global ring.
//!   Nested ops aggregate into their parent's child breakdown *and*
//!   record their own span.
//! * **Child spans** — [`child`] times a sub-step (journal append,
//!   store insert, estimator evaluation) and folds it into the
//!   innermost active op's per-child-name breakdown. When no op is
//!   active on the thread, a child guard is a no-op costing one
//!   thread-local read — cheap enough for library-level call sites.
//! * **Sampled hot-path records** — the per-edge insert path cannot
//!   afford two `Instant` reads per edge; [`record_sampled`] reuses the
//!   1-in-64 timing decision the metrics sampler already made
//!   ([`crate::metrics::Metrics::on_insert`]) and turns that same
//!   measurement into a span record, so steady-state ingest overhead
//!   stays within the E21 budget (<5% proven, CI-gated at 10%).
//!
//! ## The ring
//!
//! Completed spans land in a fixed-capacity ring ([`RING_CAPACITY`]
//! slots, overwritten oldest-first). [`recent`] returns the newest `n`
//! records — the `TRACE [N]` protocol command and `--trace-out` JSON
//! export read it. Recording is one uncontended per-slot mutex lock;
//! readers never block writers for more than one slot.
//!
//! ## The self-profile
//!
//! The ring doubles as a continuous profiler: [`Profile::from_spans`]
//! merges a window of span records into a call-tree keyed by
//! `(op, parent)` with per-node counts, **inclusive** time (sum of span
//! durations) and **exclusive** time (duration minus child time), plus
//! the top-k slowest individual spans. [`render_profilez_json`] exports
//! it as `streamlink.profilez.v1` — the `/profilez` endpoint and the
//! `PROFILE [n]` protocol command serve exactly this document.
//!
//! ## The slow-op log
//!
//! Any completed span whose duration meets the threshold
//! ([`set_slow_op_threshold_ms`], default [`DEFAULT_SLOW_OP_MS`]) bumps
//! `trace.slow_ops` and, when a log file is installed
//! ([`install_slow_op_log`]), appends one structured JSON line
//! (schema `streamlink.slowop.v1`: op, duration, child breakdown,
//! degree class) to `slowops.jsonl`. The file is bounded: past
//! `max_bytes` it rotates once to `slowops.jsonl.1`, so disk usage
//! never exceeds two generations.

use std::cell::RefCell;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Instant, SystemTime};

/// Completed-span slots in the global ring buffer.
pub const RING_CAPACITY: usize = 2048;

/// Distinct child names aggregated per span; further names fold into
/// an `(other)` bucket.
pub const MAX_CHILDREN: usize = 8;

/// Default slow-op threshold in milliseconds (`--slow-op-ms`).
pub const DEFAULT_SLOW_OP_MS: u64 = 50;

/// Default slow-op log size bound before rotation (10 MiB).
pub const DEFAULT_SLOW_OP_LOG_BYTES: u64 = 10 * 1024 * 1024;

static ENABLED: AtomicBool = AtomicBool::new(true);
static SLOW_OP_NS: AtomicU64 = AtomicU64::new(DEFAULT_SLOW_OP_MS * 1_000_000);

/// Whether span recording is on (default true; recording is sampled on
/// the insert hot path regardless).
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide. Disabling also stops
/// slow-op logging (nothing completes a span).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Sets the slow-op threshold; `0` disables slow-op accounting while
/// leaving span recording untouched.
pub fn set_slow_op_threshold_ms(ms: u64) {
    SLOW_OP_NS.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
}

/// The active slow-op threshold in nanoseconds (0 = disabled).
#[must_use]
pub fn slow_op_threshold_ns() -> u64 {
    SLOW_OP_NS.load(Ordering::Relaxed)
}

/// The log₂ degree class of a degree counter: 0 for unseen, else
/// `⌊log₂ d⌋ + 1` — class 1 is degree 1, class 5 is degrees 16–31.
/// Slow-op records carry the class, not the raw degree, so log lines
/// bucket naturally by hub-ness.
#[inline]
#[must_use]
pub fn degree_class(degree: u64) -> u8 {
    (u64::BITS - degree.leading_zeros()) as u8
}

/// One completed span, as stored in the ring and exported by
/// `TRACE` / `--trace-out` / the slow-op log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Global completion sequence number (monotone, 1-based).
    pub seq: u64,
    /// Operation name (static identifier, e.g. `cmd.insert`).
    pub op: &'static str,
    /// Name of the op this one was nested under, if any.
    pub parent: Option<&'static str>,
    /// Wall-clock completion time (Unix milliseconds).
    pub ts_unix_ms: u64,
    /// Total duration in nanoseconds.
    pub dur_ns: u64,
    /// Degree class of the largest vertex the op touched, if noted
    /// (see [`degree_class`]).
    pub degree_class: Option<u8>,
    /// Cross-node correlation ID, if the op carried one (see
    /// [`note_corr`]): the same ID appears in spans on both ends of a
    /// REPL exchange and in [`crate::events`] journal lines, so one
    /// election or handoff is one reconstructable trace across
    /// machines.
    pub corr_id: Option<u64>,
    /// Aggregated child breakdown: `(name, total ns)`, insertion order.
    pub children: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// One-line `key=value` rendering for the `TRACE` protocol command.
    #[must_use]
    pub fn render_line(&self) -> String {
        let mut out = format!("seq={} op={} dur_ns={}", self.seq, self.op, self.dur_ns);
        if let Some(corr) = self.corr_id {
            out.push_str(&format!(" corr={corr}"));
        }
        match self.degree_class {
            Some(c) => out.push_str(&format!(" degree_class={c}")),
            None => out.push_str(" degree_class=-"),
        }
        match self.parent {
            Some(p) => out.push_str(&format!(" parent={p}")),
            None => out.push_str(" parent=-"),
        }
        if self.children.is_empty() {
            out.push_str(" children=-");
        } else {
            let parts: Vec<String> = self
                .children
                .iter()
                .map(|(n, ns)| format!("{n}:{ns}"))
                .collect();
            out.push_str(&format!(" children={}", parts.join(",")));
        }
        out
    }

    /// JSON object rendering (hand-rolled — every key and op name is a
    /// static identifier, so no escaping is needed). Shared by the
    /// slow-op log lines and the `--trace-out` export.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"op\":\"{}\",\"parent\":{},\"ts_unix_ms\":{},\
             \"dur_ns\":{},\"dur_ms\":{:.3},\"degree_class\":{},\"corr_id\":{},\"children\":{{",
            self.seq,
            self.op,
            self.parent
                .map_or_else(|| "null".to_string(), |p| format!("\"{p}\"")),
            self.ts_unix_ms,
            self.dur_ns,
            self.dur_ns as f64 / 1e6,
            self.degree_class
                .map_or_else(|| "null".to_string(), |c| c.to_string()),
            self.corr_id
                .map_or_else(|| "null".to_string(), |c| c.to_string()),
        );
        let kv: Vec<String> = self
            .children
            .iter()
            .map(|(n, ns)| format!("\"{n}\":{ns}"))
            .collect();
        out.push_str(&kv.join(","));
        out.push_str("}}");
        out
    }
}

/// Renders the newest `n` ring records as a self-describing JSON
/// document (schema `streamlink.trace.v1`) for `--trace-out`.
#[must_use]
pub fn render_trace_json(n: usize) -> String {
    let spans = recent(n);
    let rows: Vec<String> = spans.iter().map(SpanRecord::render_json).collect();
    format!(
        "{{\"schema\":\"streamlink.trace.v1\",\"spans\":[{}]}}",
        rows.join(",")
    )
}

// ---------------------------------------------------------------- ring

struct Ring {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    next: AtomicU64,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring {
        slots: (0..RING_CAPACITY).map(|_| Mutex::new(None)).collect(),
        next: AtomicU64::new(0),
    })
}

impl Ring {
    /// Claims the next sequence number and stores the record.
    fn push(&self, mut record: SpanRecord) -> u64 {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        let seq = n + 1;
        record.seq = seq;
        let slot = &self.slots[(n as usize) % self.slots.len()];
        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(record);
        seq
    }

    fn recent(&self, n: usize) -> Vec<SpanRecord> {
        let end = self.next.load(Ordering::Relaxed);
        let have = (end as usize).min(self.slots.len());
        let want = n.min(have);
        let mut out = Vec::with_capacity(want);
        for i in 0..want {
            let idx = ((end - 1 - i as u64) as usize) % self.slots.len();
            let guard = self.slots[idx]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(rec) = guard.as_ref() {
                out.push(rec.clone());
            }
        }
        out
    }

    fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = None;
        }
        self.next.store(0, Ordering::Relaxed);
    }
}

/// The newest `n` completed spans, newest first.
#[must_use]
pub fn recent(n: usize) -> Vec<SpanRecord> {
    ring().recent(n)
}

/// Total spans recorded since process start (or the last [`reset`]).
#[must_use]
pub fn spans_recorded() -> u64 {
    ring().next.load(Ordering::Relaxed)
}

/// Resident bytes of the span ring: a constant capacity model
/// (`RING_CAPACITY` slots, each a mutexed record with up to
/// [`MAX_CHILDREN`] child aggregates), independent of fill level — the
/// ring allocates all slots up front.
#[must_use]
pub fn ring_memory_bytes() -> usize {
    use std::mem::size_of;
    RING_CAPACITY
        * (size_of::<Mutex<Option<SpanRecord>>>() + MAX_CHILDREN * size_of::<(&'static str, u64)>())
}

/// Clears the ring and the sequence counter (tests and benchmarks; the
/// serving path never resets).
pub fn reset() {
    ring().clear();
}

// ------------------------------------------------------- span guards

struct ActiveOp {
    op: &'static str,
    start: Instant,
    max_degree: u64,
    corr: Option<u64>,
    children: Vec<(&'static str, u64)>,
}

thread_local! {
    static OPS: RefCell<Vec<ActiveOp>> = const { RefCell::new(Vec::new()) };
}

fn add_child(children: &mut Vec<(&'static str, u64)>, name: &'static str, ns: u64) {
    if let Some(entry) = children.iter_mut().find(|(n, _)| *n == name) {
        entry.1 += ns;
        return;
    }
    if children.len() < MAX_CHILDREN {
        children.push((name, ns));
        return;
    }
    if let Some(entry) = children.iter_mut().find(|(n, _)| *n == "(other)") {
        entry.1 += ns;
    } else {
        let last = children.last_mut().expect("MAX_CHILDREN > 0");
        *last = ("(other)", last.1 + ns);
    }
}

/// Times a top-level operation; the returned guard records a span on
/// drop. Nested calls aggregate into the enclosing op's breakdown and
/// still record their own span. Returns a disarmed (free) guard when
/// tracing is disabled.
#[must_use]
pub fn op(name: &'static str) -> OpGuard {
    if !enabled() {
        return OpGuard {
            armed: false,
            _not_send: std::marker::PhantomData,
        };
    }
    OPS.with(|ops| {
        ops.borrow_mut().push(ActiveOp {
            op: name,
            start: Instant::now(),
            max_degree: 0,
            corr: None,
            children: Vec::new(),
        });
    });
    OpGuard {
        armed: true,
        _not_send: std::marker::PhantomData,
    }
}

/// Guard for one [`op`] span. Dropping it completes the span. Not
/// `Send`: span begin/end must pair on one thread.
pub struct OpGuard {
    armed: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl OpGuard {
    /// Notes a vertex degree the op touched; the span keeps the largest
    /// one's [`degree_class`].
    pub fn note_degree(&self, degree: u64) {
        if !self.armed {
            return;
        }
        OPS.with(|ops| {
            if let Some(top) = ops.borrow_mut().last_mut() {
                top.max_degree = top.max_degree.max(degree);
            }
        });
    }
}

/// Stamps the innermost active op on this thread with a cross-node
/// correlation ID (last write wins). A no-op when no op is active, so
/// protocol handlers can call it without plumbing the guard through —
/// the enclosing `cmd.*` span picks up the ID. Op names are static
/// identifiers, which is exactly why the ID is a numeric field and not
/// part of the name.
pub fn note_corr(corr: u64) {
    OPS.with(|ops| {
        if let Some(top) = ops.borrow_mut().last_mut() {
            top.corr = Some(corr);
        }
    });
}

impl Drop for OpGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let done = OPS.with(|ops| ops.borrow_mut().pop());
        let Some(done) = done else { return };
        let dur_ns = u64::try_from(done.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let parent = OPS.with(|ops| {
            let mut ops = ops.borrow_mut();
            match ops.last_mut() {
                Some(p) => {
                    add_child(&mut p.children, done.op, dur_ns);
                    Some(p.op)
                }
                None => None,
            }
        });
        finish(SpanRecord {
            seq: 0, // assigned by the ring
            op: done.op,
            parent,
            ts_unix_ms: unix_ms(),
            dur_ns,
            degree_class: (done.max_degree > 0).then(|| degree_class(done.max_degree)),
            corr_id: done.corr,
            children: done.children,
        });
    }
}

/// Times a sub-step of the innermost active op. A no-op (one
/// thread-local read) when no op is active on this thread.
#[must_use]
pub fn child(name: &'static str) -> ChildGuard {
    let active = enabled() && OPS.with(|ops| !ops.borrow().is_empty());
    ChildGuard {
        name,
        start: active.then(Instant::now),
        _not_send: std::marker::PhantomData,
    }
}

/// Guard for one [`child`] span; folds its elapsed time into the
/// enclosing op's breakdown on drop.
pub struct ChildGuard {
    name: &'static str,
    start: Option<Instant>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        OPS.with(|ops| {
            if let Some(top) = ops.borrow_mut().last_mut() {
                add_child(&mut top.children, self.name, ns);
            }
        });
    }
}

/// Records a completed hot-path span from a measurement that already
/// exists — the 1-in-64 sampled insert timing. No child breakdown, no
/// thread-local traffic beyond the ring push.
pub fn record_sampled(name: &'static str, start: Instant) {
    if !enabled() {
        return;
    }
    let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    finish(SpanRecord {
        seq: 0,
        op: name,
        parent: None,
        ts_unix_ms: unix_ms(),
        dur_ns,
        degree_class: None,
        corr_id: None,
        children: Vec::new(),
    });
}

fn finish(record: SpanRecord) {
    let threshold = slow_op_threshold_ns();
    let slow = threshold > 0 && record.dur_ns >= threshold;
    let slow_copy = slow.then(|| record.clone());
    let seq = ring().push(record);
    let m = crate::metrics::global();
    m.trace_spans.incr();
    if let Some(mut rec) = slow_copy {
        rec.seq = seq;
        m.trace_slow_ops.incr();
        write_slow_op(&rec);
    }
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

// ------------------------------------------------------------ profilez

/// Default number of slowest spans listed in a profile.
pub const DEFAULT_PROFILE_TOP_SLOW: usize = 5;

/// One merged call-tree node of a [`Profile`], keyed by `(op, parent)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Operation name.
    pub op: String,
    /// Parent operation name (`None` for roots).
    pub parent: Option<String>,
    /// Spans merged into this node.
    pub count: u64,
    /// Total time spent in these spans, children included (ns).
    pub inclusive_ns: u64,
    /// Total time spent in these spans *excluding* attributed child
    /// time (ns) — where the op itself burned cycles.
    pub exclusive_ns: u64,
    /// Largest single span duration merged into this node (ns).
    pub max_ns: u64,
    /// Merged child-name breakdown: `(name, total ns)`, largest first.
    pub children: Vec<(String, u64)>,
}

/// One of the top-k slowest individual spans in a profile window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowSpan {
    /// Operation name.
    pub op: String,
    /// Ring sequence number (replayable via `TRACE`).
    pub seq: u64,
    /// Span duration (ns).
    pub dur_ns: u64,
    /// Wall-clock completion time (Unix ms).
    pub ts_unix_ms: u64,
}

/// A span-aggregated self-profile: the ring's recent window merged into
/// a call-tree, schema `streamlink.profilez.v1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Spans aggregated into this profile.
    pub spans: u64,
    /// Merged call-tree nodes, highest inclusive time first.
    pub nodes: Vec<ProfileNode>,
    /// The top-k slowest individual spans, slowest first.
    pub slowest: Vec<SlowSpan>,
}

fn merge_child(children: &mut Vec<(String, u64)>, name: &str, ns: u64) {
    if let Some(entry) = children.iter_mut().find(|(n, _)| n == name) {
        entry.1 += ns;
    } else {
        children.push((name.to_string(), ns));
    }
}

impl Profile {
    /// Merges `spans` (any order) into a call-tree profile keeping the
    /// `top_slow` slowest individual spans. Pure — testable and
    /// golden-pinnable without touching the global ring.
    ///
    /// Node ordering is deterministic: inclusive time descending, then
    /// op name, then parent name. A span's exclusive time is its
    /// duration minus its recorded child time, floored at zero (clock
    /// skew between a parent and its children cannot go negative).
    #[must_use]
    pub fn from_spans(spans: &[SpanRecord], top_slow: usize) -> Self {
        let mut nodes: Vec<ProfileNode> = Vec::new();
        for s in spans {
            let child_ns: u64 = s.children.iter().map(|&(_, ns)| ns).sum();
            let exclusive = s.dur_ns.saturating_sub(child_ns);
            let parent = s.parent.map(str::to_string);
            let node = match nodes
                .iter_mut()
                .find(|n| n.op == s.op && n.parent.as_deref() == s.parent)
            {
                Some(node) => node,
                None => {
                    nodes.push(ProfileNode {
                        op: s.op.to_string(),
                        parent,
                        count: 0,
                        inclusive_ns: 0,
                        exclusive_ns: 0,
                        max_ns: 0,
                        children: Vec::new(),
                    });
                    nodes.last_mut().expect("just pushed")
                }
            };
            node.count += 1;
            node.inclusive_ns += s.dur_ns;
            node.exclusive_ns += exclusive;
            node.max_ns = node.max_ns.max(s.dur_ns);
            for (name, ns) in &s.children {
                merge_child(&mut node.children, name, *ns);
            }
        }
        for node in &mut nodes {
            node.children
                .sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        }
        nodes.sort_by(|a, b| {
            b.inclusive_ns
                .cmp(&a.inclusive_ns)
                .then_with(|| a.op.cmp(&b.op))
                .then_with(|| a.parent.cmp(&b.parent))
        });
        let mut slowest: Vec<SlowSpan> = spans
            .iter()
            .map(|s| SlowSpan {
                op: s.op.to_string(),
                seq: s.seq,
                dur_ns: s.dur_ns,
                ts_unix_ms: s.ts_unix_ms,
            })
            .collect();
        slowest.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then_with(|| b.seq.cmp(&a.seq)));
        slowest.truncate(top_slow);
        Profile {
            spans: spans.len() as u64,
            nodes,
            slowest,
        }
    }

    /// Renders the profile as one `streamlink.profilez.v1` JSON object
    /// (no trailing newline). Field order is stable and golden-pinned.
    /// Op names are static identifiers, so no escaping is needed.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"streamlink.profilez.v1\",\"spans\":{},\"nodes\":[",
            self.spans
        );
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                let children: Vec<String> = n
                    .children
                    .iter()
                    .map(|(name, ns)| format!("\"{name}\":{ns}"))
                    .collect();
                format!(
                    "{{\"op\":\"{}\",\"parent\":{},\"count\":{},\"inclusive_ns\":{},\
                     \"exclusive_ns\":{},\"max_ns\":{},\"children\":{{{}}}}}",
                    n.op,
                    n.parent
                        .as_ref()
                        .map_or_else(|| "null".to_string(), |p| format!("\"{p}\"")),
                    n.count,
                    n.inclusive_ns,
                    n.exclusive_ns,
                    n.max_ns,
                    children.join(","),
                )
            })
            .collect();
        out.push_str(&nodes.join(","));
        out.push_str("],\"slowest\":[");
        let slow: Vec<String> = self
            .slowest
            .iter()
            .map(|s| {
                format!(
                    "{{\"op\":\"{}\",\"seq\":{},\"dur_ns\":{},\"ts_unix_ms\":{}}}",
                    s.op, s.seq, s.dur_ns, s.ts_unix_ms
                )
            })
            .collect();
        out.push_str(&slow.join(","));
        out.push_str("]}");
        out
    }

    /// Parses a `streamlink.profilez.v1` JSON object back into a
    /// profile.
    ///
    /// # Errors
    /// Returns `Err` on malformed JSON, a wrong schema tag, or missing
    /// fields.
    pub fn parse_json(raw: &str) -> Result<Self, String> {
        let v: serde_json::Value =
            serde_json::from_str(raw).map_err(|e| format!("invalid JSON: {e}"))?;
        if v.get("schema").and_then(serde_json::Value::as_str) != Some("streamlink.profilez.v1") {
            return Err("not a streamlink.profilez.v1 object".into());
        }
        let field = |obj: &serde_json::Value, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(serde_json::Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        };
        let text = |obj: &serde_json::Value, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(serde_json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {key:?}"))
        };
        let mut nodes = Vec::new();
        for n in v
            .get("nodes")
            .and_then(serde_json::Value::as_array)
            .ok_or("missing \"nodes\" array")?
        {
            let parent = match n.get("parent") {
                Some(serde_json::Value::Null) | None => None,
                Some(p) => Some(p.as_str().ok_or("non-string \"parent\"")?.to_string()),
            };
            let mut children = Vec::new();
            if let Some(serde_json::Value::Object(entries)) = n.get("children") {
                for (name, ns) in entries {
                    children.push((name.clone(), ns.as_u64().ok_or("non-integer child time")?));
                }
            }
            nodes.push(ProfileNode {
                op: text(n, "op")?,
                parent,
                count: field(n, "count")?,
                inclusive_ns: field(n, "inclusive_ns")?,
                exclusive_ns: field(n, "exclusive_ns")?,
                max_ns: field(n, "max_ns")?,
                children,
            });
        }
        let mut slowest = Vec::new();
        for s in v
            .get("slowest")
            .and_then(serde_json::Value::as_array)
            .ok_or("missing \"slowest\" array")?
        {
            slowest.push(SlowSpan {
                op: text(s, "op")?,
                seq: field(s, "seq")?,
                dur_ns: field(s, "dur_ns")?,
                ts_unix_ms: field(s, "ts_unix_ms")?,
            });
        }
        Ok(Profile {
            spans: field(&v, "spans")?,
            nodes,
            slowest,
        })
    }
}

/// Aggregates the newest `n` ring spans into a [`Profile`].
#[must_use]
pub fn profile(n: usize) -> Profile {
    Profile::from_spans(&recent(n), DEFAULT_PROFILE_TOP_SLOW)
}

/// Renders the newest `n` ring spans as one `streamlink.profilez.v1`
/// JSON document — the `/profilez` endpoint and `PROFILE [n]` body.
#[must_use]
pub fn render_profilez_json(n: usize) -> String {
    profile(n).render_json()
}

// ---------------------------------------------------- slow-op log file

struct SlowOpLog {
    path: PathBuf,
    max_bytes: u64,
    file: std::fs::File,
    bytes: u64,
}

static SLOW_LOG: Mutex<Option<SlowOpLog>> = Mutex::new(None);

/// Installs (or replaces) the on-disk slow-op log. Records exceeding
/// the threshold append one JSON line each; when the file passes
/// `max_bytes` it rotates once to `<path>.1`.
///
/// # Errors
/// Fails if the file cannot be created or appended to.
pub fn install_slow_op_log(path: &Path, max_bytes: u64) -> io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let bytes = file.metadata().map_or(0, |m| m.len());
    let mut guard = SLOW_LOG.lock().unwrap_or_else(PoisonError::into_inner);
    *guard = Some(SlowOpLog {
        path: path.to_path_buf(),
        max_bytes: max_bytes.max(1),
        file,
        bytes,
    });
    Ok(())
}

/// Removes the slow-op log sink (tests). Threshold accounting via
/// `trace.slow_ops` continues.
pub fn uninstall_slow_op_log() {
    let mut guard = SLOW_LOG.lock().unwrap_or_else(PoisonError::into_inner);
    *guard = None;
}

/// Appends one JSON line for a slow span to the installed log, if any.
fn write_slow_op(record: &SpanRecord) {
    let mut guard = SLOW_LOG.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(log) = guard.as_mut() else { return };
    let mut line = record.render_json();
    line.push('\n');
    if log.bytes + line.len() as u64 > log.max_bytes {
        let rotated = rotated_path(&log.path);
        let _ = std::fs::rename(&log.path, rotated);
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log.path)
        {
            Ok(f) => {
                log.file = f;
                log.bytes = 0;
            }
            Err(_) => return, // keep the old handle; try again next time
        }
    }
    if log.file.write_all(line.as_bytes()).is_ok() {
        log.bytes += line.len() as u64;
    }
}

/// `<path>.1` — the single rotated generation of the slow-op log.
#[must_use]
pub fn rotated_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("slowops.jsonl"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".1");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes trace tests: they share the global ring.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn op_records_span_with_children() {
        let _gate = lock();
        reset();
        {
            let g = op("cmd.query");
            g.note_degree(20);
            {
                let _c = child("store.read");
                std::hint::black_box(42);
            }
            {
                let _c = child("store.read");
            }
            {
                let _c = child("estimate.jaccard");
            }
        }
        let spans = recent(10);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.op, "cmd.query");
        assert_eq!(s.parent, None);
        assert_eq!(s.degree_class, Some(degree_class(20)));
        assert_eq!(s.children.len(), 2, "same-name children aggregate: {s:?}");
        assert_eq!(s.children[0].0, "store.read");
        assert!(s.dur_ns > 0);
    }

    #[test]
    fn nested_ops_record_parent_and_breakdown() {
        let _gate = lock();
        reset();
        {
            let _outer = op("cmd.insert");
            {
                let _inner = op("merge");
            }
        }
        let spans = recent(10);
        assert_eq!(spans.len(), 2);
        // Newest first: outer completed last.
        assert_eq!(spans[0].op, "cmd.insert");
        assert_eq!(spans[1].op, "merge");
        assert_eq!(spans[1].parent, Some("cmd.insert"));
        assert_eq!(spans[0].children[0].0, "merge");
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _gate = lock();
        reset();
        set_enabled(false);
        {
            let _g = op("cmd.query");
            let _c = child("store.read");
        }
        record_sampled("store.insert", Instant::now());
        set_enabled(true);
        assert!(recent(10).is_empty());
    }

    #[test]
    fn ring_keeps_newest_and_wraps() {
        let _gate = lock();
        reset();
        for _ in 0..(RING_CAPACITY + 10) {
            record_sampled("store.insert", Instant::now());
        }
        let spans = recent(5);
        assert_eq!(spans.len(), 5);
        assert_eq!(spans[0].seq, (RING_CAPACITY + 10) as u64);
        assert!(spans[0].seq > spans[1].seq, "newest first");
        assert_eq!(spans_recorded(), (RING_CAPACITY + 10) as u64);
    }

    #[test]
    fn degree_classes_bucket_by_log2() {
        assert_eq!(degree_class(0), 0);
        assert_eq!(degree_class(1), 1);
        assert_eq!(degree_class(2), 2);
        assert_eq!(degree_class(3), 2);
        assert_eq!(degree_class(16), 5);
        assert_eq!(degree_class(31), 5);
        assert_eq!(degree_class(u64::MAX), 64);
    }

    #[test]
    fn render_line_and_json_shapes() {
        let rec = SpanRecord {
            seq: 7,
            op: "cmd.insert",
            parent: None,
            ts_unix_ms: 1000,
            dur_ns: 2_500_000,
            degree_class: Some(3),
            corr_id: Some(0xBEEF),
            children: vec![("journal.append", 2_000_000), ("store.insert", 400_000)],
        };
        let line = rec.render_line();
        assert!(line.contains("op=cmd.insert"), "{line}");
        assert!(line.contains("dur_ns=2500000"), "{line}");
        assert!(line.contains("corr=48879"), "{line}");
        assert!(line.contains("degree_class=3"), "{line}");
        assert!(line.contains("children=journal.append:2000000,store.insert:400000"));
        let json = rec.render_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid span JSON");
        drop(parsed);
        assert!(json.contains("\"dur_ms\":2.500"), "{json}");
        assert!(json.contains("\"corr_id\":48879"), "{json}");
        assert!(json.contains("\"journal.append\":2000000"), "{json}");

        let bare = SpanRecord {
            seq: 1,
            op: "x",
            parent: None,
            ts_unix_ms: 0,
            dur_ns: 1,
            degree_class: None,
            corr_id: None,
            children: vec![],
        };
        assert!(bare
            .render_line()
            .ends_with("degree_class=- parent=- children=-"));
        assert!(!bare.render_line().contains("corr="), "absent when unset");
        let json = bare.render_json();
        assert!(json.contains("\"degree_class\":null"), "{json}");
        assert!(json.contains("\"corr_id\":null"), "{json}");
        let _: serde_json::Value = serde_json::from_str(&json).expect("valid bare span JSON");
    }

    #[test]
    fn note_corr_stamps_the_innermost_op() {
        let _gate = lock();
        reset();
        {
            let _outer = op("cmd.repl");
            {
                let _inner = op("repl.lease");
                note_corr(42);
            }
            note_corr(7);
        }
        // No active op: must be a silent no-op, not a panic.
        note_corr(99);
        let spans = recent(10);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].op, "cmd.repl");
        assert_eq!(spans[0].corr_id, Some(7));
        assert_eq!(spans[1].op, "repl.lease");
        assert_eq!(spans[1].corr_id, Some(42));
    }

    #[test]
    fn ring_wraparound_survives_concurrent_scrapes() {
        let _gate = lock();
        reset();
        // Writers wrap the ring several times while scrapers read it —
        // the /tracez contract: every scrape sees only whole records
        // with plausible sequence numbers, and the final count is exact.
        const WRITERS: usize = 4;
        const PER_WRITER: usize = RING_CAPACITY; // 4x capacity total
        let scraping = std::sync::Arc::new(AtomicBool::new(true));
        let scrapers: Vec<_> = (0..3)
            .map(|_| {
                let scraping = scraping.clone();
                std::thread::spawn(move || {
                    let mut seen_max = 0u64;
                    while scraping.load(Ordering::Relaxed) {
                        let spans = recent(RING_CAPACITY);
                        assert!(spans.len() <= RING_CAPACITY);
                        for pair in spans.windows(2) {
                            assert!(pair[0].seq > pair[1].seq, "newest first, no torn order");
                        }
                        if let Some(first) = spans.first() {
                            assert!(first.seq >= seen_max, "newest seq never regresses");
                            seen_max = first.seq;
                            assert_eq!(first.op, "store.insert");
                        }
                    }
                })
            })
            .collect();
        let writers: Vec<_> = (0..WRITERS)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..PER_WRITER {
                        record_sampled("store.insert", Instant::now());
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        scraping.store(false, Ordering::Relaxed);
        for s in scrapers {
            s.join().unwrap();
        }
        assert_eq!(spans_recorded(), (WRITERS * PER_WRITER) as u64);
        let spans = recent(RING_CAPACITY);
        assert_eq!(spans.len(), RING_CAPACITY, "full ring after 4x wrap");
        assert_eq!(spans[0].seq, (WRITERS * PER_WRITER) as u64);
    }

    #[test]
    fn child_breakdown_caps_at_max_children() {
        let mut children = Vec::new();
        let names: [&'static str; 12] =
            ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"];
        for n in names {
            add_child(&mut children, n, 10);
        }
        assert_eq!(children.len(), MAX_CHILDREN);
        let other = children.iter().find(|(n, _)| *n == "(other)").unwrap();
        assert_eq!(other.1, 10 * (names.len() - MAX_CHILDREN + 1) as u64);
    }

    #[test]
    fn slow_op_log_writes_and_rotates() {
        let _gate = lock();
        reset();
        let dir = std::env::temp_dir().join(format!("streamlink-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slowops.jsonl");
        // Tiny bound forces rotation after a couple of records.
        install_slow_op_log(&path, 400).unwrap();
        set_slow_op_threshold_ms(0);
        SLOW_OP_NS.store(1, Ordering::Relaxed); // everything is "slow"
        for _ in 0..8 {
            let _g = op("cmd.query");
        }
        set_slow_op_threshold_ms(DEFAULT_SLOW_OP_MS);
        uninstall_slow_op_log();

        let current = std::fs::read_to_string(&path).unwrap();
        for line in current.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid slowop line");
            drop(v);
            assert!(line.contains("\"op\":\"cmd.query\""), "{line}");
        }
        let rotated = std::fs::read_to_string(rotated_path(&path)).expect("rotated generation");
        assert!(!rotated.is_empty());
        assert!(current.len() as u64 <= 400);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn span(
        seq: u64,
        op: &'static str,
        parent: Option<&'static str>,
        dur_ns: u64,
        children: Vec<(&'static str, u64)>,
    ) -> SpanRecord {
        SpanRecord {
            seq,
            op,
            parent,
            ts_unix_ms: 1_000 + seq,
            dur_ns,
            degree_class: None,
            corr_id: None,
            children,
        }
    }

    #[test]
    fn profile_merges_nodes_and_splits_exclusive_time() {
        let spans = vec![
            span(1, "cmd.insert", None, 1_000, vec![("journal.append", 700)]),
            span(
                2,
                "cmd.insert",
                None,
                3_000,
                vec![("journal.append", 1_800)],
            ),
            span(3, "journal.append", Some("cmd.insert"), 700, vec![]),
            span(4, "cmd.query", None, 400, vec![]),
        ];
        let p = Profile::from_spans(&spans, 2);
        assert_eq!(p.spans, 4);
        assert_eq!(p.nodes.len(), 3);
        // Highest inclusive first: the merged cmd.insert node.
        let top = &p.nodes[0];
        assert_eq!(top.op, "cmd.insert");
        assert_eq!(top.parent, None);
        assert_eq!(top.count, 2);
        assert_eq!(top.inclusive_ns, 4_000);
        assert_eq!(top.exclusive_ns, 4_000 - 700 - 1_800);
        assert_eq!(top.max_ns, 3_000);
        assert_eq!(top.children, vec![("journal.append".to_string(), 2_500)]);
        // The nested journal.append node keys on (op, parent).
        let nested = p
            .nodes
            .iter()
            .find(|n| n.op == "journal.append")
            .expect("nested node");
        assert_eq!(nested.parent.as_deref(), Some("cmd.insert"));
        assert_eq!(nested.inclusive_ns, 700);
        assert_eq!(nested.exclusive_ns, 700);
        // Top-k slowest, slowest first, truncated to 2.
        assert_eq!(p.slowest.len(), 2);
        assert_eq!(p.slowest[0].dur_ns, 3_000);
        assert_eq!(p.slowest[1].dur_ns, 1_000);
    }

    #[test]
    fn profile_exclusive_never_goes_negative() {
        // A child breakdown exceeding the parent duration (clock skew)
        // must floor exclusive time at zero, not wrap.
        let spans = vec![span(1, "cmd.query", None, 100, vec![("store.read", 150)])];
        let p = Profile::from_spans(&spans, 1);
        assert_eq!(p.nodes[0].exclusive_ns, 0);
        assert_eq!(p.nodes[0].inclusive_ns, 100);
    }

    #[test]
    fn profile_inclusive_times_are_coherent_child_le_parent() {
        let _gate = lock();
        reset();
        for _ in 0..50 {
            let _outer = op("cmd.insert");
            {
                let _inner = op("journal.append");
                std::hint::black_box(42);
            }
        }
        let p = profile(RING_CAPACITY);
        let parent = p
            .nodes
            .iter()
            .find(|n| n.op == "cmd.insert")
            .expect("parent node");
        let child = p
            .nodes
            .iter()
            .find(|n| n.op == "journal.append")
            .expect("child node");
        assert_eq!(child.parent.as_deref(), Some("cmd.insert"));
        assert_eq!(parent.count, 50);
        assert_eq!(child.count, 50);
        assert!(
            child.inclusive_ns <= parent.inclusive_ns,
            "child inclusive {} must not exceed parent inclusive {}",
            child.inclusive_ns,
            parent.inclusive_ns
        );
        // The parent's attributed child time matches the child node.
        let attributed = parent
            .children
            .iter()
            .find(|(n, _)| n == "journal.append")
            .expect("attributed child");
        assert!(attributed.1 <= parent.inclusive_ns);
        assert_eq!(
            parent.exclusive_ns,
            parent.inclusive_ns - attributed.1,
            "exclusive = inclusive minus attributed child time"
        );
    }

    #[test]
    fn profilez_json_round_trips() {
        let spans = vec![
            span(1, "cmd.insert", None, 1_000, vec![("journal.append", 700)]),
            span(2, "journal.append", Some("cmd.insert"), 700, vec![]),
        ];
        let p = Profile::from_spans(&spans, 5);
        let json = p.render_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid profilez JSON");
        assert_eq!(
            parsed.get("schema").and_then(serde_json::Value::as_str),
            Some("streamlink.profilez.v1")
        );
        let back = Profile::parse_json(&json).expect("round trip");
        assert_eq!(back, p);
        assert!(Profile::parse_json("{}").is_err());
        assert!(Profile::parse_json("nope").is_err());
    }

    #[test]
    fn render_profilez_reads_the_ring() {
        let _gate = lock();
        reset();
        {
            let _g = op("cmd.stats");
        }
        let json = render_profilez_json(16);
        let _: serde_json::Value = serde_json::from_str(&json).expect("valid profilez JSON");
        assert!(json.contains("\"schema\":\"streamlink.profilez.v1\""));
        assert!(json.contains("\"op\":\"cmd.stats\""));
    }

    #[test]
    fn trace_json_export_is_valid() {
        let _gate = lock();
        reset();
        {
            let _g = op("cmd.stats");
        }
        let json = render_trace_json(16);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid trace JSON");
        drop(parsed);
        assert!(json.contains("\"schema\":\"streamlink.trace.v1\""));
        assert!(json.contains("\"op\":\"cmd.stats\""));
    }
}
