//! Vertex-biased (weighted) sampling for the Adamic–Adar estimate.
//!
//! The match-sampling AA estimator of [`crate::SketchStore`] samples
//! common neighbors *uniformly*, then reweights by `1/ln d`. On heavily
//! skewed graphs that wastes samples: most common neighbors of two hubs
//! are themselves low-weight hubs, while the rare low-degree common
//! neighbor that dominates the AA sum is rarely sampled.
//!
//! The vertex-biased sketch samples each neighbor `w` with probability
//! proportional to its AA weight `c(w) = 1/ln d(w)` using **exponential
//! ranks**: slot `i` of vertex `u` holds
//! `argmin_{w ∈ N(u)} Exp_i(w) / c(w)`, where `Exp_i(w)` is a fixed
//! exponential variate derived from `h_i(w)`. The fraction of slots where
//! two sketches agree then estimates the *weighted* Jaccard
//! `J_c = C∩ / C∪` with `C_S = Σ_{w∈S} c(w)`; maintaining running weighted
//! degree sums `W(u) = Σ_{w∈N(u)} c(w)` inverts it to the AA score itself:
//! `AA = C∩ = J_c · (W_u + W_v) / (1 + J_c)`.
//!
//! ## Degree drift
//!
//! `c(w)` depends on `d(w)`, which grows during the stream. Ranks are
//! computed with the weight of `w`'s **degree tier** (next power of two)
//! at insertion time: tiers change rarely, so the rank of `w` in `u`'s and
//! `v`'s sketches — inserted at different times — usually coincides; slot
//! agreement is tested on the argmin *identity*, so residual drift only
//! perturbs sampling probabilities, never fabricates matches. The same
//! staleness applies to `W(u)`. Experiment E11 quantifies the resulting
//! bias against the uniform match-sampling estimator.

use std::collections::HashMap;

use hashkit::{exp_rank, HashFamily};

use graphstream::{Edge, VertexId};

use crate::estimators::{self, aa_weight};

/// One biased slot: minimum exponential rank and its argmin vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BiasedSlot {
    rank: f64,
    argmin: VertexId,
}

impl BiasedSlot {
    const EMPTY: BiasedSlot = BiasedSlot {
        rank: f64::INFINITY,
        argmin: VertexId(u64::MAX),
    };
}

/// A vertex-biased sketch store estimating Adamic–Adar directly.
#[derive(Debug, Clone)]
pub struct BiasedStore {
    k: usize,
    family: HashFamily,
    sketches: HashMap<VertexId, Box<[BiasedSlot]>>,
    degrees: HashMap<VertexId, u64>,
    /// Running Σ c(w) over each vertex's neighbors (insertion-time tiers).
    weight_sums: HashMap<VertexId, f64>,
    edges_processed: u64,
    scratch_u: Vec<u64>,
    scratch_v: Vec<u64>,
}

/// The AA weight of a vertex whose degree sits in the tier of `degree`
/// (next power of two, floored at 2). Quantizing keeps ranks stable as
/// degrees drift within a tier.
#[inline]
fn tier_weight(degree: u64) -> f64 {
    aa_weight(degree.max(2).next_power_of_two())
}

impl BiasedStore {
    /// A biased store with `k` slots per vertex.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "biased sketch needs k >= 1");
        Self {
            k,
            family: HashFamily::new(k, seed ^ 0xB1A5_ED00),
            sketches: HashMap::new(),
            degrees: HashMap::new(),
            weight_sums: HashMap::new(),
            edges_processed: 0,
            scratch_u: vec![0; k],
            scratch_v: vec![0; k],
        }
    }

    /// Processes one stream edge (self-loops ignored).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges_processed += 1;
        if u == v {
            return;
        }
        // Degrees first: the weight of an endpoint reflects the degree
        // *including* this edge, so a fresh vertex starts at tier 2.
        let du = {
            let d = self.degrees.entry(u).or_insert(0);
            *d += 1;
            *d
        };
        let dv = {
            let d = self.degrees.entry(v).or_insert(0);
            *d += 1;
            *d
        };
        let (wu, wv) = (tier_weight(du), tier_weight(dv));

        self.family.hash_all_into(u.0, &mut self.scratch_u);
        self.family.hash_all_into(v.0, &mut self.scratch_v);

        let k = self.k;
        let fold = |slots: &mut Box<[BiasedSlot]>, hashes: &[u64], nbr: VertexId, w: f64| {
            for (slot, &h) in slots.iter_mut().zip(hashes) {
                let rank = exp_rank(h, w);
                if rank < slot.rank {
                    *slot = BiasedSlot { rank, argmin: nbr };
                }
            }
        };
        let su = self
            .sketches
            .entry(u)
            .or_insert_with(|| vec![BiasedSlot::EMPTY; k].into_boxed_slice());
        fold(su, &self.scratch_v, v, wv);
        let sv = self
            .sketches
            .entry(v)
            .or_insert_with(|| vec![BiasedSlot::EMPTY; k].into_boxed_slice());
        fold(sv, &self.scratch_u, u, wu);

        *self.weight_sums.entry(u).or_insert(0.0) += wv;
        *self.weight_sums.entry(v).or_insert(0.0) += wu;
    }

    /// Processes a whole stream.
    pub fn insert_stream(&mut self, edges: impl IntoIterator<Item = Edge>) {
        for e in edges {
            self.insert_edge(e.src, e.dst);
        }
    }

    /// Estimated *weighted* Jaccard `J_c(u, v)` (agreement fraction on
    /// argmin identities), `None` if either vertex unseen.
    #[must_use]
    pub fn weighted_jaccard(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (su, sv) = (self.sketches.get(&u)?, self.sketches.get(&v)?);
        let matches = su
            .iter()
            .zip(sv.iter())
            .filter(|(a, b)| a.rank.is_finite() && a.argmin == b.argmin)
            .count();
        Some(matches as f64 / self.k as f64)
    }

    /// Estimated Adamic–Adar index via weighted-Jaccard inversion.
    #[must_use]
    pub fn adamic_adar(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let jw = self.weighted_jaccard(u, v)?;
        let (wu, wv) = (self.weight_sum(u), self.weight_sum(v));
        Some(estimators::weighted_intersection_from_jaccard(jw, wu, wv))
    }

    /// The running weighted degree `W(v) = Σ c(w)` (0 for unseen).
    #[must_use]
    pub fn weight_sum(&self, v: VertexId) -> f64 {
        self.weight_sums.get(&v).copied().unwrap_or(0.0)
    }

    /// Degree counter (0 for unseen).
    #[must_use]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.degrees.get(&v).copied().unwrap_or(0)
    }

    /// Distinct vertices observed.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.sketches.len()
    }

    /// Edges processed.
    #[must_use]
    pub fn edges_processed(&self) -> u64 {
        self.edges_processed
    }

    /// Approximate resident bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let slots: usize = self
            .sketches
            .values()
            .map(|s| s.len() * size_of::<BiasedSlot>())
            .sum();
        let maps = self.sketches.capacity()
            * (size_of::<(VertexId, Box<[BiasedSlot]>)>() + size_of::<u64>())
            + self.degrees.capacity() * (size_of::<(VertexId, u64)>() + size_of::<u64>())
            + self.weight_sums.capacity() * (size_of::<(VertexId, f64)>() + size_of::<u64>());
        slots + maps + size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstream::{AdjacencyGraph, EdgeStream, PowerLawConfig};

    #[test]
    fn tier_weight_quantizes() {
        assert_eq!(tier_weight(0), tier_weight(2));
        assert_eq!(tier_weight(3), tier_weight(4));
        assert_eq!(tier_weight(5), tier_weight(8));
        assert!(tier_weight(100) < tier_weight(2));
    }

    #[test]
    fn unseen_gives_none() {
        let s = BiasedStore::new(8, 0);
        assert_eq!(s.adamic_adar(VertexId(0), VertexId(1)), None);
    }

    #[test]
    fn full_overlap_same_insertion_times_matches_fully() {
        // Interleave so each shared neighbor is inserted into both
        // sketches at the same tier → identical ranks → full agreement.
        let mut s = BiasedStore::new(64, 1);
        for w in 100..130u64 {
            s.insert_edge(VertexId(0), VertexId(w));
            s.insert_edge(VertexId(1), VertexId(w));
        }
        let jw = s.weighted_jaccard(VertexId(0), VertexId(1)).unwrap();
        assert!(jw > 0.9, "weighted jaccard {jw}");
    }

    #[test]
    fn disjoint_estimates_zero() {
        let mut s = BiasedStore::new(64, 2);
        for w in 0..30u64 {
            s.insert_edge(VertexId(0), VertexId(100 + w));
            s.insert_edge(VertexId(1), VertexId(500 + w));
        }
        assert_eq!(s.weighted_jaccard(VertexId(0), VertexId(1)), Some(0.0));
        assert_eq!(s.adamic_adar(VertexId(0), VertexId(1)), Some(0.0));
    }

    #[test]
    fn weight_sums_accumulate() {
        let mut s = BiasedStore::new(8, 3);
        s.insert_edge(VertexId(0), VertexId(1));
        s.insert_edge(VertexId(0), VertexId(2));
        // Both neighbors entered at degree 1 → tier 2 weight.
        let expected = 2.0 * tier_weight(1);
        assert!((s.weight_sum(VertexId(0)) - expected).abs() < 1e-12);
    }

    #[test]
    fn aa_estimate_tracks_exact_on_skewed_stream() {
        let stream = PowerLawConfig::new(800, 2.3, 100, 11).materialize();
        let g = AdjacencyGraph::from_edges(stream.edges());
        let mut s = BiasedStore::new(512, 5);
        s.insert_stream(stream.edges());

        // Evaluate on pairs that actually share neighbors.
        let mut pairs = Vec::new();
        for u in 0..120u64 {
            for v in (u + 1)..120u64 {
                if g.common_neighbors(VertexId(u), VertexId(v)) > 0 {
                    pairs.push((VertexId(u), VertexId(v)));
                }
            }
        }
        assert!(
            pairs.len() > 20,
            "test stream too sparse: {} pairs",
            pairs.len()
        );
        let mut rel_err_sum = 0.0;
        for &(u, v) in &pairs {
            let exact = g.adamic_adar(u, v);
            let est = s.adamic_adar(u, v).unwrap();
            rel_err_sum += (est - exact).abs() / exact.max(1e-9);
        }
        let are = rel_err_sum / pairs.len() as f64;
        assert!(
            are < 0.8,
            "biased AA average relative error too high: {are}"
        );
    }

    #[test]
    fn deterministic() {
        let stream = PowerLawConfig::new(300, 2.5, 50, 1).materialize();
        let run = |seed| {
            let mut s = BiasedStore::new(64, seed);
            s.insert_stream(stream.edges());
            s.adamic_adar(VertexId(0), VertexId(1))
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn memory_scales_with_k() {
        let run = |k| {
            let mut s = BiasedStore::new(k, 1);
            s.insert_stream(PowerLawConfig::new(200, 2.5, 50, 2).edges());
            s.memory_bytes()
        };
        assert!(run(256) > run(16));
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        let _ = BiasedStore::new(0, 0);
    }
}
