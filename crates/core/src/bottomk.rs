//! The bottom-k sketch variant (ablation).
//!
//! Instead of `k` hash functions with one minimum each, bottom-k keeps the
//! `k` smallest values of a *single* hash function per vertex. One hash
//! evaluation per edge endpoint instead of `k` makes updates much cheaper;
//! the price is coordinated sampling with slightly different variance and
//! a more involved estimator:
//!
//! ```text
//! Ĵ = |B_k(N(u) ∪ N(v)) ∩ B_k(N(u)) ∩ B_k(N(v))| / |B_k(N(u) ∪ N(v))|
//! ```
//!
//! where `B_k(S)` is the set of the `k` smallest hashes of `S` — computable
//! from the two sketches alone because `B_k(A ∪ B) = B_k(B_k(A) ∪ B_k(B))`.
//! Experiment E11 compares this variant against the k-function sketch.

use std::collections::HashMap;

use hashkit::SeededHash;

use graphstream::{Edge, VertexId};

use crate::estimators;

/// One vertex's bottom-k list: the k smallest neighbor hashes, ascending,
/// each with its originating neighbor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BottomKSketch {
    /// Ascending `(hash, neighbor)` pairs, at most `k` of them.
    entries: Vec<(u64, VertexId)>,
}

impl BottomKSketch {
    /// Creates an empty sketch (capacity is enforced by the store's `k`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a hashed neighbor, keeping the list sorted, deduplicated,
    /// and capped at `k`. O(log k) search + O(k) shift worst case — still
    /// constant per edge for fixed `k`.
    pub fn insert(&mut self, hash: u64, neighbor: VertexId, k: usize) {
        match self.entries.binary_search_by_key(&hash, |&(h, _)| h) {
            Ok(_) => {} // duplicate neighbor (same hash, injective function)
            Err(pos) => {
                if pos < k {
                    self.entries.insert(pos, (hash, neighbor));
                    self.entries.truncate(k);
                }
            }
        }
    }

    /// Current number of stored hashes (≤ k).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sketch has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The ascending `(hash, neighbor)` entries.
    #[must_use]
    pub fn entries(&self) -> &[(u64, VertexId)] {
        &self.entries
    }

    /// Merges another sketch into this one (neighborhood union), capped
    /// at `k`.
    pub fn merge(&mut self, other: &BottomKSketch, k: usize) {
        for &(h, v) in &other.entries {
            self.insert(h, v, k);
        }
    }

    /// Estimates Jaccard against another sketch with the coordinated
    /// bottom-k estimator, also returning the matched neighbor samples
    /// (members of the intersection).
    #[must_use]
    pub fn jaccard_with_samples(&self, other: &BottomKSketch, k: usize) -> (f64, Vec<VertexId>) {
        if self.is_empty() && other.is_empty() {
            return (0.0, Vec::new());
        }
        // B_k of the union: merge the two ascending lists, take first k
        // distinct hashes.
        let mut union: Vec<u64> = Vec::with_capacity(k);
        let (mut i, mut j) = (0, 0);
        while union.len() < k && (i < self.entries.len() || j < other.entries.len()) {
            let next = match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(a, _)), Some(&(b, _))) => {
                    if a <= b {
                        i += 1;
                        if a == b {
                            j += 1;
                        }
                        a
                    } else {
                        j += 1;
                        b
                    }
                }
                (Some(&(a, _)), None) => {
                    i += 1;
                    a
                }
                (None, Some(&(b, _))) => {
                    j += 1;
                    b
                }
                (None, None) => break,
            };
            union.push(next);
        }
        // Count union members present in BOTH sketches; collect samples.
        let mut matches = 0usize;
        let mut samples = Vec::new();
        for &h in &union {
            let in_self = self.entries.binary_search_by_key(&h, |&(x, _)| x);
            let in_other = other.entries.binary_search_by_key(&h, |&(x, _)| x);
            if let (Ok(a), Ok(_)) = (in_self, in_other) {
                matches += 1;
                samples.push(self.entries[a].1);
            }
        }
        (matches as f64 / union.len() as f64, samples)
    }
}

/// A sketch store over bottom-k sketches, mirroring
/// [`crate::SketchStore`]'s API.
#[derive(Debug, Clone)]
pub struct BottomKStore {
    k: usize,
    hasher: SeededHash,
    sketches: HashMap<VertexId, BottomKSketch>,
    degrees: HashMap<VertexId, u64>,
    edges_processed: u64,
}

impl BottomKStore {
    /// A store keeping the `k` smallest neighbor hashes per vertex.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "bottom-k needs k >= 1");
        Self {
            k,
            hasher: SeededHash::new(seed),
            sketches: HashMap::new(),
            degrees: HashMap::new(),
            edges_processed: 0,
        }
    }

    /// Processes one stream edge (self-loops ignored).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges_processed += 1;
        if u == v {
            return;
        }
        let (hu, hv) = (self.hasher.hash(u.0), self.hasher.hash(v.0));
        self.sketches.entry(u).or_default().insert(hv, v, self.k);
        self.sketches.entry(v).or_default().insert(hu, u, self.k);
        *self.degrees.entry(u).or_insert(0) += 1;
        *self.degrees.entry(v).or_insert(0) += 1;
    }

    /// Processes a whole stream.
    pub fn insert_stream(&mut self, edges: impl IntoIterator<Item = Edge>) {
        for e in edges {
            self.insert_edge(e.src, e.dst);
        }
    }

    /// Estimated Jaccard coefficient, `None` if either vertex unseen.
    #[must_use]
    pub fn jaccard(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (su, sv) = (self.sketches.get(&u)?, self.sketches.get(&v)?);
        Some(su.jaccard_with_samples(sv, self.k).0)
    }

    /// Estimated common-neighbor count.
    #[must_use]
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let j = self.jaccard(u, v)?;
        Some(estimators::cn_from_jaccard(
            j,
            self.degree(u),
            self.degree(v),
        ))
    }

    /// Estimated Adamic–Adar index via the matched bottom-k samples.
    #[must_use]
    pub fn adamic_adar(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (su, sv) = (self.sketches.get(&u)?, self.sketches.get(&v)?);
        let (j, samples) = su.jaccard_with_samples(sv, self.k);
        let cn = estimators::cn_from_jaccard(j, self.degree(u), self.degree(v));
        let degrees: Vec<u64> = samples.iter().map(|&w| self.degree(w)).collect();
        Some(estimators::aa_from_samples(cn, &degrees))
    }

    /// Degree counter (0 for unseen vertices).
    #[must_use]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.degrees.get(&v).copied().unwrap_or(0)
    }

    /// Distinct vertices observed.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.sketches.len()
    }

    /// Edges processed (including self-loops).
    #[must_use]
    pub fn edges_processed(&self) -> u64 {
        self.edges_processed
    }

    /// Approximate resident bytes, comparable with the other stores.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let entries: usize = self
            .sketches
            .values()
            .map(|s| s.entries.capacity() * size_of::<(u64, VertexId)>())
            .sum();
        let maps = self.sketches.capacity()
            * (size_of::<(VertexId, BottomKSketch)>() + size_of::<u64>())
            + self.degrees.capacity() * (size_of::<(VertexId, u64)>() + size_of::<u64>());
        entries + maps + size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstream::{AdjacencyGraph, BarabasiAlbert, EdgeStream};

    #[test]
    fn insert_keeps_sorted_capped_dedup() {
        let mut s = BottomKSketch::new();
        for (h, v) in [(50u64, 1u64), (10, 2), (30, 3), (10, 2), (20, 4), (40, 5)] {
            s.insert(h, VertexId(v), 4);
        }
        let hashes: Vec<u64> = s.entries().iter().map(|&(h, _)| h).collect();
        assert_eq!(hashes, vec![10, 20, 30, 40]);
    }

    #[test]
    fn full_overlap_estimates_one() {
        let mut s = BottomKStore::new(32, 1);
        for w in 100..130u64 {
            s.insert_edge(VertexId(0), VertexId(w));
            s.insert_edge(VertexId(1), VertexId(w));
        }
        assert_eq!(s.jaccard(VertexId(0), VertexId(1)), Some(1.0));
    }

    #[test]
    fn disjoint_estimates_zero() {
        let mut s = BottomKStore::new(32, 2);
        for w in 0..30u64 {
            s.insert_edge(VertexId(0), VertexId(100 + w));
            s.insert_edge(VertexId(1), VertexId(500 + w));
        }
        assert_eq!(s.jaccard(VertexId(0), VertexId(1)), Some(0.0));
        assert_eq!(s.adamic_adar(VertexId(0), VertexId(1)), Some(0.0));
    }

    #[test]
    fn unseen_gives_none() {
        let s = BottomKStore::new(8, 0);
        assert_eq!(s.jaccard(VertexId(1), VertexId(2)), None);
    }

    #[test]
    fn small_neighborhoods_are_exact() {
        // With |N(u) ∪ N(v)| <= k the sketch holds everything: estimates
        // are exact, a key bottom-k property the k-function variant lacks.
        let mut s = BottomKStore::new(64, 3);
        for w in 0..20u64 {
            s.insert_edge(VertexId(0), VertexId(100 + w)); // N(0) = 20
        }
        for w in 10..20u64 {
            s.insert_edge(VertexId(1), VertexId(100 + w)); // N(1) = 10, CN = 10
        }
        let j = s.jaccard(VertexId(0), VertexId(1)).unwrap();
        assert!(
            (j - 0.5).abs() < 1e-12,
            "J should be exactly 10/20, got {j}"
        );
        let cn = s.common_neighbors(VertexId(0), VertexId(1)).unwrap();
        assert!((cn - 10.0).abs() < 1e-9, "cn {cn}");
    }

    #[test]
    fn estimates_track_exact_on_real_stream() {
        let stream = BarabasiAlbert::new(300, 4, 5).materialize();
        let g = AdjacencyGraph::from_edges(stream.edges());
        let mut s = BottomKStore::new(256, 7);
        s.insert_stream(stream.edges());
        let mut total_err = 0.0;
        let mut n = 0;
        for u in 0..40u64 {
            for v in (u + 1)..40u64 {
                let est = s.jaccard(VertexId(u), VertexId(v)).unwrap();
                total_err += (est - g.jaccard(VertexId(u), VertexId(v))).abs();
                n += 1;
            }
        }
        let mae = total_err / f64::from(n);
        assert!(mae < 0.05, "bottom-k MAE too high: {mae}");
    }

    #[test]
    fn merge_equals_union() {
        let h = SeededHash::new(9);
        let mut a = BottomKSketch::new();
        let mut b = BottomKSketch::new();
        let mut u = BottomKSketch::new();
        for w in 0..30u64 {
            a.insert(h.hash(w), VertexId(w), 8);
            u.insert(h.hash(w), VertexId(w), 8);
        }
        for w in 20..50u64 {
            b.insert(h.hash(w), VertexId(w), 8);
            u.insert(h.hash(w), VertexId(w), 8);
        }
        a.merge(&b, 8);
        assert_eq!(a, u);
    }

    #[test]
    fn memory_bounded_by_k() {
        let run = |k: usize| {
            let mut s = BottomKStore::new(k, 1);
            s.insert_stream(BarabasiAlbert::new(200, 3, 2).edges());
            s.memory_bytes()
        };
        assert!(run(128) > run(8), "memory should grow with k");
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        let _ = BottomKStore::new(0, 0);
    }
}
