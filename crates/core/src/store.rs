//! [`SketchStore`] — the streaming sketch index and its query API.

use std::collections::HashMap;

use graphstream::{Edge, VertexId};

use crate::config::{HasherBank, SketchConfig};
use crate::estimators;
use crate::sketch::VertexSketch;

/// Component-wise resident-byte model of a [`SketchStore`].
///
/// Produced by [`SketchStore::memory_breakdown`]; the sum of the fields
/// is exactly [`SketchStore::memory_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreMemory {
    /// Slot arrays of every resident sketch (`vertices × k × 16`).
    pub sketch_slot_bytes: usize,
    /// Sketch hash-map overhead (capacity × entry + control bytes).
    pub sketch_map_bytes: usize,
    /// Degree-counter hash-map overhead.
    pub degree_map_bytes: usize,
    /// Fixed struct size plus the reused per-edge hash scratch buffers.
    pub fixed_bytes: usize,
}

impl StoreMemory {
    /// Total resident bytes — the sum of every component.
    #[must_use]
    pub fn total(&self) -> usize {
        self.sketch_slot_bytes + self.sketch_map_bytes + self.degree_map_bytes + self.fixed_bytes
    }
}

/// The streaming sketch index: one [`VertexSketch`] plus one degree
/// counter per observed vertex.
///
/// * **Constant time per edge** — [`SketchStore::insert_edge`] does `2k`
///   hash evaluations and `2k` slot folds, nothing else; no allocation
///   after the two touched sketches exist.
/// * **Constant space per vertex** — `k` 16-byte slots plus one degree
///   word, independent of the vertex's degree or the stream length.
///
/// ## Stream contract
///
/// Degree counters assume each undirected edge is delivered once (the
/// simple-graph stream contract all `graphstream` generators obey).
/// Sketch slots themselves are idempotent — duplicate deliveries cannot
/// corrupt similarity estimates, only inflate degree counters (and thereby
/// CN/AA scale factors).
///
/// ## Query semantics
///
/// Queries return `None` when either endpoint has never appeared in the
/// stream — "no information" is distinct from "estimated zero".
#[derive(Debug, Clone)]
pub struct SketchStore {
    config: SketchConfig,
    bank: HasherBank,
    sketches: HashMap<VertexId, VertexSketch>,
    degrees: HashMap<VertexId, u64>,
    edges_processed: u64,
    // Reused per-edge scratch: no allocation on the hot path.
    scratch_u: Vec<u64>,
    scratch_v: Vec<u64>,
}

impl SketchStore {
    /// An empty store with the given configuration.
    #[must_use]
    pub fn new(config: SketchConfig) -> Self {
        let bank = config.build_bank();
        let k = config.slots();
        Self {
            config,
            bank,
            sketches: HashMap::new(),
            degrees: HashMap::new(),
            edges_processed: 0,
            scratch_u: vec![0; k],
            scratch_v: vec![0; k],
        }
    }

    /// Processes one stream edge.
    ///
    /// Self-loops are counted as processed but otherwise ignored (they
    /// carry no neighborhood signal).
    ///
    /// When the global [`crate::metrics`] registry is enabled this also
    /// bumps `core.insert.edges` and, for a sampled subset of inserts,
    /// records the per-edge latency histogram.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        let m = crate::metrics::global();
        match m.on_insert() {
            None => self.insert_edge_inner(u, v),
            Some(start) => {
                self.insert_edge_inner(u, v);
                m.insert_latency.observe(start);
                // Reuse the same sampling decision (and Instant) for the
                // trace ring: the hot path never pays a second clock read
                // on unsampled edges.
                crate::trace::record_sampled("store.insert", start);
            }
        }
    }

    fn insert_edge_inner(&mut self, u: VertexId, v: VertexId) {
        self.edges_processed += 1;
        if u == v {
            return;
        }
        let k = self.config.slots();
        self.bank.hash_all_into(u.0, &mut self.scratch_u);
        self.bank.hash_all_into(v.0, &mut self.scratch_v);

        self.sketches
            .entry(u)
            .or_insert_with(|| VertexSketch::new(k))
            .fold_neighbor(&self.scratch_v, v);
        self.sketches
            .entry(v)
            .or_insert_with(|| VertexSketch::new(k))
            .fold_neighbor(&self.scratch_u, u);

        *self.degrees.entry(u).or_insert(0) += 1;
        *self.degrees.entry(v).or_insert(0) += 1;
    }

    /// Processes a whole stream (or stream prefix).
    pub fn insert_stream(&mut self, edges: impl IntoIterator<Item = Edge>) {
        for e in edges {
            self.insert_edge(e.src, e.dst);
        }
    }

    /// Estimated Jaccard coefficient of `(u, v)`, or `None` if either
    /// vertex is unseen.
    #[must_use]
    pub fn jaccard(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let _t = crate::trace::child("estimate.jaccard");
        let (su, sv) = (self.sketches.get(&u)?, self.sketches.get(&v)?);
        Some(estimators::jaccard_from_matches(
            su.match_count(sv),
            self.config.slots(),
        ))
    }

    /// Estimated common-neighbor count of `(u, v)`.
    #[must_use]
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let _t = crate::trace::child("estimate.common_neighbors");
        let j = self.jaccard(u, v)?;
        Some(estimators::cn_from_jaccard(
            j,
            self.degree(u),
            self.degree(v),
        ))
    }

    /// Estimated Adamic–Adar index of `(u, v)` via match-sampling: the
    /// agreeing slots sample the neighborhood intersection; their argmins'
    /// *current* degrees estimate the mean AA weight.
    #[must_use]
    pub fn adamic_adar(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let _t = crate::trace::child("estimate.adamic_adar");
        let (su, sv) = (self.sketches.get(&u)?, self.sketches.get(&v)?);
        let matches = su.match_count(sv);
        let j = estimators::jaccard_from_matches(matches, self.config.slots());
        let cn = estimators::cn_from_jaccard(j, self.degree(u), self.degree(v));
        let sampled: Vec<u64> = su.matched_samples(sv).map(|w| self.degree(w)).collect();
        Some(estimators::aa_from_samples(cn, &sampled))
    }

    /// Estimated resource-allocation index `Σ_{w∈N(u)∩N(v)} 1/d(w)` via
    /// the same match-sampling device as [`Self::adamic_adar`], with
    /// weight `1/d` instead of `1/ln d`.
    #[must_use]
    pub fn resource_allocation(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (su, sv) = (self.sketches.get(&u)?, self.sketches.get(&v)?);
        let matches = su.match_count(sv);
        let j = estimators::jaccard_from_matches(matches, self.config.slots());
        let cn = estimators::cn_from_jaccard(j, self.degree(u), self.degree(v));
        let samples: Vec<VertexId> = su.matched_samples(sv).collect();
        if samples.is_empty() {
            return Some(0.0);
        }
        let mean_inv_degree: f64 = samples
            .iter()
            .map(|&w| 1.0 / self.degree(w).max(2) as f64)
            .sum::<f64>()
            / samples.len() as f64;
        Some(cn * mean_inv_degree)
    }

    /// The preferential-attachment score `d(u) · d(v)` — exact, straight
    /// from the degree counters.
    #[must_use]
    pub fn preferential_attachment(&self, u: VertexId, v: VertexId) -> Option<f64> {
        if !self.contains(u) || !self.contains(v) {
            return None;
        }
        Some(self.degree(u) as f64 * self.degree(v) as f64)
    }

    /// Estimated cosine (Salton) index `CN / √(d(u)·d(v))`.
    #[must_use]
    pub fn cosine(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let cn = self.common_neighbors(u, v)?;
        let (du, dv) = (self.degree(u), self.degree(v));
        if du == 0 || dv == 0 {
            return Some(0.0);
        }
        Some(cn / ((du * dv) as f64).sqrt())
    }

    /// Estimated overlap coefficient `CN / min(d(u), d(v))`.
    #[must_use]
    pub fn overlap(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let cn = self.common_neighbors(u, v)?;
        let m = self.degree(u).min(self.degree(v));
        if m == 0 {
            return Some(0.0);
        }
        Some((cn / m as f64).clamp(0.0, 1.0))
    }

    /// The degree counter of `v` (0 for unseen vertices).
    #[inline]
    #[must_use]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.degrees.get(&v).copied().unwrap_or(0)
    }

    /// Whether `v` has appeared in the stream.
    #[must_use]
    pub fn contains(&self, v: VertexId) -> bool {
        self.sketches.contains_key(&v)
    }

    /// The sketch of `v`, if seen.
    #[must_use]
    pub fn sketch(&self, v: VertexId) -> Option<&VertexSketch> {
        self.sketches.get(&v)
    }

    /// Number of distinct vertices observed.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.sketches.len()
    }

    /// Total edges processed (including ignored self-loops).
    #[must_use]
    pub fn edges_processed(&self) -> u64 {
        self.edges_processed
    }

    /// Iterates over observed vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.sketches.keys().copied()
    }

    /// The configuration this store was built with.
    #[must_use]
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Approximate resident bytes: sketches + degree counters + map
    /// overhead. A deterministic model (entries × slot sizes), comparable
    /// against `AdjacencyGraph::memory_bytes` in experiment E7.
    ///
    /// Always at least the sum of [`VertexSketch::memory_bytes`] over
    /// every resident sketch — the map overhead promised by the sketch
    /// doc comment is accounted for here, not there.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.memory_breakdown().total()
    }

    /// The same accounting as [`SketchStore::memory_bytes`], split into
    /// its components for the `mem.*` gauges and `/memz` endpoint.
    ///
    /// Every store sketch has exactly `config.slots()` slots, so the
    /// slot-byte term is `O(1)` — safe to call from a metrics refresh
    /// cycle while holding a read lock.
    #[must_use]
    pub fn memory_breakdown(&self) -> StoreMemory {
        use std::mem::size_of;
        let slot_bytes_per_sketch = self.config.slots() * size_of::<crate::sketch::Slot>();
        StoreMemory {
            sketch_slot_bytes: self.sketches.len() * slot_bytes_per_sketch,
            sketch_map_bytes: self.sketches.capacity()
                * (size_of::<(VertexId, VertexSketch)>() + size_of::<u64>()),
            degree_map_bytes: self.degrees.capacity()
                * (size_of::<(VertexId, u64)>() + size_of::<u64>()),
            fixed_bytes: size_of::<Self>()
                + (self.scratch_u.capacity() + self.scratch_v.capacity()) * size_of::<u64>(),
        }
    }

    /// Internal access for the merge module.
    pub(crate) fn parts_mut(
        &mut self,
    ) -> (
        &mut HashMap<VertexId, VertexSketch>,
        &mut HashMap<VertexId, u64>,
        &mut u64,
    ) {
        (
            &mut self.sketches,
            &mut self.degrees,
            &mut self.edges_processed,
        )
    }

    /// Internal read access for the merge/snapshot modules.
    pub(crate) fn parts(
        &self,
    ) -> (
        &HashMap<VertexId, VertexSketch>,
        &HashMap<VertexId, u64>,
        u64,
    ) {
        (&self.sketches, &self.degrees, self.edges_processed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstream::{AdjacencyGraph, BarabasiAlbert, EdgeStream};

    fn store(k: usize) -> SketchStore {
        SketchStore::new(SketchConfig::with_slots(k).seed(42))
    }

    /// Two vertices with identical 20-vertex neighborhoods.
    fn perfect_overlap(k: usize) -> SketchStore {
        let mut s = store(k);
        for w in 100..120u64 {
            s.insert_edge(VertexId(0), VertexId(w));
            s.insert_edge(VertexId(1), VertexId(w));
        }
        s
    }

    #[test]
    fn store_memory_covers_sketches_plus_map_overhead() {
        let mut s = store(64);
        let stream = BarabasiAlbert::new(500, 4, 99);
        for Edge { src, dst, .. } in stream.edges() {
            s.insert_edge(src, dst);
        }
        let sketch_sum: usize = s
            .vertices()
            .map(|v| s.sketch(v).unwrap().memory_bytes())
            .sum();
        let breakdown = s.memory_breakdown();
        assert_eq!(breakdown.sketch_slot_bytes, sketch_sum);
        assert_eq!(breakdown.total(), s.memory_bytes());
        assert!(
            s.memory_bytes() > sketch_sum,
            "store accounting ({}) must exceed the bare sketch sum ({sketch_sum}) \
             by the map/scratch overhead",
            s.memory_bytes()
        );
        assert!(breakdown.sketch_map_bytes > 0);
        assert!(breakdown.degree_map_bytes > 0);
        assert!(breakdown.fixed_bytes >= std::mem::size_of::<SketchStore>());
    }

    #[test]
    fn unseen_vertices_give_none() {
        let s = perfect_overlap(32);
        assert_eq!(s.jaccard(VertexId(0), VertexId(999)), None);
        assert_eq!(s.common_neighbors(VertexId(999), VertexId(0)), None);
        assert_eq!(s.adamic_adar(VertexId(998), VertexId(999)), None);
    }

    #[test]
    fn identical_neighborhoods_estimate_one() {
        let s = perfect_overlap(64);
        assert_eq!(s.jaccard(VertexId(0), VertexId(1)), Some(1.0));
        // CN = J(du+dv)/(1+J) = 1·40/2 = 20 — exact here.
        assert_eq!(s.common_neighbors(VertexId(0), VertexId(1)), Some(20.0));
    }

    #[test]
    fn disjoint_neighborhoods_estimate_zero() {
        let mut s = store(64);
        for w in 0..20u64 {
            s.insert_edge(VertexId(500), VertexId(1000 + w));
            s.insert_edge(VertexId(501), VertexId(2000 + w));
        }
        assert_eq!(s.jaccard(VertexId(500), VertexId(501)), Some(0.0));
        assert_eq!(s.common_neighbors(VertexId(500), VertexId(501)), Some(0.0));
        assert_eq!(s.adamic_adar(VertexId(500), VertexId(501)), Some(0.0));
    }

    #[test]
    fn estimates_track_exact_on_half_overlap() {
        // N(0) = 100..140, N(1) = 120..160 → J = 20/60 = 1/3, CN = 20.
        let mut s = store(1024);
        for w in 100..140u64 {
            s.insert_edge(VertexId(0), VertexId(w));
        }
        for w in 120..160u64 {
            s.insert_edge(VertexId(1), VertexId(w));
        }
        let j = s.jaccard(VertexId(0), VertexId(1)).unwrap();
        assert!((j - 1.0 / 3.0).abs() < 0.06, "jaccard {j}");
        let cn = s.common_neighbors(VertexId(0), VertexId(1)).unwrap();
        assert!((cn - 20.0).abs() < 4.0, "cn {cn}");
    }

    #[test]
    fn adamic_adar_tracks_exact() {
        // Star-of-triangles: u and v share 10 common neighbors w, each w
        // also gets 6 extra private neighbors → d(w) = 8.
        let mut s = store(1024);
        let (u, v) = (VertexId(1), VertexId(2));
        for i in 0..10u64 {
            let w = VertexId(10 + i);
            s.insert_edge(u, w);
            s.insert_edge(v, w);
            for p in 0..6u64 {
                s.insert_edge(w, VertexId(1000 + i * 10 + p));
            }
        }
        let exact = 10.0 / 8f64.ln();
        let aa = s.adamic_adar(u, v).unwrap();
        assert!((aa - exact).abs() < 0.15 * exact, "aa {aa}, exact {exact}");
    }

    #[test]
    fn resource_allocation_tracks_exact() {
        // Same topology as the AA test: 10 common neighbors of degree 8.
        let mut s = store(1024);
        let (u, v) = (VertexId(1), VertexId(2));
        for i in 0..10u64 {
            let w = VertexId(10 + i);
            s.insert_edge(u, w);
            s.insert_edge(v, w);
            for p in 0..6u64 {
                s.insert_edge(w, VertexId(1000 + i * 10 + p));
            }
        }
        let exact = 10.0 / 8.0;
        let ra = s.resource_allocation(u, v).unwrap();
        assert!((ra - exact).abs() < 0.2 * exact, "ra {ra}, exact {exact}");
    }

    #[test]
    fn cosine_and_overlap_track_exact() {
        // N(0) = 100..140, N(1) = 120..160: CN = 20, d = 40 each →
        // cosine = 20/40 = 0.5, overlap = 20/40 = 0.5.
        let mut s = store(1024);
        for w in 100..140u64 {
            s.insert_edge(VertexId(0), VertexId(w));
        }
        for w in 120..160u64 {
            s.insert_edge(VertexId(1), VertexId(w));
        }
        let cos = s.cosine(VertexId(0), VertexId(1)).unwrap();
        assert!((cos - 0.5).abs() < 0.08, "cosine {cos}");
        let ov = s.overlap(VertexId(0), VertexId(1)).unwrap();
        assert!((ov - 0.5).abs() < 0.08, "overlap {ov}");
        assert_eq!(s.cosine(VertexId(0), VertexId(9999)), None);
    }

    #[test]
    fn preferential_attachment_is_exact() {
        let mut s = store(8);
        for w in 10..13u64 {
            s.insert_edge(VertexId(0), VertexId(w)); // d(0) = 3
        }
        for w in 20..25u64 {
            s.insert_edge(VertexId(1), VertexId(w)); // d(1) = 5
        }
        assert_eq!(
            s.preferential_attachment(VertexId(0), VertexId(1)),
            Some(15.0)
        );
        assert_eq!(s.preferential_attachment(VertexId(0), VertexId(999)), None);
    }

    #[test]
    fn self_loops_ignored_but_counted() {
        let mut s = store(16);
        s.insert_edge(VertexId(3), VertexId(3));
        assert_eq!(s.vertex_count(), 0);
        assert_eq!(s.degree(VertexId(3)), 0);
        assert_eq!(s.edges_processed(), 1);
    }

    #[test]
    fn sketch_idempotent_under_duplicates() {
        let mut s = store(32);
        s.insert_edge(VertexId(0), VertexId(1));
        let snap = s.sketch(VertexId(0)).unwrap().clone();
        s.insert_edge(VertexId(0), VertexId(1));
        assert_eq!(
            s.sketch(VertexId(0)).unwrap(),
            &snap,
            "sketch must be idempotent"
        );
        // Degree counters, by contract, do count duplicates.
        assert_eq!(s.degree(VertexId(0)), 2);
    }

    #[test]
    fn degrees_match_exact_graph_on_simple_stream() {
        let stream = BarabasiAlbert::new(300, 3, 7);
        let mut s = store(16);
        s.insert_stream(stream.edges());
        let g = AdjacencyGraph::from_edges(stream.edges());
        for v in g.vertices() {
            assert_eq!(s.degree(v), g.degree(v) as u64, "degree mismatch at {v}");
        }
    }

    #[test]
    fn error_shrinks_with_k() {
        // Average |Ĵ − J| over pairs must drop when k grows 16 → 256.
        let stream = BarabasiAlbert::new(400, 4, 3).materialize();
        let g = AdjacencyGraph::from_edges(stream.edges());
        let err_at = |k: usize| {
            let mut s = SketchStore::new(SketchConfig::with_slots(k).seed(5));
            s.insert_stream(stream.edges());
            let mut total = 0.0;
            let mut count = 0;
            for u in 0..50u64 {
                for v in (u + 1)..50u64 {
                    let (u, v) = (VertexId(u), VertexId(v));
                    let est = s.jaccard(u, v).unwrap();
                    total += (est - g.jaccard(u, v)).abs();
                    count += 1;
                }
            }
            total / f64::from(count)
        };
        let (coarse, fine) = (err_at(16), err_at(256));
        assert!(
            fine < coarse * 0.6,
            "error did not shrink with k: k=16 → {coarse:.4}, k=256 → {fine:.4}"
        );
    }

    #[test]
    fn jaccard_estimate_is_symmetric() {
        let stream = BarabasiAlbert::new(200, 3, 1);
        let mut s = store(64);
        s.insert_stream(stream.edges());
        for u in 0..20u64 {
            for v in 0..20u64 {
                assert_eq!(
                    s.jaccard(VertexId(u), VertexId(v)),
                    s.jaccard(VertexId(v), VertexId(u))
                );
            }
        }
    }

    #[test]
    fn memory_per_vertex_is_constant_in_degree() {
        // Grow one hub's degree 10×; its footprint must not move.
        let mut s = store(64);
        for w in 0..10u64 {
            s.insert_edge(VertexId(0), VertexId(w + 1));
        }
        let sketch_bytes = s.sketch(VertexId(0)).unwrap().memory_bytes();
        for w in 10..100u64 {
            s.insert_edge(VertexId(0), VertexId(w + 1));
        }
        assert_eq!(s.sketch(VertexId(0)).unwrap().memory_bytes(), sketch_bytes);
    }

    #[test]
    fn determinism_across_stores() {
        let stream = BarabasiAlbert::new(200, 2, 9).materialize();
        let mut a = store(32);
        let mut b = store(32);
        a.insert_stream(stream.edges());
        b.insert_stream(stream.edges());
        for u in 0..30u64 {
            for v in 0..30u64 {
                assert_eq!(s_j(&a, u, v), s_j(&b, u, v));
            }
        }
        fn s_j(s: &SketchStore, u: u64, v: u64) -> Option<f64> {
            s.jaccard(VertexId(u), VertexId(v))
        }
    }

    #[test]
    fn tabulation_backend_also_estimates() {
        let mut s = SketchStore::new(
            SketchConfig::with_slots(256).backend(crate::HasherBackend::Tabulation),
        );
        for w in 100..120u64 {
            s.insert_edge(VertexId(0), VertexId(w));
            s.insert_edge(VertexId(1), VertexId(w));
        }
        assert_eq!(s.jaccard(VertexId(0), VertexId(1)), Some(1.0));
    }
}
