//! Serde snapshots of a sketch store.
//!
//! A [`StoreSnapshot`] is a plain-data, format-agnostic image of a
//! [`SketchStore`]: persist it with any serde format (the CLI uses JSON),
//! ship it across processes, or archive per-epoch states of a long-running
//! stream. Restoring rebuilds the hasher bank from the embedded config, so
//! a restored store continues ingesting the stream exactly where the
//! original left off.

use serde::{Deserialize, Serialize};

use graphstream::VertexId;

use crate::config::SketchConfig;
use crate::sketch::VertexSketch;
use crate::store::SketchStore;

/// One vertex's persisted state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexEntry {
    /// The vertex.
    pub vertex: VertexId,
    /// Its sketch.
    pub sketch: VertexSketch,
    /// Its degree counter.
    pub degree: u64,
}

/// A serializable image of a whole store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// The configuration (slots, seed, backend).
    pub config: SketchConfig,
    /// Edges processed when the snapshot was taken.
    pub edges_processed: u64,
    /// Per-vertex state, sorted by vertex id for deterministic output.
    pub vertices: Vec<VertexEntry>,
}

impl StoreSnapshot {
    /// Captures a snapshot of `store`.
    #[must_use]
    pub fn capture(store: &SketchStore) -> Self {
        let (sketches, degrees, edges_processed) = store.parts();
        let mut vertices: Vec<VertexEntry> = sketches
            .iter()
            .map(|(&vertex, sketch)| VertexEntry {
                vertex,
                sketch: sketch.clone(),
                degree: degrees.get(&vertex).copied().unwrap_or(0),
            })
            .collect();
        vertices.sort_by_key(|e| e.vertex);
        Self {
            config: *store.config(),
            edges_processed,
            vertices,
        }
    }

    /// Restores a live store from the snapshot.
    #[must_use]
    pub fn restore(&self) -> SketchStore {
        let mut store = SketchStore::new(self.config);
        {
            let (sketches, degrees, edges) = store.parts_mut();
            for entry in &self.vertices {
                sketches.insert(entry.vertex, entry.sketch.clone());
                degrees.insert(entry.vertex, entry.degree);
            }
            *edges = self.edges_processed;
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstream::{BarabasiAlbert, EdgeStream};

    fn populated() -> SketchStore {
        let mut s = SketchStore::new(SketchConfig::with_slots(32).seed(5));
        s.insert_stream(BarabasiAlbert::new(150, 2, 8).edges());
        s
    }

    #[test]
    fn capture_restore_preserves_everything() {
        let original = populated();
        let restored = StoreSnapshot::capture(&original).restore();
        assert_eq!(restored.vertex_count(), original.vertex_count());
        assert_eq!(restored.edges_processed(), original.edges_processed());
        for v in original.vertices() {
            assert_eq!(restored.degree(v), original.degree(v));
            assert_eq!(restored.sketch(v), original.sketch(v));
        }
    }

    #[test]
    fn restored_store_answers_identically() {
        let original = populated();
        let restored = StoreSnapshot::capture(&original).restore();
        for u in 0..30u64 {
            for v in (u + 1)..30u64 {
                let (u, v) = (VertexId(u), VertexId(v));
                assert_eq!(original.jaccard(u, v), restored.jaccard(u, v));
                assert_eq!(original.adamic_adar(u, v), restored.adamic_adar(u, v));
            }
        }
    }

    #[test]
    fn restored_store_continues_ingesting_consistently() {
        // Split a stream; snapshot after the prefix; restored store fed
        // the suffix must equal a store fed the whole stream.
        let edges: Vec<_> = BarabasiAlbert::new(200, 2, 6).edges().collect();
        let (head, tail) = edges.split_at(edges.len() / 2);

        let mut prefix_store = SketchStore::new(SketchConfig::with_slots(16).seed(1));
        prefix_store.insert_stream(head.iter().copied());
        let mut resumed = StoreSnapshot::capture(&prefix_store).restore();
        resumed.insert_stream(tail.iter().copied());

        let mut whole = SketchStore::new(SketchConfig::with_slots(16).seed(1));
        whole.insert_stream(edges.iter().copied());

        for v in whole.vertices() {
            assert_eq!(resumed.sketch(v), whole.sketch(v), "divergence at {v}");
            assert_eq!(resumed.degree(v), whole.degree(v));
        }
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let s = populated();
        let a = serde_json::to_string(&StoreSnapshot::capture(&s)).unwrap();
        let b = serde_json::to_string(&StoreSnapshot::capture(&s)).unwrap();
        assert_eq!(
            a, b,
            "snapshots of the same store must serialize identically"
        );
    }

    #[test]
    fn json_roundtrip() {
        let snap = StoreSnapshot::capture(&populated());
        let json = serde_json::to_string(&snap).unwrap();
        let back: StoreSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn empty_store_roundtrips() {
        let s = SketchStore::new(SketchConfig::with_slots(4));
        let restored = StoreSnapshot::capture(&s).restore();
        assert_eq!(restored.vertex_count(), 0);
        assert_eq!(restored.edges_processed(), 0);
    }
}
