//! Serde snapshots of a sketch store.
//!
//! A [`StoreSnapshot`] is a plain-data, format-agnostic image of a
//! [`SketchStore`]: persist it with any serde format (the CLI uses JSON),
//! ship it across processes, or archive per-epoch states of a long-running
//! stream. Restoring rebuilds the hasher bank from the embedded config, so
//! a restored store continues ingesting the stream exactly where the
//! original left off. [`RobustSnapshot`] does the same for
//! [`RobustStore`], persisting its HyperLogLog degree sketches.
//!
//! ## Crash-safe writes
//!
//! [`StoreSnapshot::write_atomic`] (and the `RobustSnapshot` twin) uses
//! the temp-file–fsync–rename protocol: readers either see the previous
//! complete snapshot or the new complete snapshot, never a torn one. A
//! crash mid-write leaves at most a stale `.tmp` file, which the next
//! successful write replaces.
//!
//! ## Verifiable files (format v2)
//!
//! Atomic rename proves a snapshot was written *whole*; it proves nothing
//! about the bytes staying intact afterwards. Snapshots therefore carry a
//! versioned header with a whole-file digest:
//!
//! ```text
//! STREAMLINK-SNAP v2 len=<payload bytes> crc32=<lower-hex-8>\n
//! <JSON payload>
//! ```
//!
//! The CRC-32 ([`hashkit::crc32()`]) covers the payload; `len` pins its
//! exact size, so truncation and bit rot are both detected on read —
//! before the JSON parser ever sees the bytes. Reads fall back
//! transparently to v1 (bare JSON, no header): old data directories load
//! unmodified, they just cannot be *verified* (see
//! [`SnapshotIntegrity::Legacy`]).

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

use hashkit::crc32;
use serde::{Deserialize, Serialize};

use graphstream::VertexId;

use crate::codec::{self, Codec};
use crate::config::SketchConfig;
use crate::hll::HyperLogLog;
use crate::robust::RobustStore;
use crate::sketch::VertexSketch;
use crate::store::SketchStore;

/// The magic prefix of a v2 snapshot header line.
pub const SNAPSHOT_MAGIC: &str = "STREAMLINK-SNAP";

/// What the framing check proved about a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotIntegrity {
    /// v2 framing: length and whole-file CRC both verified.
    Verified,
    /// Legacy v1 file — parseable bare JSON, but carrying no digest, so
    /// integrity cannot be proven.
    Legacy,
}

/// Renders the framed v2 file contents for `json`.
pub(crate) fn frame_v2(json: &str) -> String {
    format!(
        "{SNAPSHOT_MAGIC} v2 len={} crc32={:08x}\n{json}",
        json.len(),
        crc32(json.as_bytes())
    )
}

/// Reads a snapshot file and verifies its framing, returning the JSON
/// payload and what the check proved. Does not interpret the payload —
/// `scrub` uses this to verify files it never deserializes.
///
/// # Errors
/// * [`io::ErrorKind::NotFound`] — no file.
/// * [`io::ErrorKind::InvalidData`] — malformed header, length mismatch
///   (truncation or trailing garbage), or CRC mismatch (bit rot). The
///   message says which.
pub fn read_verified(path: &Path) -> io::Result<(String, SnapshotIntegrity)> {
    let bytes = fs::read(path)?;
    verify_text(&bytes).map_err(|e| rewrap(e, path))
}

/// Verifies v2/v1 text framing over in-memory bytes, returning the JSON
/// payload and what the check proved. The text half of the codec layer;
/// [`read_verified`] wraps it with path context.
pub(crate) fn verify_text(bytes: &[u8]) -> io::Result<(String, SnapshotIntegrity)> {
    let invalid = |detail: &str| io::Error::new(io::ErrorKind::InvalidData, detail.to_string());
    let content = std::str::from_utf8(bytes).map_err(|_| invalid("unreadable or not UTF-8"))?;
    let Some(rest) = content.strip_prefix(SNAPSHOT_MAGIC) else {
        // No magic: a legacy v1 bare-JSON snapshot.
        return Ok((content.to_string(), SnapshotIntegrity::Legacy));
    };
    let (header, payload) = rest
        .split_once('\n')
        .ok_or_else(|| invalid("v2 header line is unterminated"))?;
    let mut fields = header.split(' ').filter(|f| !f.is_empty());
    if fields.next() != Some("v2") {
        return Err(invalid("unsupported snapshot format version"));
    }
    let len: usize = fields
        .next()
        .and_then(|f| f.strip_prefix("len="))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| invalid("v2 header has no parseable len field"))?;
    let expected: u32 = fields
        .next()
        .and_then(|f| f.strip_prefix("crc32="))
        .filter(|v| v.len() == 8)
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or_else(|| invalid("v2 header has no parseable crc32 field"))?;
    if payload.len() != len {
        return Err(invalid(&format!(
            "payload length mismatch: header says {len} bytes, file holds {}",
            payload.len()
        )));
    }
    let found = crc32(payload.as_bytes());
    if found != expected {
        return Err(invalid(&format!(
            "payload CRC mismatch: header {expected:08x}, computed {found:08x}"
        )));
    }
    Ok((payload.to_string(), SnapshotIntegrity::Verified))
}

fn corrupt(path: &Path, detail: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt snapshot {}: {detail}", path.display()),
    )
}

/// Re-wraps an `InvalidData` error with the snapshot's path context;
/// other kinds (e.g. `NotFound`) pass through untouched.
fn rewrap(e: io::Error, path: &Path) -> io::Error {
    if e.kind() == io::ErrorKind::InvalidData {
        corrupt(path, &e.to_string())
    } else {
        e
    }
}

/// Writes `content` to `path` atomically: temp file in the same
/// directory, flush + fsync, rename over the target, fsync the directory.
fn write_atomic_bytes(path: &Path, content: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(content)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself. Directory fsync can be unsupported on
    // some filesystems; failing the write for that would be worse than
    // the (tiny) window it closes.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// One vertex's persisted state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexEntry {
    /// The vertex.
    pub vertex: VertexId,
    /// Its sketch.
    pub sketch: VertexSketch,
    /// Its degree counter.
    pub degree: u64,
}

/// A serializable image of a whole store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// The configuration (slots, seed, backend).
    pub config: SketchConfig,
    /// Edges processed when the snapshot was taken.
    pub edges_processed: u64,
    /// Per-vertex state, sorted by vertex id for deterministic output.
    pub vertices: Vec<VertexEntry>,
}

impl StoreSnapshot {
    /// Captures a snapshot of `store`.
    #[must_use]
    pub fn capture(store: &SketchStore) -> Self {
        let (sketches, degrees, edges_processed) = store.parts();
        let mut vertices: Vec<VertexEntry> = sketches
            .iter()
            .map(|(&vertex, sketch)| VertexEntry {
                vertex,
                sketch: sketch.clone(),
                degree: degrees.get(&vertex).copied().unwrap_or(0),
            })
            .collect();
        vertices.sort_by_key(|e| e.vertex);
        Self {
            config: *store.config(),
            edges_processed,
            vertices,
        }
    }

    /// Restores a live store from the snapshot.
    #[must_use]
    pub fn restore(&self) -> SketchStore {
        let mut store = SketchStore::new(self.config);
        {
            let (sketches, degrees, edges) = store.parts_mut();
            for entry in &self.vertices {
                sketches.insert(entry.vertex, entry.sketch.clone());
                degrees.insert(entry.vertex, entry.degree);
            }
            *edges = self.edges_processed;
        }
        store
    }

    /// Persists the snapshot at `path` in the v2 text format using the
    /// atomic temp-file–fsync–rename protocol.
    ///
    /// # Errors
    /// Fails on IO errors; the previous snapshot at `path` (if any) is
    /// untouched on failure.
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        self.write_atomic_as(path, codec::WireFormat::TextV2)
    }

    /// Persists the snapshot at `path` atomically in the given format.
    ///
    /// # Errors
    /// Fails on IO errors; the previous snapshot at `path` (if any) is
    /// untouched on failure.
    pub fn write_atomic_as(&self, path: &Path, format: codec::WireFormat) -> io::Result<()> {
        write_atomic_bytes(path, &format.codec().encode_store_snapshot(self)?)
    }

    /// Loads a snapshot previously written with [`Self::write_atomic`]
    /// or [`Self::write_atomic_as`], sniffing the format from the bytes.
    ///
    /// # Errors
    /// Fails if the file is missing ([`io::ErrorKind::NotFound`]) or does
    /// not verify ([`io::ErrorKind::InvalidData`]).
    pub fn read_from(path: &Path) -> io::Result<Self> {
        Ok(Self::read_with_integrity(path)?.0)
    }

    /// Like [`Self::read_from`], also reporting what the framing check
    /// proved. Binary v3 snapshots always verify (the envelope CRC is
    /// mandatory); text snapshots report v2 verified or v1 legacy.
    ///
    /// # Errors
    /// Fails if the file is missing or does not verify.
    pub fn read_with_integrity(path: &Path) -> io::Result<(Self, SnapshotIntegrity)> {
        let bytes = fs::read(path)?;
        if codec::is_binary(&bytes) {
            let snap = codec::BinaryV3
                .decode_store_snapshot(&bytes)
                .map_err(|e| rewrap(e, path))?;
            return Ok((snap, SnapshotIntegrity::Verified));
        }
        let (payload, integrity) = verify_text(&bytes).map_err(|e| rewrap(e, path))?;
        let snap = serde_json::from_str(&payload).map_err(|e| corrupt(path, &e.to_string()))?;
        Ok((snap, integrity))
    }
}

/// One vertex's persisted state in a [`RobustSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustVertexEntry {
    /// The vertex.
    pub vertex: VertexId,
    /// Its sketch.
    pub sketch: VertexSketch,
    /// Its HyperLogLog distinct-degree sketch.
    pub degree: HyperLogLog,
}

/// A serializable image of a [`RobustStore`], HLL degrees included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustSnapshot {
    /// The configuration (slots, seed, backend).
    pub config: SketchConfig,
    /// HLL precision of the degree sketches.
    pub hll_precision: u8,
    /// Edges processed when the snapshot was taken.
    pub edges_processed: u64,
    /// Per-vertex state, sorted by vertex id for deterministic output.
    pub vertices: Vec<RobustVertexEntry>,
}

impl RobustSnapshot {
    /// Captures a snapshot of `store`.
    ///
    /// # Panics
    /// Panics if the store's internal maps disagree on membership (a
    /// vertex with a sketch but no degree sketch), which would indicate
    /// internal corruption.
    #[must_use]
    pub fn capture(store: &RobustStore) -> Self {
        let (sketches, degrees, edges_processed) = store.parts();
        let mut vertices: Vec<RobustVertexEntry> = sketches
            .iter()
            .map(|(&vertex, sketch)| RobustVertexEntry {
                vertex,
                sketch: sketch.clone(),
                degree: degrees
                    .get(&vertex)
                    .expect("robust store invariant: sketch without degree HLL")
                    .clone(),
            })
            .collect();
        vertices.sort_by_key(|e| e.vertex);
        Self {
            config: *store.config(),
            hll_precision: store.hll_precision(),
            edges_processed,
            vertices,
        }
    }

    /// Restores a live store from the snapshot.
    #[must_use]
    pub fn restore(&self) -> RobustStore {
        let mut store = RobustStore::new(self.config, self.hll_precision);
        {
            let (sketches, degrees, edges) = store.parts_mut();
            for entry in &self.vertices {
                sketches.insert(entry.vertex, entry.sketch.clone());
                degrees.insert(entry.vertex, entry.degree.clone());
            }
            *edges = self.edges_processed;
        }
        store
    }

    /// Persists the snapshot at `path` atomically in the v2 text format
    /// (see [`StoreSnapshot::write_atomic`]).
    ///
    /// # Errors
    /// Fails on IO errors; the previous snapshot at `path` (if any) is
    /// untouched on failure.
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        self.write_atomic_as(path, codec::WireFormat::TextV2)
    }

    /// Persists the snapshot at `path` atomically in the given format.
    ///
    /// # Errors
    /// Fails on IO errors; the previous snapshot at `path` (if any) is
    /// untouched on failure.
    pub fn write_atomic_as(&self, path: &Path, format: codec::WireFormat) -> io::Result<()> {
        write_atomic_bytes(path, &format.codec().encode_robust_snapshot(self)?)
    }

    /// Loads a snapshot previously written with [`Self::write_atomic`]
    /// or [`Self::write_atomic_as`], sniffing the format from the bytes.
    ///
    /// # Errors
    /// Fails if the file is missing or does not verify.
    pub fn read_from(path: &Path) -> io::Result<Self> {
        let bytes = fs::read(path)?;
        if codec::is_binary(&bytes) {
            return codec::BinaryV3
                .decode_robust_snapshot(&bytes)
                .map_err(|e| rewrap(e, path));
        }
        let (payload, _) = verify_text(&bytes).map_err(|e| rewrap(e, path))?;
        serde_json::from_str(&payload).map_err(|e| corrupt(path, &e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstream::{BarabasiAlbert, EdgeStream};

    fn populated() -> SketchStore {
        let mut s = SketchStore::new(SketchConfig::with_slots(32).seed(5));
        s.insert_stream(BarabasiAlbert::new(150, 2, 8).edges());
        s
    }

    #[test]
    fn capture_restore_preserves_everything() {
        let original = populated();
        let restored = StoreSnapshot::capture(&original).restore();
        assert_eq!(restored.vertex_count(), original.vertex_count());
        assert_eq!(restored.edges_processed(), original.edges_processed());
        for v in original.vertices() {
            assert_eq!(restored.degree(v), original.degree(v));
            assert_eq!(restored.sketch(v), original.sketch(v));
        }
    }

    #[test]
    fn restored_store_answers_identically() {
        let original = populated();
        let restored = StoreSnapshot::capture(&original).restore();
        for u in 0..30u64 {
            for v in (u + 1)..30u64 {
                let (u, v) = (VertexId(u), VertexId(v));
                assert_eq!(original.jaccard(u, v), restored.jaccard(u, v));
                assert_eq!(original.adamic_adar(u, v), restored.adamic_adar(u, v));
            }
        }
    }

    #[test]
    fn restored_store_continues_ingesting_consistently() {
        // Split a stream; snapshot after the prefix; restored store fed
        // the suffix must equal a store fed the whole stream.
        let edges: Vec<_> = BarabasiAlbert::new(200, 2, 6).edges().collect();
        let (head, tail) = edges.split_at(edges.len() / 2);

        let mut prefix_store = SketchStore::new(SketchConfig::with_slots(16).seed(1));
        prefix_store.insert_stream(head.iter().copied());
        let mut resumed = StoreSnapshot::capture(&prefix_store).restore();
        resumed.insert_stream(tail.iter().copied());

        let mut whole = SketchStore::new(SketchConfig::with_slots(16).seed(1));
        whole.insert_stream(edges.iter().copied());

        for v in whole.vertices() {
            assert_eq!(resumed.sketch(v), whole.sketch(v), "divergence at {v}");
            assert_eq!(resumed.degree(v), whole.degree(v));
        }
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let s = populated();
        let a = serde_json::to_string(&StoreSnapshot::capture(&s)).unwrap();
        let b = serde_json::to_string(&StoreSnapshot::capture(&s)).unwrap();
        assert_eq!(
            a, b,
            "snapshots of the same store must serialize identically"
        );
    }

    #[test]
    fn json_roundtrip() {
        let snap = StoreSnapshot::capture(&populated());
        let json = serde_json::to_string(&snap).unwrap();
        let back: StoreSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn empty_store_roundtrips() {
        let s = SketchStore::new(SketchConfig::with_slots(4));
        let restored = StoreSnapshot::capture(&s).restore();
        assert_eq!(restored.vertex_count(), 0);
        assert_eq!(restored.edges_processed(), 0);
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "streamlink-snap-{}-{tag}-{n}.json",
            std::process::id()
        ))
    }

    #[test]
    fn atomic_write_read_roundtrip() {
        let path = temp_path("roundtrip");
        let snap = StoreSnapshot::capture(&populated());
        snap.write_atomic(&path).unwrap();
        let back = StoreSnapshot::read_from(&path).unwrap();
        assert_eq!(snap, back);
        // No temp file left behind.
        assert!(!path.with_extension("json.tmp").exists());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_replaces_previous_snapshot() {
        let path = temp_path("replace");
        let mut store = populated();
        StoreSnapshot::capture(&store).write_atomic(&path).unwrap();
        store.insert_edge(VertexId(1000), VertexId(1001));
        let newer = StoreSnapshot::capture(&store);
        newer.write_atomic(&path).unwrap();
        assert_eq!(StoreSnapshot::read_from(&path).unwrap(), newer);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_tmp_file_does_not_break_reads_or_writes() {
        // A crash between temp-write and rename leaves `.json.tmp`; the
        // real snapshot must stay readable and the next write must win.
        let path = temp_path("staletmp");
        let snap = StoreSnapshot::capture(&populated());
        snap.write_atomic(&path).unwrap();
        fs::write(path.with_extension("json.tmp"), b"{ torn garbage").unwrap();
        assert_eq!(StoreSnapshot::read_from(&path).unwrap(), snap);
        snap.write_atomic(&path).unwrap();
        assert!(!path.with_extension("json.tmp").exists());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_errors_are_typed() {
        let missing = temp_path("missing");
        let err = StoreSnapshot::read_from(&missing).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);

        let corrupt = temp_path("corrupt");
        fs::write(&corrupt, b"not json at all").unwrap();
        let err = StoreSnapshot::read_from(&corrupt).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        fs::remove_file(&corrupt).unwrap();
    }

    #[test]
    fn v2_file_carries_verifiable_header() {
        let path = temp_path("v2header");
        StoreSnapshot::capture(&populated())
            .write_atomic(&path)
            .unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("STREAMLINK-SNAP v2 len="), "{content}");
        let (payload, integrity) = read_verified(&path).unwrap();
        assert_eq!(integrity, SnapshotIntegrity::Verified);
        assert!(payload.starts_with('{'), "payload is the bare JSON");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_bare_json_still_reads_as_legacy() {
        // A pre-framing data dir: bare JSON, no header.
        let path = temp_path("v1compat");
        let snap = StoreSnapshot::capture(&populated());
        fs::write(&path, serde_json::to_string(&snap).unwrap()).unwrap();
        let (_, integrity) = read_verified(&path).unwrap();
        assert_eq!(integrity, SnapshotIntegrity::Legacy);
        assert_eq!(StoreSnapshot::read_from(&path).unwrap(), snap);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn payload_bit_flip_is_detected_before_parsing() {
        let path = temp_path("bitflip");
        StoreSnapshot::capture(&populated())
            .write_atomic(&path)
            .unwrap();
        let header_len = fs::read_to_string(&path).unwrap().find('\n').unwrap() as u64 + 1;
        // Flip a low bit of a payload digit: likely still valid JSON —
        // only the CRC can catch it.
        crate::chaos::flip_bit(&path, header_len + 40, 0).unwrap();
        let err = StoreSnapshot::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC mismatch"), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_is_detected_by_length_check() {
        let path = temp_path("truncate");
        StoreSnapshot::capture(&populated())
            .write_atomic(&path)
            .unwrap();
        crate::chaos::tear_file(&path, 17).unwrap();
        let err = StoreSnapshot::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("length mismatch"), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_appended_after_payload_is_detected() {
        let path = temp_path("trailing");
        StoreSnapshot::capture(&populated())
            .write_atomic(&path)
            .unwrap();
        crate::chaos::append_garbage(&path, b"   {}").unwrap();
        let err = StoreSnapshot::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_header_is_rejected_not_misparsed() {
        let path = temp_path("badheader");
        for bad in [
            "STREAMLINK-SNAP v9 len=2 crc32=00000000\n{}",
            "STREAMLINK-SNAP v2 len=x crc32=00000000\n{}",
            "STREAMLINK-SNAP v2 len=2 crc32=nothex00\n{}",
            "STREAMLINK-SNAP v2 len=2 crc32=00000000", // no payload line
        ] {
            fs::write(&path, bad).unwrap();
            let err = read_verified(&path).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad:?}");
        }
        fs::remove_file(&path).unwrap();
    }

    fn populated_robust() -> RobustStore {
        let mut s = RobustStore::new(SketchConfig::with_slots(32).seed(5), 10);
        s.insert_stream(BarabasiAlbert::new(150, 2, 8).edges());
        s
    }

    #[test]
    fn robust_capture_restore_preserves_everything() {
        let original = populated_robust();
        let restored = RobustSnapshot::capture(&original).restore();
        assert_eq!(restored.vertex_count(), original.vertex_count());
        assert_eq!(restored.edges_processed(), original.edges_processed());
        assert_eq!(restored.hll_precision(), original.hll_precision());
        for v in (0..150).map(VertexId) {
            assert_eq!(
                restored.degree_estimate(v),
                original.degree_estimate(v),
                "HLL degree diverged at {v}"
            );
        }
        for u in 0..30u64 {
            for v in (u + 1)..30u64 {
                let (u, v) = (VertexId(u), VertexId(v));
                assert_eq!(original.jaccard(u, v), restored.jaccard(u, v));
                assert_eq!(
                    original.common_neighbors(u, v),
                    restored.common_neighbors(u, v)
                );
                assert_eq!(original.adamic_adar(u, v), restored.adamic_adar(u, v));
            }
        }
    }

    #[test]
    fn robust_restored_store_continues_ingesting_consistently() {
        let edges: Vec<_> = BarabasiAlbert::new(200, 2, 6).edges().collect();
        let (head, tail) = edges.split_at(edges.len() / 2);

        let mut prefix = RobustStore::new(SketchConfig::with_slots(16).seed(1), 8);
        prefix.insert_stream(head.iter().copied());
        let mut resumed = RobustSnapshot::capture(&prefix).restore();
        resumed.insert_stream(tail.iter().copied());

        let mut whole = RobustStore::new(SketchConfig::with_slots(16).seed(1), 8);
        whole.insert_stream(edges.iter().copied());

        assert_eq!(resumed.edges_processed(), whole.edges_processed());
        for v in (0..200).map(VertexId) {
            assert_eq!(
                resumed.degree_estimate(v),
                whole.degree_estimate(v),
                "divergence at {v}"
            );
        }
    }

    #[test]
    fn robust_json_and_file_roundtrip() {
        let snap = RobustSnapshot::capture(&populated_robust());
        let json = serde_json::to_string(&snap).unwrap();
        let back: RobustSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);

        let path = temp_path("robust");
        snap.write_atomic(&path).unwrap();
        assert_eq!(RobustSnapshot::read_from(&path).unwrap(), snap);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn robust_empty_store_roundtrips() {
        let s = RobustStore::new(SketchConfig::with_slots(4), 6);
        let restored = RobustSnapshot::capture(&s).restore();
        assert_eq!(restored.vertex_count(), 0);
        assert_eq!(restored.edges_processed(), 0);
        assert_eq!(restored.hll_precision(), 6);
    }
}
