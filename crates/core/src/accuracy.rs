//! The `(ε, δ)` accuracy guarantee, as executable code.
//!
//! Slot agreements are i.i.d. Bernoulli(J) indicators, so `Ĵ = X/k` obeys
//! Hoeffding's inequality:
//!
//! ```text
//! P(|Ĵ − J| ≥ ε) ≤ 2·exp(−2·k·ε²)
//! ```
//!
//! Inverting gives the two planning directions implemented here: how many
//! slots for a target error ([`AccuracyPlan::required_slots`]) and what
//! error a given sketch guarantees ([`AccuracyPlan::error_bound`]). The
//! property tests in `tests/proptest_accuracy.rs` check the *empirical*
//! failure rate of real sketches against these bounds.

use serde::{Deserialize, Serialize};

/// A planner around the Hoeffding guarantee for the Jaccard estimator.
///
/// ```
/// use streamlink_core::AccuracyPlan;
///
/// // "I need Jaccard within ±0.1, wrong at most 5% of the time."
/// let plan = AccuracyPlan::new(0.1, 0.05);
/// assert_eq!(plan.required_slots(), 185);
///
/// // Inverse direction: what does a 256-slot sketch guarantee at 99%?
/// let eps = AccuracyPlan::error_bound(256, 0.01);
/// assert!(eps < 0.11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyPlan {
    /// Absolute error tolerance on the Jaccard estimate, in `(0, 1)`.
    pub epsilon: f64,
    /// Failure probability, in `(0, 1)`.
    pub delta: f64,
}

impl AccuracyPlan {
    /// A plan with the given tolerance and failure probability.
    ///
    /// # Panics
    /// Panics if either parameter is outside `(0, 1)`.
    #[must_use]
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon {epsilon} outside (0,1)"
        );
        assert!(delta > 0.0 && delta < 1.0, "delta {delta} outside (0,1)");
        Self { epsilon, delta }
    }

    /// Minimum slots `k` such that `P(|Ĵ − J| ≥ ε) ≤ δ`:
    /// `k = ⌈ln(2/δ) / (2ε²)⌉`.
    #[must_use]
    pub fn required_slots(&self) -> usize {
        ((2.0 / self.delta).ln() / (2.0 * self.epsilon * self.epsilon)).ceil() as usize
    }

    /// The error `ε` guaranteed at confidence `1 − δ` by a `k`-slot
    /// sketch: `ε = sqrt(ln(2/δ) / (2k))`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn error_bound(k: usize, delta: f64) -> f64 {
        assert!(k > 0, "zero-slot sketch");
        assert!(delta > 0.0 && delta < 1.0, "delta {delta} outside (0,1)");
        ((2.0 / delta).ln() / (2.0 * k as f64)).sqrt()
    }

    /// The Hoeffding failure-probability bound for a `k`-slot sketch at
    /// tolerance `ε`: `2·exp(−2kε²)` (capped at 1).
    #[must_use]
    pub fn failure_probability(k: usize, epsilon: f64) -> f64 {
        (2.0 * (-2.0 * k as f64 * epsilon * epsilon).exp()).min(1.0)
    }

    /// The exact sampling variance of the Jaccard estimator:
    /// `Var[Ĵ] = J(1−J)/k` (binomial mean). Maximized at `J = 1/2`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `j` outside `[0, 1]`.
    #[must_use]
    pub fn jaccard_variance(j: f64, k: usize) -> f64 {
        assert!(k > 0, "zero-slot sketch");
        assert!((0.0..=1.0).contains(&j), "jaccard {j} outside [0,1]");
        j * (1.0 - j) / k as f64
    }

    /// The Wilson score interval for the true Jaccard given an observed
    /// match count — much tighter than the Hoeffding band near 0 and 1,
    /// where link-prediction queries actually live.
    ///
    /// `z` is the standard-normal quantile for the desired confidence
    /// (1.96 ≈ 95%, 2.576 ≈ 99%). Returns `(low, high) ⊆ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `k == 0`, `matches > k`, or `z <= 0`.
    #[must_use]
    pub fn wilson_interval(matches: usize, k: usize, z: f64) -> (f64, f64) {
        assert!(k > 0, "zero-slot sketch");
        assert!(matches <= k, "more matches than slots");
        assert!(z > 0.0, "z-score must be positive");
        let n = k as f64;
        let p = matches as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Propagates the Jaccard tolerance to the common-neighbor estimate
    /// via the delta method: `CN(J) = J·D/(1+J)` with `D = d_u + d_v` has
    /// `|dCN/dJ| = D/(1+J)² ≤ D`, so an ε-accurate Ĵ yields a CN error of
    /// at most `ε·D` (first order).
    #[must_use]
    pub fn cn_error_bound(&self, deg_u: u64, deg_v: u64) -> f64 {
        self.epsilon * (deg_u + deg_v) as f64
    }

    /// A confidence interval on the *common-neighbor count* from an
    /// observed match count: the Wilson interval on `J`, mapped through
    /// the monotone transform `CN(J) = J·(d_u + d_v)/(1 + J)` (monotone
    /// maps of interval endpoints preserve coverage exactly — no delta
    /// method needed here). Endpoints are clamped to
    /// `[0, min(d_u, d_v)]`.
    ///
    /// # Panics
    /// Panics on the same invalid inputs as [`Self::wilson_interval`].
    #[must_use]
    pub fn cn_interval(matches: usize, k: usize, deg_u: u64, deg_v: u64, z: f64) -> (f64, f64) {
        let (j_lo, j_hi) = Self::wilson_interval(matches, k, z);
        let cap = deg_u.min(deg_v) as f64;
        let d = (deg_u + deg_v) as f64;
        let map = |j: f64| (j * d / (1.0 + j)).clamp(0.0, cap);
        (map(j_lo), map(j_hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_slots_known_value() {
        // ε = 0.1, δ = 0.05: ln(40)/(2·0.01) = 184.44… → 185.
        let k = AccuracyPlan::new(0.1, 0.05).required_slots();
        assert_eq!(k, 185);
    }

    #[test]
    fn bounds_are_inverse_of_each_other() {
        for &(eps, delta) in &[(0.05, 0.01), (0.1, 0.05), (0.2, 0.1)] {
            let k = AccuracyPlan::new(eps, delta).required_slots();
            // A k-slot sketch guarantees ε' ≤ ε at the same δ.
            let eps_back = AccuracyPlan::error_bound(k, delta);
            assert!(eps_back <= eps + 1e-12, "ε'={eps_back} > ε={eps}");
            // And k−1 slots would not suffice.
            if k > 1 {
                assert!(AccuracyPlan::error_bound(k - 1, delta) > eps);
            }
        }
    }

    #[test]
    fn more_slots_tighter_error() {
        let mut last = f64::INFINITY;
        for k in [16, 64, 256, 1024] {
            let e = AccuracyPlan::error_bound(k, 0.05);
            assert!(e < last);
            last = e;
        }
    }

    #[test]
    fn error_scales_inverse_sqrt_k() {
        let e1 = AccuracyPlan::error_bound(100, 0.05);
        let e4 = AccuracyPlan::error_bound(400, 0.05);
        assert!((e1 / e4 - 2.0).abs() < 1e-9, "4× slots should halve ε");
    }

    #[test]
    fn failure_probability_decays_exponentially() {
        let p1 = AccuracyPlan::failure_probability(100, 0.1);
        let p2 = AccuracyPlan::failure_probability(200, 0.1);
        // Doubling k squares the (normalized) bound: p2 = p1²/2.
        assert!((p2 - p1 * p1 / 2.0).abs() < 1e-12);
        assert_eq!(AccuracyPlan::failure_probability(1, 0.001), 1.0, "cap at 1");
    }

    #[test]
    fn cn_bound_scales_with_degrees() {
        let plan = AccuracyPlan::new(0.1, 0.05);
        assert_eq!(plan.cn_error_bound(10, 20), 3.0);
        assert!(plan.cn_error_bound(100, 200) > plan.cn_error_bound(10, 20));
    }

    #[test]
    fn variance_peaks_at_half() {
        let k = 100;
        let at = |j: f64| AccuracyPlan::jaccard_variance(j, k);
        assert_eq!(at(0.0), 0.0);
        assert_eq!(at(1.0), 0.0);
        assert!(at(0.5) > at(0.3));
        assert!(at(0.5) > at(0.8));
        assert!((at(0.5) - 0.25 / 100.0).abs() < 1e-15);
        // Quadrupling k quarters the variance.
        assert!((AccuracyPlan::jaccard_variance(0.4, 400) * 4.0 - at(0.4)).abs() < 1e-15);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        for &(m, k) in &[(0usize, 64usize), (10, 64), (32, 64), (64, 64)] {
            let p = m as f64 / k as f64;
            let (lo, hi) = AccuracyPlan::wilson_interval(m, k, 1.96);
            assert!(
                lo <= p + 1e-12 && p <= hi + 1e-12,
                "({m},{k}): [{lo},{hi}] vs {p}"
            );
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_interval_shrinks_with_k() {
        let width = |k: usize| {
            let (lo, hi) = AccuracyPlan::wilson_interval(k / 4, k, 1.96);
            hi - lo
        };
        assert!(width(256) < width(64));
        assert!(width(1024) < width(256));
    }

    #[test]
    fn wilson_interval_never_degenerate_at_extremes() {
        // Observed 0 matches still leaves room for small positive J.
        let (lo, hi) = AccuracyPlan::wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.1, "upper bound {hi}");
        // Observed all matches leaves room below 1 (the upper endpoint
        // is 1 up to rounding in the clamp arithmetic).
        let (lo, hi) = AccuracyPlan::wilson_interval(100, 100, 1.96);
        assert!(hi > 1.0 - 1e-9, "upper bound {hi}");
        assert!(lo < 1.0 && lo > 0.9, "lower bound {lo}");
    }

    #[test]
    fn cn_interval_contains_point_estimate_and_respects_cap() {
        let (k, du, dv) = (128usize, 30u64, 50u64);
        for matches in [0usize, 16, 64, 128] {
            let j = matches as f64 / k as f64;
            let cn_point = (j * (du + dv) as f64 / (1.0 + j)).clamp(0.0, du.min(dv) as f64);
            let (lo, hi) = AccuracyPlan::cn_interval(matches, k, du, dv, 1.96);
            assert!(
                lo <= cn_point + 1e-9 && cn_point <= hi + 1e-9,
                "m = {matches}"
            );
            assert!(lo >= 0.0 && hi <= du.min(dv) as f64 + 1e-9, "m = {matches}");
            assert!(lo <= hi);
        }
    }

    #[test]
    fn cn_interval_monotone_in_matches() {
        let mut last_hi = -1.0;
        for matches in 0..=64usize {
            let (_, hi) = AccuracyPlan::cn_interval(matches, 64, 20, 20, 1.96);
            assert!(hi >= last_hi - 1e-12);
            last_hi = hi;
        }
    }

    #[test]
    fn wilson_covers_truth_empirically() {
        // Binomial draws at J = 0.3: the 95% interval must cover the
        // truth in ~95% of trials (require >= 90% with 400 trials).
        use hashkit::SeededHash;
        let (j, k) = (0.3f64, 128usize);
        let mut covered = 0;
        let trials = 400;
        for t in 0..trials {
            let h = SeededHash::new(t);
            let matches = (0..k)
                .filter(|&i| {
                    let u = (h.hash(i as u64) >> 11) as f64 / 9_007_199_254_740_992.0;
                    u < j
                })
                .count();
            let (lo, hi) = AccuracyPlan::wilson_interval(matches, k, 1.96);
            if lo <= j && j <= hi {
                covered += 1;
            }
        }
        assert!(
            covered * 10 >= trials * 9,
            "Wilson coverage too low: {covered}/{trials}"
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_epsilon_rejected() {
        let _ = AccuracyPlan::new(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_delta_rejected() {
        let _ = AccuracyPlan::new(0.1, 1.0);
    }
}
