//! Lease-based automatic failover: epochs, majority votes, and timelines.
//!
//! This module is the *pure* half of the failover design — a state
//! machine over explicit millisecond timestamps, with no threads, no
//! sockets, and no wall clock. The live server (`cli::server::failover`)
//! and the E25 chaos gate (`exp_failover`) drive the exact same code,
//! which is what lets the simulation's safety argument transfer to
//! production.
//!
//! # The protocol
//!
//! A cluster is a fixed set of `n` nodes (configured up front, no
//! membership changes). At any moment each node is a [`Role::Primary`]
//! or a [`Role::Replica`]; exactly one primary may be **writable**.
//!
//! * **Leases.** Replicas heartbeat the primary (`REPL LEASE` on the
//!   wire). Each successful same-epoch exchange renews two timers at
//!   once: the replica's *lease on the primary* and the primary's
//!   *claim on that peer*. The primary stays writable only while a
//!   majority of the cluster (itself included) is lease-fresh — an
//!   isolated primary therefore fences **itself** within one lease,
//!   before anyone else can be elected (see the timing argument below).
//! * **Elections.** A replica whose lease has been expired for a full
//!   extra lease (plus a per-rank stagger so the most-caught-up peer
//!   moves first) starts a candidacy for `epoch + 1` and asks every
//!   peer for a vote. A vote is granted at most once per epoch
//!   (persisted by durable nodes), only to candidates at least as
//!   caught-up as the granter, and only while the granter's own lease
//!   on the old primary is expired. A majority of grants promotes the
//!   candidate.
//! * **Fencing.** Every exchange carries an epoch. A node that sees a
//!   higher epoch adopts it and steps down if it was primary; a node
//!   that sees a lower one answers `ERR fenced`/`ERR behind` so the
//!   stale party re-probes. Roles are never persisted: a restarted
//!   node always comes back as a replica, so a revived old primary can
//!   only regain writes by winning a fresh election.
//!
//! # Why at most one writable node at any instant
//!
//! Let `L` be the lease. A vote for `epoch + 1` is granted only by a
//! node whose last successful exchange with the epoch-`e` primary is
//! more than `2L` old (`candidacy_due` gates the candidate, and
//! `grant_vote` gates each granter on its *own* expired lease). The
//! primary, symmetrically, is writable only while a majority of peers
//! exchanged within `L`. A majority of granters and the primary's
//! freshness majority must intersect in at least one node; that node
//! both renewed the primary within the last `L` and granted a vote
//! after `2L` of silence — impossible on one monotonic clock, and
//! still impossible for distinct clocks whose rates differ by less
//! than 2×. Granting also bumps the granter's epoch, so any later
//! exchange from it fences the old primary immediately.
//!
//! Acked writes that the old primary journaled but never shipped are
//! not lost: on rejoin it *hands off* its un-replicated tail to the
//! new timeline (see [`Timeline`]) before wholesale-resyncing.

use std::collections::HashMap;

/// What a node currently is. Roles are deliberately **not** persisted —
/// a restart always rejoins as [`Role::Replica`] and must win (or
/// discover) its way back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes while its majority lease holds; ships the WAL.
    Primary,
    /// Read-only; pulls the WAL, renews leases, votes in elections.
    Replica,
}

/// Outcome of an incoming same-plane exchange, telling the caller what
/// the epoch comparison implied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeOutcome {
    /// Same epoch — timers renewed, all good.
    Ok,
    /// The remote ran a *newer* epoch; we adopted it (and stepped down
    /// if we were primary). The caller should re-probe for the new
    /// primary before trusting any cached address.
    Adopted,
    /// The remote ran an *older* epoch. Do not renew anything; answer
    /// with a fencing error so it re-probes.
    RemoteStale,
}

/// An in-flight candidacy: the epoch being sought and who granted it.
#[derive(Debug, Clone)]
struct Candidacy {
    epoch: u64,
    granted: Vec<String>,
    started_ms: u64,
}

/// The per-node failover state machine. All time parameters are plain
/// monotonic milliseconds supplied by the caller.
#[derive(Debug, Clone)]
pub struct FailoverNode {
    id: String,
    cluster_size: usize,
    lease_ms: u64,
    epoch: u64,
    role: Role,
    /// `(epoch, candidate)` of the newest vote granted. Durable nodes
    /// persist this — double-voting in one epoch elects two primaries.
    voted: Option<(u64, String)>,
    /// Replica side: last successful same-epoch exchange with the
    /// primary (also armed at boot so a fresh node waits a full
    /// election timeout before seeking votes).
    last_primary_ok_ms: Option<u64>,
    /// Primary side: per-peer time of the last same-epoch lease.
    peer_seen_ms: HashMap<String, u64>,
    pending: Option<Candidacy>,
    /// Set by an operator `PROMOTE` override: writable without a
    /// majority. Cleared the moment a higher epoch appears.
    forced: bool,
}

impl FailoverNode {
    /// A fresh node at epoch 0, role replica, clock not yet armed.
    #[must_use]
    pub fn new(id: &str, cluster_size: usize, lease_ms: u64) -> Self {
        FailoverNode {
            id: id.to_string(),
            cluster_size: cluster_size.max(1),
            lease_ms: lease_ms.max(1),
            epoch: 0,
            role: Role::Replica,
            voted: None,
            last_primary_ok_ms: None,
            peer_seen_ms: HashMap::new(),
            pending: None,
            forced: false,
        }
    }

    /// Restores persisted election state (epoch and vote) after a
    /// restart. Role is intentionally not restorable.
    pub fn restore(&mut self, epoch: u64, voted: Option<(u64, String)>) {
        self.epoch = epoch;
        self.voted = voted;
    }

    /// Claims the initial primaryship of a brand-new cluster. Only
    /// legal at epoch 0 — on any later epoch the `--primary` flag is a
    /// stale supervisor command line and must be ignored.
    ///
    /// Returns whether the claim took effect.
    pub fn bootstrap_primary(&mut self) -> bool {
        if self.epoch != 0 {
            return false;
        }
        self.epoch = 1;
        self.role = Role::Primary;
        true
    }

    /// Operator override: force this node primary in a fresh epoch and
    /// make it writable without a majority. The operator owns the
    /// split-brain risk (documented in OPERATIONS §11.3).
    pub fn force_promote(&mut self) -> u64 {
        self.epoch += 1;
        self.role = Role::Primary;
        self.pending = None;
        self.peer_seen_ms.clear();
        self.forced = true;
        self.epoch
    }

    /// Operator override: step down to replica without an election.
    pub fn force_demote(&mut self) {
        self.step_down();
    }

    /// This node's cluster id (its advertised address).
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The current fencing epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current role.
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }

    /// The `(epoch, candidate)` this node last voted for, if any.
    #[must_use]
    pub fn voted(&self) -> Option<&(u64, String)> {
        self.voted.as_ref()
    }

    /// The lease window in milliseconds.
    #[must_use]
    pub fn lease_ms(&self) -> u64 {
        self.lease_ms
    }

    /// Votes (including one's own) needed to win an election.
    #[must_use]
    pub fn majority(&self) -> usize {
        self.cluster_size / 2 + 1
    }

    /// Starts the election clock for a node that has never heard from a
    /// primary, so "silent since boot" is measured from boot, not 0.
    pub fn arm(&mut self, now_ms: u64) {
        if self.last_primary_ok_ms.is_none() {
            self.last_primary_ok_ms = Some(now_ms);
        }
    }

    // ---- primary side -----------------------------------------------

    /// Records an incoming lease exchange from `peer` claiming
    /// `peer_epoch`, renewing its freshness when epochs agree.
    pub fn note_peer(&mut self, peer: &str, peer_epoch: u64, now_ms: u64) -> ExchangeOutcome {
        if peer_epoch > self.epoch {
            self.adopt(peer_epoch);
            // Re-arm the election clock: an ex-primary's clock is unset
            // after promotion, and a step-down must not leave the node
            // permanently unable to open a candidacy.
            self.last_primary_ok_ms = Some(now_ms);
            return ExchangeOutcome::Adopted;
        }
        if peer_epoch < self.epoch {
            return ExchangeOutcome::RemoteStale;
        }
        self.peer_seen_ms.insert(peer.to_string(), now_ms);
        ExchangeOutcome::Ok
    }

    /// Until when the current majority of fresh leases keeps this
    /// primary writable, or `None` when it is not a writable primary at
    /// all. A single-node cluster (and a `force_promote`d node) is
    /// writable unconditionally.
    #[must_use]
    pub fn writable_deadline(&self, _now_ms: u64) -> Option<u64> {
        if self.role != Role::Primary {
            return None;
        }
        if self.cluster_size == 1 || self.forced {
            return Some(u64::MAX);
        }
        let needed = self.majority() - 1; // besides ourselves
        let mut seen: Vec<u64> = self.peer_seen_ms.values().copied().collect();
        if seen.len() < needed {
            return None;
        }
        seen.sort_unstable_by(|a, b| b.cmp(a));
        Some(seen[needed - 1].saturating_add(self.lease_ms))
    }

    /// Whether this node may ack a write *right now*.
    #[must_use]
    pub fn writable(&self, now_ms: u64) -> bool {
        self.writable_deadline(now_ms)
            .is_some_and(|until| now_ms <= until)
    }

    // ---- replica side -----------------------------------------------

    /// Records a successful exchange with the primary claiming
    /// `primary_epoch` (renewing our lease on it when epochs allow).
    pub fn note_primary(&mut self, primary_epoch: u64, now_ms: u64) -> ExchangeOutcome {
        if primary_epoch > self.epoch {
            self.adopt(primary_epoch);
            self.last_primary_ok_ms = Some(now_ms);
            return ExchangeOutcome::Adopted;
        }
        if primary_epoch < self.epoch {
            return ExchangeOutcome::RemoteStale;
        }
        self.last_primary_ok_ms = Some(now_ms);
        self.pending = None; // a live same-epoch primary cancels candidacy
        ExchangeOutcome::Ok
    }

    /// Whether our lease on the primary has lapsed (always true before
    /// any exchange).
    #[must_use]
    pub fn lease_expired(&self, now_ms: u64) -> bool {
        self.last_primary_ok_ms
            .is_none_or(|t| now_ms.saturating_sub(t) > self.lease_ms)
    }

    /// Whether it is time to seek votes: the primary has been silent
    /// for two full leases plus `rank` stagger slots of half a lease.
    /// Rank 0 is the most-caught-up candidate (per the last roster the
    /// primary shipped), so it moves before anyone else splits votes.
    #[must_use]
    pub fn candidacy_due(&self, now_ms: u64, rank: u64) -> bool {
        if self.role == Role::Primary {
            return false;
        }
        let Some(last) = self.last_primary_ok_ms else {
            return false; // not armed yet
        };
        let wait = 2 * self.lease_ms + rank * self.lease_ms.div_ceil(2);
        now_ms.saturating_sub(last) >= wait
    }

    /// Whether an in-flight candidacy went stale (vote split) and
    /// should be restarted in a fresh epoch.
    #[must_use]
    pub fn candidacy_stale(&self, now_ms: u64) -> bool {
        self.pending
            .as_ref()
            .is_some_and(|c| now_ms.saturating_sub(c.started_ms) >= self.lease_ms)
    }

    /// Opens a candidacy for `epoch + 1`, voting for ourselves.
    /// Returns the epoch being sought.
    pub fn start_candidacy(&mut self, now_ms: u64) -> u64 {
        let target = self.epoch + 1;
        self.epoch = target;
        self.voted = Some((target, self.id.clone()));
        self.pending = Some(Candidacy {
            epoch: target,
            granted: vec![self.id.clone()],
            started_ms: now_ms,
        });
        // Each attempt consumes a full election timeout (Raft's rule):
        // the next candidacy is due only after `2L` plus our stagger
        // slot, not as soon as this one goes stale. A failed candidate
        // retrying every `L` resonates with the `L`-long refusal window
        // a grant opens on each voter — with two voters alternating in
        // perfect anti-phase, every round collects exactly one remote
        // grant and no election ever completes.
        self.last_primary_ok_ms = Some(now_ms);
        target
    }

    /// The epoch an open candidacy is seeking, if any.
    #[must_use]
    pub fn candidacy_epoch(&self) -> Option<u64> {
        self.pending.as_ref().map(|c| c.epoch)
    }

    /// Decides an incoming `REPL VOTE` request. Granting adopts the
    /// target epoch (stepping down if we were primary) and burns our
    /// vote for it, exactly once per epoch.
    ///
    /// A log identity is `(data_epoch, applied_seq)` and candidates
    /// are compared lexicographically, like Raft's up-to-date rule on
    /// `(term, index)`: a revived ex-primary can carry a high seq on
    /// a dead timeline, and electing it would fork below writes the
    /// newer epoch already acknowledged. Data epoch outranks length.
    pub fn grant_vote(
        &mut self,
        candidate: &str,
        target_epoch: u64,
        candidate_log: (u64, u64),
        own_log: (u64, u64),
        now_ms: u64,
    ) -> bool {
        if target_epoch < self.epoch {
            return false;
        }
        // The vote is burned once per epoch: re-grant the same
        // candidate idempotently (retries), refuse everyone else.
        if let Some((e, who)) = &self.voted {
            if *e == target_epoch {
                return who == candidate;
            }
        }
        // Our own view must agree the old primary is gone: a replica
        // still under lease refuses; a primary refuses while writable.
        // Checked before any epoch adoption so a lone spammer cannot
        // fence a healthy primary through its own voters.
        let agrees_dead = match self.role {
            Role::Replica => self.lease_expired(now_ms),
            Role::Primary => !self.writable(now_ms),
        };
        if !agrees_dead {
            return false;
        }
        if target_epoch > self.epoch {
            // Adopt the higher epoch even when the vote below is
            // refused (Raft's term rule, with the vote left unburned):
            // epochs must converge, or a behind candidate's stale-
            // candidacy retries race the epoch above every viable
            // candidate's target and no election ever completes.
            self.adopt(target_epoch);
        }
        if candidate_log < own_log {
            return false; // only at-least-as-caught-up candidates
        }
        self.voted = Some((target_epoch, candidate.to_string()));
        // Granting resets the election clock (also the Raft rule):
        // without this, a second candidate could harvest the same
        // voters at a higher epoch while the first winner's
        // grant-seeded leases are still fresh — two writable
        // primaries at once.
        self.last_primary_ok_ms = Some(now_ms);
        true
    }

    /// Records a granted vote for the open candidacy. Returns `true`
    /// when this grant reached a majority and we promoted: role flips
    /// to primary and each granter counts as a fresh lease.
    pub fn record_grant(&mut self, from: &str, now_ms: u64) -> bool {
        let Some(c) = self.pending.as_mut() else {
            return false;
        };
        if !c.granted.iter().any(|g| g == from) {
            c.granted.push(from.to_string());
        }
        if c.granted.len() < self.majority() {
            return false;
        }
        let c = self.pending.take().expect("candidacy present");
        self.epoch = c.epoch;
        self.role = Role::Primary;
        self.forced = false;
        self.peer_seen_ms.clear();
        for g in &c.granted {
            if g != &self.id {
                self.peer_seen_ms.insert(g.clone(), now_ms);
            }
        }
        self.last_primary_ok_ms = None;
        true
    }

    /// Adopts a higher epoch learned out-of-band (probe, error reply)
    /// at `now_ms`. Returns whether we were primary and had to step
    /// down. Re-arms the election clock so a stepped-down node can
    /// still campaign if the new epoch's primary never contacts it.
    pub fn observe_epoch(&mut self, epoch: u64, now_ms: u64) -> bool {
        if epoch <= self.epoch {
            return false;
        }
        let was_primary = self.role == Role::Primary;
        self.adopt(epoch);
        self.last_primary_ok_ms = Some(now_ms);
        was_primary
    }

    fn adopt(&mut self, epoch: u64) {
        debug_assert!(epoch >= self.epoch);
        self.epoch = epoch;
        self.step_down();
    }

    fn step_down(&mut self) {
        self.role = Role::Replica;
        self.forced = false;
        self.pending = None;
        self.peer_seen_ms.clear();
    }
}

// ---------------------------------------------------------------------
// Timelines and handoff
// ---------------------------------------------------------------------

/// The fork history of a cluster's WAL plus the handoff high-water
/// marks that make rejoins exactly-once.
///
/// Every promotion records a **fork**: `(epoch, base_seq)` saying
/// "epoch `e`'s WAL extends the shared prefix `..= base_seq`". A node
/// rejoining from an older epoch compares its applied seq against the
/// earliest fork above its data epoch: everything at or below that
/// base is already shared; everything above it is an un-replicated
/// tail that the old timeline acked but the new one never saw. The
/// rejoiner **hands off** that tail (`REPL HANDOFF`) entry by entry;
/// the primary re-acks each as a fresh write in the current epoch.
///
/// Handoffs dedup by a per-old-epoch high-water mark: an entry is
/// accepted only when its seq is exactly `highwater + 1`, so two
/// survivors offering the same tail (their journals are bytewise
/// identical for shared seqs) apply it once, and a gap stops the
/// handoff rather than silently skipping an acked write.
///
/// Each accepted handoff also records its **provenance**: the new seq
/// the re-ack got on the current timeline, mapped back to the
/// `(old_epoch, old_seq)` it came from. Without this, a re-acked entry
/// exists in two journals — the origin's (under the old epoch) and the
/// re-acking primary's (as a plain new write) — and if that primary
/// dies before replicating, both copies would later be handed off
/// under *different* old-epoch high-water marks and applied twice. A
/// rejoiner consults [`Timeline::reack_origin`] and hands such entries
/// off under their origin identity, so every copy dedups against the
/// same mark.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// `(epoch, base_seq)` sorted ascending by epoch.
    forks: Vec<(u64, u64)>,
    /// `(old_epoch, highwater_seq)` of handoffs already folded in.
    handoff: Vec<(u64, u64)>,
    /// `(new_seq, old_epoch, old_seq)` provenance of accepted re-acks,
    /// ascending by `new_seq`.
    reacks: Vec<(u64, u64, u64)>,
}

impl Timeline {
    /// An empty timeline (no forks recorded yet).
    #[must_use]
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Records a promotion: epoch `epoch`'s WAL extends seqs
    /// `..= base_seq`. Idempotent for an identical re-record.
    pub fn record_fork(&mut self, epoch: u64, base_seq: u64) {
        if let Some(&(e, b)) = self.forks.last() {
            if e == epoch {
                debug_assert_eq!(b, base_seq, "fork re-recorded with a different base");
                return;
            }
            debug_assert!(e < epoch, "forks must be recorded in epoch order");
        }
        self.forks.push((epoch, base_seq));
    }

    /// Latest fork's epoch (0 when no fork is recorded yet).
    #[must_use]
    pub fn latest_epoch(&self) -> u64 {
        self.forks.last().map_or(0, |&(e, _)| e)
    }

    /// Base seq of the earliest fork strictly above `epoch` — the point
    /// where a node whose data belongs to `epoch` diverges from the
    /// current timeline. `None` when no later fork exists (the node's
    /// data is a plain prefix).
    #[must_use]
    pub fn fork_after(&self, epoch: u64) -> Option<u64> {
        self.forks
            .iter()
            .find(|&&(e, _)| e > epoch)
            .map(|&(_, b)| b)
    }

    /// Current handoff high-water for tails from `old_epoch` (starts at
    /// the divergence base).
    #[must_use]
    pub fn handoff_highwater(&self, old_epoch: u64) -> Option<u64> {
        let base = self.fork_after(old_epoch)?;
        Some(
            self.handoff
                .iter()
                .find(|&&(e, _)| e == old_epoch)
                .map_or(base, |&(_, hw)| hw.max(base)),
        )
    }

    /// Decides one handoff entry `(old_epoch, seq)` re-acked as
    /// `new_seq` on the current timeline: accepted exactly when
    /// contiguous with the high-water mark; duplicates and gaps are
    /// refused. Acceptance records the re-ack's provenance.
    pub fn accept_handoff(&mut self, old_epoch: u64, seq: u64, new_seq: u64) -> bool {
        let Some(hw) = self.handoff_highwater(old_epoch) else {
            return false; // unknown/current epoch: nothing to hand off
        };
        if seq != hw + 1 {
            return false;
        }
        match self.handoff.iter_mut().find(|(e, _)| *e == old_epoch) {
            Some(slot) => slot.1 = seq,
            None => self.handoff.push((old_epoch, seq)),
        }
        self.reacks.push((new_seq, old_epoch, seq));
        true
    }

    /// The `(old_epoch, old_seq)` a re-acked entry at `new_seq` came
    /// from, if it entered this timeline through a handoff. A rejoiner
    /// hands such entries off under this origin identity so they dedup
    /// against the same high-water mark as the origin's own journal.
    #[must_use]
    pub fn reack_origin(&self, new_seq: u64) -> Option<(u64, u64)> {
        self.reacks
            .iter()
            .find(|&&(n, _, _)| n == new_seq)
            .map(|&(_, e, s)| (e, s))
    }

    /// Renders the timeline as a single `key=value`-safe token, e.g.
    /// `1:0,2:95+1:100~101:1:96` (forks, then `+epoch:highwater`
    /// handoffs, then `~new:epoch:old` re-ack provenance).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.forks.is_empty() {
            out.push('-');
        }
        for (i, &(e, b)) in self.forks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{e}:{b}"));
        }
        for &(e, hw) in &self.handoff {
            out.push_str(&format!("+{e}:{hw}"));
        }
        for &(n, e, s) in &self.reacks {
            out.push_str(&format!("~{n}:{e}:{s}"));
        }
        out
    }

    /// Parses [`Timeline::render`] output. Returns `None` on any
    /// malformed input (never panics on wire data).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let mut tl = Timeline::new();
        let (s, reack_part) = match s.split_once('~') {
            Some((head, r)) => (head, Some(r)),
            None => (s, None),
        };
        let (forks_part, handoff_part) = match s.split_once('+') {
            Some((f, h)) => (f, Some(h)),
            None => (s, None),
        };
        if forks_part != "-" && !forks_part.is_empty() {
            let mut prev = 0u64;
            for pair in forks_part.split(',') {
                let (e, b) = pair.split_once(':')?;
                let e: u64 = e.parse().ok()?;
                let b: u64 = b.parse().ok()?;
                if e == 0 || e <= prev {
                    return None;
                }
                prev = e;
                tl.forks.push((e, b));
            }
        }
        if let Some(rest) = handoff_part {
            for pair in rest.split('+') {
                let (e, hw) = pair.split_once(':')?;
                tl.handoff.push((e.parse().ok()?, hw.parse().ok()?));
            }
        }
        if let Some(rest) = reack_part {
            for triple in rest.split('~') {
                let (n, tail) = triple.split_once(':')?;
                let (e, s) = tail.split_once(':')?;
                tl.reacks
                    .push((n.parse().ok()?, e.parse().ok()?, s.parse().ok()?));
            }
        }
        Some(tl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: u64 = 1000;

    fn node(id: &str) -> FailoverNode {
        FailoverNode::new(id, 3, L)
    }

    #[test]
    fn bootstrap_only_at_epoch_zero() {
        let mut a = node("a");
        assert!(a.bootstrap_primary());
        assert_eq!(a.epoch(), 1);
        assert_eq!(a.role(), Role::Primary);
        let mut b = node("b");
        b.restore(3, None);
        assert!(!b.bootstrap_primary(), "stale --primary must be ignored");
        assert_eq!(b.role(), Role::Replica);
    }

    #[test]
    fn primary_needs_a_fresh_majority_to_stay_writable() {
        let mut a = node("a");
        a.bootstrap_primary();
        assert!(!a.writable(0), "no peer ever leased");
        a.note_peer("b", 1, 100);
        assert!(a.writable(100));
        assert!(a.writable(100 + L));
        assert!(!a.writable(101 + L), "lease lapsed, primary self-fences");
        a.note_peer("b", 1, 2 * L);
        assert!(a.writable(2 * L + L));
    }

    #[test]
    fn single_node_cluster_is_always_writable() {
        let mut a = FailoverNode::new("a", 1, L);
        a.bootstrap_primary();
        assert!(a.writable(u64::MAX - 1));
    }

    #[test]
    fn replica_lease_and_candidacy_timing() {
        let mut b = node("b");
        b.restore(1, None);
        b.arm(0);
        assert!(b.lease_expired(L + 1));
        b.note_primary(1, 500);
        assert!(!b.lease_expired(500 + L));
        assert!(!b.candidacy_due(500 + 2 * L - 1, 0));
        assert!(b.candidacy_due(500 + 2 * L, 0));
        // Rank staggering: rank 1 waits half a lease longer.
        assert!(!b.candidacy_due(500 + 2 * L, 1));
        assert!(b.candidacy_due(500 + 2 * L + L / 2, 1));
    }

    #[test]
    fn election_reaches_majority_and_promotes() {
        let mut b = node("b");
        b.restore(1, None);
        b.arm(0);
        let t = 3 * L;
        assert!(b.candidacy_due(t, 0));
        let target = b.start_candidacy(t);
        assert_eq!(target, 2);
        assert!(!b.record_grant("b", t), "own vote alone is not majority");
        assert!(b.record_grant("c", t));
        assert_eq!(b.role(), Role::Primary);
        assert_eq!(b.epoch(), 2);
        // The granters count as fresh leases: immediately writable.
        assert!(b.writable(t));
        assert!(!b.writable(t + L + 1));
    }

    #[test]
    fn vote_granted_once_per_epoch_and_only_to_caught_up() {
        let mut c = node("c");
        c.restore(1, None);
        c.arm(0);
        let t = 3 * L; // lease long expired
        assert!(
            !c.grant_vote("b", 2, (1, 5), (1, 10), t),
            "candidate behind us"
        );
        assert!(
            !c.grant_vote("b", 2, (1, 99), (2, 5), t),
            "longer log on an older data epoch still loses"
        );
        assert!(c.grant_vote("b", 2, (1, 10), (1, 10), t));
        assert_eq!(c.epoch(), 2, "granting adopts the target epoch");
        assert!(
            !c.grant_vote("d", 2, (1, 99), (1, 10), t),
            "one vote per epoch"
        );
        assert!(
            c.grant_vote("b", 2, (1, 99), (1, 10), t),
            "re-grant to same is ok"
        );
    }

    #[test]
    fn vote_refused_while_lease_fresh_or_primary_writable() {
        let mut c = node("c");
        c.restore(1, None);
        c.note_primary(1, 1000);
        assert!(
            !c.grant_vote("b", 2, (1, 10), (1, 0), 1500),
            "still under lease: primary not agreed dead"
        );
        let mut a = node("a");
        a.bootstrap_primary();
        a.note_peer("b", 1, 1000);
        assert!(
            !a.grant_vote("c", 2, (1, 10), (1, 0), 1200),
            "writable primary refuses"
        );
        assert!(
            a.grant_vote("c", 2, (1, 10), (1, 0), 1000 + L + 1),
            "fenced primary grants"
        );
        assert_eq!(a.role(), Role::Replica, "granting steps the primary down");
    }

    #[test]
    fn higher_epoch_fences_a_primary_on_contact() {
        let mut a = node("a");
        a.bootstrap_primary();
        a.note_peer("b", 1, 0);
        assert!(a.writable(0));
        assert_eq!(a.note_peer("c", 2, 10), ExchangeOutcome::Adopted);
        assert_eq!(a.role(), Role::Replica);
        assert_eq!(a.epoch(), 2);
        assert!(!a.writable(10));
    }

    #[test]
    fn stale_remote_is_reported_not_renewed() {
        let mut a = node("a");
        a.restore(3, None);
        assert_eq!(a.note_peer("b", 2, 0), ExchangeOutcome::RemoteStale);
        assert_eq!(a.note_primary(2, 0), ExchangeOutcome::RemoteStale);
        assert!(a.lease_expired(0), "stale primary must not renew our lease");
    }

    #[test]
    fn mutual_exclusion_across_a_partition_schedule() {
        // One shared clock, primary a + replicas b, c. Partition a away
        // at t=5000; b and c elect. Assert never two writable nodes.
        let mut a = node("a");
        a.bootstrap_primary();
        let mut b = node("b");
        b.restore(1, None);
        let mut c = node("c");
        c.restore(1, None);
        b.arm(0);
        c.arm(0);
        let cut = 5_000u64;
        let mut promoted_at = None;
        for t in (0..20_000).step_by(50) {
            if t < cut {
                a.note_peer("b", b.epoch(), t);
                b.note_primary(1, t);
                a.note_peer("c", c.epoch(), t);
                c.note_primary(1, t);
            }
            // b is rank 0 (most caught up), c rank 1.
            if b.role() == Role::Replica && b.candidacy_due(t, 0) && b.candidacy_epoch().is_none() {
                let target = b.start_candidacy(t);
                if c.grant_vote("b", target, (1, 100), (1, 100), t) {
                    b.record_grant("c", t);
                }
            }
            let writable = [&a, &b, &c].iter().filter(|n| n.writable(t)).count();
            assert!(writable <= 1, "two writable nodes at t={t}");
            if b.role() == Role::Primary && promoted_at.is_none() {
                promoted_at = Some(t);
            }
        }
        let promoted = promoted_at.expect("b should have been elected");
        // The margin runs from b's last successful renewal (the final
        // tick before the cut), not from the cut itself.
        assert!(
            promoted >= (cut - 50) + 2 * L,
            "promotion before the margin"
        );
        assert!(!a.writable(promoted), "old primary fenced before election");
    }

    #[test]
    fn forced_promote_overrides_and_higher_epoch_clears_it() {
        let mut b = node("b");
        b.restore(1, None);
        let e = b.force_promote();
        assert_eq!(e, 2);
        assert!(b.writable(999_999), "forced primary ignores majority");
        assert!(b.observe_epoch(3, 999_999));
        assert!(!b.writable(999_999));
        assert_eq!(b.role(), Role::Replica);
    }

    #[test]
    fn timeline_fork_and_handoff_contract() {
        let mut tl = Timeline::new();
        tl.record_fork(1, 0);
        tl.record_fork(2, 95);
        assert_eq!(tl.latest_epoch(), 2);
        assert_eq!(tl.fork_after(1), Some(95));
        assert_eq!(tl.fork_after(2), None, "current epoch has no divergence");
        // Handoff of epoch-1 tail 96..=98: contiguous only.
        assert!(!tl.accept_handoff(1, 95, 101), "already shared");
        assert!(!tl.accept_handoff(1, 97, 101), "gap refused");
        assert!(tl.accept_handoff(1, 96, 101));
        assert!(!tl.accept_handoff(1, 96, 102), "duplicate refused");
        assert!(tl.accept_handoff(1, 97, 102));
        assert!(tl.accept_handoff(1, 98, 103));
        assert_eq!(tl.handoff_highwater(1), Some(98));
        // A second survivor offering the same tail dedups entirely.
        assert!(!tl.accept_handoff(1, 96, 104));
        // Each accepted re-ack remembers where it came from, so a later
        // handoff of OUR tail re-presents it under the origin identity.
        assert_eq!(tl.reack_origin(102), Some((1, 97)));
        assert_eq!(tl.reack_origin(100), None, "plain writes have no origin");
    }

    #[test]
    fn timeline_render_parse_round_trip() {
        let mut tl = Timeline::new();
        assert_eq!(Timeline::parse(&tl.render()), Some(tl.clone()));
        tl.record_fork(1, 0);
        tl.record_fork(2, 95);
        assert!(tl.accept_handoff(1, 96, 101));
        let s = tl.render();
        assert_eq!(s, "1:0,2:95+1:96~101:1:96");
        assert_eq!(Timeline::parse(&s), Some(tl));
        for bad in [
            "1", "0:0", "2:1,1:0", "1:x", "1:0+z", "1:0+1", "1:0~9", "1:0~9:1",
        ] {
            assert_eq!(Timeline::parse(bad), None, "{bad:?} should not parse");
        }
    }
}
