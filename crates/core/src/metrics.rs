//! Zero-dependency observability: atomic counters, gauges, and
//! fixed-bucket latency histograms behind one process-wide registry.
//!
//! The serving north-star needs workload *measurement* before any
//! workload-aware optimization (gSketch-style partitioning, EdgeSketch's
//! throughput/latency evaluation) is possible. This module provides the
//! counters, cheap enough for the O(k) insert hot path:
//!
//! * [`Counter`] — one relaxed `fetch_add` per event.
//! * [`Gauge`] — a last-write-wins level (set at observation time).
//! * [`LatencyHistogram`] — 32 power-of-two nanosecond buckets; recording
//!   is two relaxed `fetch_add`s plus a `fetch_max`, and percentiles are
//!   computed from a single coherent pass over a bucket snapshot, so a
//!   reported p50 can never exceed the p99 of the same snapshot.
//!
//! ## The registry
//!
//! [`global()`] returns the process-wide [`Metrics`] — a plain `static`
//! of named instruments, so the hot path pays no map lookup and no lock.
//! Everything is always safe to call from any thread.
//!
//! ## Cost model and the `enabled` switch
//!
//! [`Metrics::set_enabled`] gates the *data-plane* hot path
//! ([`crate::store::SketchStore::insert_edge`]): when disabled, inserts
//! skip even the counter increment. Insert latency is additionally
//! *sampled* (1 in [`INSERT_SAMPLE_INTERVAL`]) because two `Instant`
//! reads per edge would be measurable at small `k`. Control-plane
//! instruments (journal, checkpoint, server commands) are always
//! recorded — their cost is dwarfed by the IO they measure. The
//! `exp_metrics` experiment pins the enabled-vs-disabled ingest overhead
//! below 5%.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Instant, SystemTime};

/// Insert latency is timed once every this many inserts (power of two).
pub const INSERT_SAMPLE_INTERVAL: u64 = 64;

const SAMPLE_MASK: u64 = INSERT_SAMPLE_INTERVAL - 1;

/// A monotone event counter (relaxed atomic increments).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter, usable in `static` contexts.
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one; returns the *previous* value (useful for sampling).
    #[inline]
    pub fn incr(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins level (e.g. live connections, journal lag).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge, usable in `static` contexts.
    #[must_use]
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.set(0);
    }
}

/// Number of histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Bucket 0 holds everything at or below this many nanoseconds; each
/// later bucket doubles the bound.
const FIRST_BUCKET_NS: u64 = 128;

/// Upper bound (inclusive, in ns) of bucket `i`; the last bucket absorbs
/// every larger value.
#[must_use]
fn bucket_bound_ns(i: usize) -> u64 {
    FIRST_BUCKET_NS << i
}

fn bucket_index(ns: u64) -> usize {
    // Values <= 128ns land in bucket 0; each doubling moves one bucket up.
    let shifted = ns.saturating_sub(1) / FIRST_BUCKET_NS;
    let idx = (u64::BITS - shifted.leading_zeros()) as usize;
    idx.min(HISTOGRAM_BUCKETS - 1)
}

/// A fixed-bucket latency histogram over power-of-two nanosecond bins.
///
/// Recording is lock-free and allocation-free. Percentiles are answered
/// from a coherent single-pass snapshot of the buckets, which makes them
/// monotone in `p` by construction — p50 ≤ p95 ≤ p99 always holds for
/// values reported together via [`LatencyHistogram::summary`].
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram, usable in `static` contexts.
    #[must_use]
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        LatencyHistogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records the time elapsed since `start`.
    #[inline]
    pub fn observe(&self, start: Instant) {
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.record_ns(ns);
    }

    /// A coherent summary (count, mean, max, p50/p95/p99) from one pass
    /// over the buckets.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let percentile = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // ceil(p * count) with pure integer arithmetic would overflow
            // for huge counts; f64 rank is exact enough for bucket walks.
            let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
            let mut cumulative = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                cumulative += c;
                if cumulative >= rank {
                    return bucket_bound_ns(i);
                }
            }
            bucket_bound_ns(HISTOGRAM_BUCKETS - 1)
        };
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        buckets.copy_from_slice(&counts);
        HistogramSummary {
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            p50_ns: percentile(0.50),
            p95_ns: percentile(0.95),
            p99_ns: percentile(0.99),
            p999_ns: percentile(0.999),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// One coherent histogram read-out. Latencies are bucket upper bounds in
/// nanoseconds, so reported percentiles are conservative (never
/// understated) and p50 ≤ p95 ≤ p99 by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded durations (ns).
    pub sum_ns: u64,
    /// Largest recorded duration (ns).
    pub max_ns: u64,
    /// Median latency (ns, bucket upper bound).
    pub p50_ns: u64,
    /// 95th-percentile latency (ns).
    pub p95_ns: u64,
    /// 99th-percentile latency (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile latency (ns) — the tail the slow-op log hunts.
    pub p999_ns: u64,
    /// Raw per-bucket counts from the same coherent pass; bucket `i`
    /// covers durations up to `128 << i` ns (see [`HistogramSummary::bucket_bound_ns`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSummary {
    /// Upper bound (inclusive, ns) of bucket `i`; the last bucket
    /// absorbs every larger value.
    #[must_use]
    pub fn bucket_bound_ns(i: usize) -> u64 {
        bucket_bound_ns(i.min(HISTOGRAM_BUCKETS - 1))
    }

    /// Export lines this histogram contributes to
    /// [`MetricsSnapshot::render_text`]: seven scalar lines plus one per
    /// non-zero bucket (empty buckets are elided to keep `METRICS`
    /// output proportional to observed behavior).
    #[must_use]
    pub fn text_lines(&self) -> usize {
        7 + self.buckets.iter().filter(|&&c| c > 0).count()
    }
}

/// The process-wide instrument registry. Obtain it via [`global()`].
///
/// Field names mirror the exported metric keys (see
/// `docs/OPERATIONS.md` §8 for meanings and units).
#[derive(Debug)]
pub struct Metrics {
    enabled: AtomicBool,
    /// Edges folded into any [`crate::store::SketchStore`] (data plane).
    pub insert_edges: Counter,
    /// Sampled per-edge insert latency (1 in [`INSERT_SAMPLE_INTERVAL`]).
    pub insert_latency: LatencyHistogram,
    /// Successful [`crate::merge::merge_into`] calls.
    pub merge_ops: Counter,
    /// Whole-merge latency.
    pub merge_latency: LatencyHistogram,
    /// [`crate::parallel::ingest_parallel`] invocations.
    pub parallel_ingests: Counter,
    /// Per-shard ingest duration inside `ingest_parallel`.
    pub shard_latency: LatencyHistogram,
    /// Journal entries appended.
    pub journal_appends: Counter,
    /// Explicit `fdatasync`s issued by the journal.
    pub journal_fsyncs: Counter,
    /// Per-append latency (write + flush + optional sync).
    pub journal_append_latency: LatencyHistogram,
    /// Journal segment rotations.
    pub journal_rotations: Counter,
    /// Journal entries replayed during recovery.
    pub journal_replayed: Counter,
    /// Mid-file corrupt journal records quarantined (not replayed)
    /// during recovery.
    pub wal_replay_skipped: Counter,
    /// Snapshot generations found corrupt on load and skipped in favor
    /// of an older one.
    pub snapshot_fallbacks: Counter,
    /// Checkpoints completed (snapshot written + journal pruned).
    pub checkpoints: Counter,
    /// Checkpoints that failed with an IO error.
    pub checkpoint_failures: Counter,
    /// Whole-checkpoint latency.
    pub checkpoint_latency: LatencyHistogram,
    /// Protocol commands executed (any result).
    pub server_commands: Counter,
    /// Protocol commands answered with `ERR`.
    pub server_command_errors: Counter,
    /// `INSERT` commands accepted.
    pub server_inserts: Counter,
    /// Measure/DEGREE read queries served.
    pub server_queries: Counter,
    /// Whole-command latency at the protocol layer.
    pub server_command_latency: LatencyHistogram,
    /// Connections accepted into a handler thread.
    pub connections_accepted: Counter,
    /// Connections shed with `ERR busy retry` at the cap.
    pub connections_shed: Counter,
    /// Connections refused at the text-protocol connection cap
    /// (`serve.sheds_by_reason.busy`).
    pub sheds_busy: Counter,
    /// Connections closed by the idle-timeout reaper
    /// (`serve.sheds_by_reason.idle_timeout`).
    pub sheds_idle_timeout: Counter,
    /// Scrape requests refused at the HTTP scraper-connection cap
    /// (`serve.sheds_by_reason.http_cap`).
    pub sheds_http_cap: Counter,
    /// Milliseconds the acceptor idled in `accept()` before the most
    /// recent connection arrived (set at accept time): near zero means
    /// the listener is saturated, large means it is waiting for work.
    pub serve_accept_wait_ms: Gauge,
    /// Protocol commands currently in flight across all connection
    /// handlers (set at dispatch entry/exit).
    pub serve_conn_queue_depth: Gauge,
    /// Serve-path phase: command-line tokenization and dispatch.
    pub serve_phase_parse: LatencyHistogram,
    /// Serve-path phase: command execution (store/estimator work).
    pub serve_phase_execute: LatencyHistogram,
    /// Serve-path phase: the durable journal append inside an accepted
    /// `INSERT` (absent for reads).
    pub serve_phase_journal_append: LatencyHistogram,
    /// Serve-path phase: writing and flushing the response bytes.
    pub serve_phase_respond: LatencyHistogram,
    /// `INSERT` commands nacked with `ERR storage` because the journal
    /// append failed.
    pub storage_errors: Counter,
    /// Live connections (set at observation time).
    pub connections_active: Gauge,
    /// Acked edges not yet covered by a snapshot (set at observation
    /// time).
    pub journal_lag_edges: Gauge,
    /// Snapshot generations currently retained on disk (set at
    /// checkpoint/recovery time).
    pub snapshot_generations_kept: Gauge,
    /// Exit code of the most recent in-process `scrub` run (0 = clean,
    /// 1 = repaired/repairable, 2 = unrepairable loss).
    pub scrub_last_exit: Gauge,
    /// Trace spans recorded into the [`crate::trace`] ring.
    pub trace_spans: Counter,
    /// Spans that met the slow-op threshold.
    pub trace_slow_ops: Counter,
    /// Completed [`crate::audit`] cycles.
    pub audit_cycles: Counter,
    /// Vertex pairs scored by the auditor.
    pub audit_pairs: Counter,
    /// Vertices currently under exact shadow tracking.
    pub audit_tracked_vertices: Gauge,
    /// Rolling mean absolute Jaccard error, parts-per-million.
    pub audit_jaccard_mae_ppm: Gauge,
    /// Rolling p95 relative common-neighbors error, parts-per-million.
    pub audit_cn_rel_err_p95_ppm: Gauge,
    /// Rolling mean absolute Adamic–Adar error, parts-per-million.
    pub audit_aa_mae_ppm: Gauge,
    /// HTTP exposition-plane requests served (any status).
    pub http_requests: Counter,
    /// HTTP requests answered with a non-200 status (bad path, parse
    /// failure, timeout, or shed at the scraper-connection cap).
    pub http_errors: Counter,
    /// Whole-request latency at the HTTP exposition plane.
    pub http_request_latency: LatencyHistogram,
    /// Total modeled resident bytes across every accounted component
    /// (see [`crate::memory::MemoryReport`]).
    pub mem_total_bytes: Gauge,
    /// Sketch slot bytes (`vertices × k × slot size`).
    pub mem_sketch_slot_bytes: Gauge,
    /// Sketch hash-map overhead (capacity-based model).
    pub mem_sketch_map_bytes: Gauge,
    /// Degree-counter map bytes (capacity-based model).
    pub mem_degree_map_bytes: Gauge,
    /// Fixed store overhead: the struct itself plus per-edge scratch.
    pub mem_store_fixed_bytes: Gauge,
    /// Journal write-buffer capacity (0 without persistence).
    pub mem_journal_buffer_bytes: Gauge,
    /// Trace-ring capacity bytes (constant once the ring exists).
    pub mem_trace_ring_bytes: Gauge,
    /// Audit shadow-adjacency bytes (0 when auditing is off).
    pub mem_audit_shadow_bytes: Gauge,
    /// Vertices covered by the memory report.
    pub mem_vertices: Gauge,
    /// Live total bytes per observed vertex — the paper's
    /// "constant space per vertex" claim as a scrapeable gauge.
    pub mem_bytes_per_vertex: Gauge,
    /// Primary's replication ship-buffer capacity bytes (0 when not a
    /// primary or replication serving is disabled).
    pub mem_repl_buffer_bytes: Gauge,
    /// WAL entries served to pulling replicas (primary).
    pub repl_entries_shipped: Counter,
    /// Full snapshots served to resyncing replicas (primary).
    pub repl_snapshots_shipped: Counter,
    /// Entries applied through the seq-dedup gate (replica).
    pub repl_entries_applied: Counter,
    /// Entries dropped as duplicates / late reorders (replica).
    pub repl_entries_deduped: Counter,
    /// Anti-entropy snapshot joins completed (replica).
    pub repl_anti_entropy_rounds: Counter,
    /// Snapshot resyncs forced by buffer shed, discontinuity, or
    /// primary restart (replica).
    pub repl_resyncs: Counter,
    /// Reconnect attempts after a lost primary link (replica).
    pub repl_reconnects: Counter,
    /// Distinct replicas seen in the last replica-liveness window
    /// (primary; set at observation time).
    pub repl_replicas_connected: Gauge,
    /// Worst known replica lag in edges (primary; set at observation
    /// time).
    pub repl_max_lag_edges: Gauge,
    /// Whether the primary link is currently up (replica; 0/1).
    pub repl_connected: Gauge,
    /// Highest primary seq reflected in the local store (replica).
    pub repl_applied_seq: Gauge,
    /// Known lag behind the primary in edges (replica).
    pub repl_lag_edges: Gauge,
    /// Highest primary seq durably journaled locally (replica; equals
    /// `repl.applied_seq` on in-memory replicas).
    pub repl_persisted_seq: Gauge,
    /// Current failover epoch (cluster mode; 0 outside it).
    pub repl_epoch: Gauge,
    /// Configured failover lease in milliseconds (cluster mode).
    pub repl_lease_ms: Gauge,
    /// Elections won by this node (self-promotion or forced PROMOTE).
    pub repl_promotions: Counter,
    /// Writes refused because this node's primaryship is fenced (lost
    /// majority lease or a newer epoch exists).
    pub repl_fenced_writes: Counter,
    /// Cluster control-plane events recorded into the
    /// [`crate::events`] journal ring.
    pub events_recorded: Counter,
    /// `events.jsonl` size-cap rotations.
    pub events_log_rotations: Counter,
    /// Event-journal ring capacity bytes (constant once the ring
    /// exists).
    pub mem_events_ring_bytes: Gauge,
}

impl Metrics {
    const fn new() -> Self {
        Metrics {
            enabled: AtomicBool::new(true),
            insert_edges: Counter::new(),
            insert_latency: LatencyHistogram::new(),
            merge_ops: Counter::new(),
            merge_latency: LatencyHistogram::new(),
            parallel_ingests: Counter::new(),
            shard_latency: LatencyHistogram::new(),
            journal_appends: Counter::new(),
            journal_fsyncs: Counter::new(),
            journal_append_latency: LatencyHistogram::new(),
            journal_rotations: Counter::new(),
            journal_replayed: Counter::new(),
            wal_replay_skipped: Counter::new(),
            snapshot_fallbacks: Counter::new(),
            checkpoints: Counter::new(),
            checkpoint_failures: Counter::new(),
            checkpoint_latency: LatencyHistogram::new(),
            server_commands: Counter::new(),
            server_command_errors: Counter::new(),
            server_inserts: Counter::new(),
            server_queries: Counter::new(),
            server_command_latency: LatencyHistogram::new(),
            connections_accepted: Counter::new(),
            connections_shed: Counter::new(),
            sheds_busy: Counter::new(),
            sheds_idle_timeout: Counter::new(),
            sheds_http_cap: Counter::new(),
            serve_accept_wait_ms: Gauge::new(),
            serve_conn_queue_depth: Gauge::new(),
            serve_phase_parse: LatencyHistogram::new(),
            serve_phase_execute: LatencyHistogram::new(),
            serve_phase_journal_append: LatencyHistogram::new(),
            serve_phase_respond: LatencyHistogram::new(),
            storage_errors: Counter::new(),
            connections_active: Gauge::new(),
            journal_lag_edges: Gauge::new(),
            snapshot_generations_kept: Gauge::new(),
            scrub_last_exit: Gauge::new(),
            trace_spans: Counter::new(),
            trace_slow_ops: Counter::new(),
            audit_cycles: Counter::new(),
            audit_pairs: Counter::new(),
            audit_tracked_vertices: Gauge::new(),
            audit_jaccard_mae_ppm: Gauge::new(),
            audit_cn_rel_err_p95_ppm: Gauge::new(),
            audit_aa_mae_ppm: Gauge::new(),
            http_requests: Counter::new(),
            http_errors: Counter::new(),
            http_request_latency: LatencyHistogram::new(),
            mem_total_bytes: Gauge::new(),
            mem_sketch_slot_bytes: Gauge::new(),
            mem_sketch_map_bytes: Gauge::new(),
            mem_degree_map_bytes: Gauge::new(),
            mem_store_fixed_bytes: Gauge::new(),
            mem_journal_buffer_bytes: Gauge::new(),
            mem_trace_ring_bytes: Gauge::new(),
            mem_audit_shadow_bytes: Gauge::new(),
            mem_vertices: Gauge::new(),
            mem_bytes_per_vertex: Gauge::new(),
            mem_repl_buffer_bytes: Gauge::new(),
            repl_entries_shipped: Counter::new(),
            repl_snapshots_shipped: Counter::new(),
            repl_entries_applied: Counter::new(),
            repl_entries_deduped: Counter::new(),
            repl_anti_entropy_rounds: Counter::new(),
            repl_resyncs: Counter::new(),
            repl_reconnects: Counter::new(),
            repl_replicas_connected: Gauge::new(),
            repl_max_lag_edges: Gauge::new(),
            repl_connected: Gauge::new(),
            repl_applied_seq: Gauge::new(),
            repl_lag_edges: Gauge::new(),
            repl_persisted_seq: Gauge::new(),
            repl_epoch: Gauge::new(),
            repl_lease_ms: Gauge::new(),
            repl_promotions: Counter::new(),
            repl_fenced_writes: Counter::new(),
            events_recorded: Counter::new(),
            events_log_rotations: Counter::new(),
            mem_events_ring_bytes: Gauge::new(),
        }
    }

    /// Whether data-plane (insert hot path) instrumentation is on.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns data-plane instrumentation on or off. Control-plane
    /// instruments are unaffected.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Hot-path hook for `SketchStore::insert_edge`: counts the edge and
    /// decides (by sampling) whether this one should be timed. Returns
    /// `Some(start)` when the caller must report back via
    /// [`Metrics::insert_latency`].
    #[inline]
    #[must_use]
    pub fn on_insert(&self) -> Option<Instant> {
        if !self.enabled() {
            return None;
        }
        let n = self.insert_edges.incr();
        (n & SAMPLE_MASK == 0).then(Instant::now)
    }

    /// A coherent snapshot of every instrument, in a stable export order.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("core.insert.edges", self.insert_edges.get()),
                ("core.merge.ops", self.merge_ops.get()),
                ("core.parallel.ingests", self.parallel_ingests.get()),
                ("journal.appends", self.journal_appends.get()),
                ("journal.fsyncs", self.journal_fsyncs.get()),
                ("journal.rotations", self.journal_rotations.get()),
                ("journal.replayed", self.journal_replayed.get()),
                (
                    "journal.replay_skipped_records",
                    self.wal_replay_skipped.get(),
                ),
                ("snapshot.fallbacks_total", self.snapshot_fallbacks.get()),
                ("checkpoint.count", self.checkpoints.get()),
                ("checkpoint.failures", self.checkpoint_failures.get()),
                ("server.commands", self.server_commands.get()),
                ("server.command_errors", self.server_command_errors.get()),
                ("server.inserts", self.server_inserts.get()),
                ("server.queries", self.server_queries.get()),
                (
                    "server.connections_accepted",
                    self.connections_accepted.get(),
                ),
                ("server.connections_shed", self.connections_shed.get()),
                ("serve.sheds_by_reason.busy", self.sheds_busy.get()),
                (
                    "serve.sheds_by_reason.idle_timeout",
                    self.sheds_idle_timeout.get(),
                ),
                ("serve.sheds_by_reason.http_cap", self.sheds_http_cap.get()),
                ("server.storage_errors", self.storage_errors.get()),
                ("trace.spans", self.trace_spans.get()),
                ("trace.slow_ops", self.trace_slow_ops.get()),
                ("audit.cycles", self.audit_cycles.get()),
                ("audit.pairs", self.audit_pairs.get()),
                ("http.requests", self.http_requests.get()),
                ("http.errors", self.http_errors.get()),
                ("repl.entries_shipped", self.repl_entries_shipped.get()),
                ("repl.snapshots_shipped", self.repl_snapshots_shipped.get()),
                ("repl.entries_applied", self.repl_entries_applied.get()),
                ("repl.entries_deduped", self.repl_entries_deduped.get()),
                (
                    "repl.anti_entropy_rounds",
                    self.repl_anti_entropy_rounds.get(),
                ),
                ("repl.resyncs", self.repl_resyncs.get()),
                ("repl.reconnects", self.repl_reconnects.get()),
                ("repl.promotions", self.repl_promotions.get()),
                ("repl.fenced_writes", self.repl_fenced_writes.get()),
                ("events.recorded", self.events_recorded.get()),
                ("events.log_rotations", self.events_log_rotations.get()),
            ],
            gauges: vec![
                ("server.connections_active", self.connections_active.get()),
                ("serve.accept_wait_ms", self.serve_accept_wait_ms.get()),
                ("serve.conn_queue_depth", self.serve_conn_queue_depth.get()),
                ("journal.lag_edges", self.journal_lag_edges.get()),
                (
                    "snapshot.generations_kept",
                    self.snapshot_generations_kept.get(),
                ),
                ("scrub.last_exit", self.scrub_last_exit.get()),
                ("audit.tracked_vertices", self.audit_tracked_vertices.get()),
                ("audit.jaccard_mae_ppm", self.audit_jaccard_mae_ppm.get()),
                (
                    "audit.cn_rel_err_p95_ppm",
                    self.audit_cn_rel_err_p95_ppm.get(),
                ),
                ("audit.aa_mae_ppm", self.audit_aa_mae_ppm.get()),
                ("mem.total_bytes", self.mem_total_bytes.get()),
                ("mem.sketch_slot_bytes", self.mem_sketch_slot_bytes.get()),
                ("mem.sketch_map_bytes", self.mem_sketch_map_bytes.get()),
                ("mem.degree_map_bytes", self.mem_degree_map_bytes.get()),
                ("mem.store_fixed_bytes", self.mem_store_fixed_bytes.get()),
                (
                    "mem.journal_buffer_bytes",
                    self.mem_journal_buffer_bytes.get(),
                ),
                ("mem.trace_ring_bytes", self.mem_trace_ring_bytes.get()),
                ("mem.audit_shadow_bytes", self.mem_audit_shadow_bytes.get()),
                ("mem.vertices", self.mem_vertices.get()),
                ("mem.bytes_per_vertex", self.mem_bytes_per_vertex.get()),
                ("mem.repl_buffer_bytes", self.mem_repl_buffer_bytes.get()),
                ("mem.events_ring_bytes", self.mem_events_ring_bytes.get()),
                (
                    "repl.replicas_connected",
                    self.repl_replicas_connected.get(),
                ),
                ("repl.max_lag_edges", self.repl_max_lag_edges.get()),
                ("repl.connected", self.repl_connected.get()),
                ("repl.applied_seq", self.repl_applied_seq.get()),
                ("repl.lag_edges", self.repl_lag_edges.get()),
                ("repl.persisted_seq", self.repl_persisted_seq.get()),
                ("repl.epoch", self.repl_epoch.get()),
                ("repl.lease_ms", self.repl_lease_ms.get()),
                ("process.uptime_secs", uptime_secs()),
                ("process.as_of_unix_ms", as_of_unix_ms()),
            ],
            histograms: vec![
                ("core.insert.latency_ns", self.insert_latency.summary()),
                ("core.merge.latency_ns", self.merge_latency.summary()),
                (
                    "core.parallel.shard_latency_ns",
                    self.shard_latency.summary(),
                ),
                (
                    "journal.append_latency_ns",
                    self.journal_append_latency.summary(),
                ),
                ("checkpoint.latency_ns", self.checkpoint_latency.summary()),
                (
                    "server.command_latency_ns",
                    self.server_command_latency.summary(),
                ),
                ("serve.phase.parse_ns", self.serve_phase_parse.summary()),
                ("serve.phase.execute_ns", self.serve_phase_execute.summary()),
                (
                    "serve.phase.journal_append_ns",
                    self.serve_phase_journal_append.summary(),
                ),
                ("serve.phase.respond_ns", self.serve_phase_respond.summary()),
                (
                    "http.request_latency_ns",
                    self.http_request_latency.summary(),
                ),
            ],
        }
    }

    /// Zeroes every instrument (benchmarks and tests; the serving path
    /// never resets).
    pub fn reset(&self) {
        for c in [
            &self.insert_edges,
            &self.merge_ops,
            &self.parallel_ingests,
            &self.journal_appends,
            &self.journal_fsyncs,
            &self.journal_rotations,
            &self.journal_replayed,
            &self.wal_replay_skipped,
            &self.snapshot_fallbacks,
            &self.checkpoints,
            &self.checkpoint_failures,
            &self.server_commands,
            &self.server_command_errors,
            &self.server_inserts,
            &self.server_queries,
            &self.connections_accepted,
            &self.connections_shed,
            &self.sheds_busy,
            &self.sheds_idle_timeout,
            &self.sheds_http_cap,
            &self.storage_errors,
            &self.trace_spans,
            &self.trace_slow_ops,
            &self.audit_cycles,
            &self.audit_pairs,
            &self.http_requests,
            &self.http_errors,
            &self.repl_entries_shipped,
            &self.repl_snapshots_shipped,
            &self.repl_entries_applied,
            &self.repl_entries_deduped,
            &self.repl_anti_entropy_rounds,
            &self.repl_resyncs,
            &self.repl_reconnects,
            &self.repl_promotions,
            &self.repl_fenced_writes,
            &self.events_recorded,
            &self.events_log_rotations,
        ] {
            c.reset();
        }
        self.connections_active.reset();
        self.serve_accept_wait_ms.reset();
        self.serve_conn_queue_depth.reset();
        self.journal_lag_edges.reset();
        self.snapshot_generations_kept.reset();
        self.scrub_last_exit.reset();
        self.audit_tracked_vertices.reset();
        self.audit_jaccard_mae_ppm.reset();
        self.audit_cn_rel_err_p95_ppm.reset();
        self.audit_aa_mae_ppm.reset();
        self.mem_total_bytes.reset();
        self.mem_sketch_slot_bytes.reset();
        self.mem_sketch_map_bytes.reset();
        self.mem_degree_map_bytes.reset();
        self.mem_store_fixed_bytes.reset();
        self.mem_journal_buffer_bytes.reset();
        self.mem_trace_ring_bytes.reset();
        self.mem_audit_shadow_bytes.reset();
        self.mem_vertices.reset();
        self.mem_bytes_per_vertex.reset();
        self.mem_repl_buffer_bytes.reset();
        self.mem_events_ring_bytes.reset();
        self.repl_replicas_connected.reset();
        self.repl_max_lag_edges.reset();
        self.repl_connected.reset();
        self.repl_applied_seq.reset();
        self.repl_lag_edges.reset();
        self.repl_persisted_seq.reset();
        self.repl_epoch.reset();
        self.repl_lease_ms.reset();
        for h in [
            &self.insert_latency,
            &self.merge_latency,
            &self.shard_latency,
            &self.journal_append_latency,
            &self.checkpoint_latency,
            &self.server_command_latency,
            &self.serve_phase_parse,
            &self.serve_phase_execute,
            &self.serve_phase_journal_append,
            &self.serve_phase_respond,
            &self.http_request_latency,
        ] {
            h.reset();
        }
    }
}

static GLOBAL: Metrics = Metrics::new();

/// The process-wide metrics registry.
#[must_use]
pub fn global() -> &'static Metrics {
    // Anchor the uptime clock on first registry access so
    // `process.uptime_secs` measures from effective process start.
    let _ = process_start();
    &GLOBAL
}

/// The instant the registry was first touched (≈ process start; the
/// `Metrics` static is `const`-constructed so it cannot hold an
/// `Instant` itself).
#[must_use]
pub fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Whole seconds since [`process_start`] — monotone, restart-resetting.
#[must_use]
pub fn uptime_secs() -> u64 {
    process_start().elapsed().as_secs()
}

/// Current wall-clock time in Unix milliseconds (0 if the system clock
/// sits before the epoch).
#[must_use]
pub fn as_of_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// One coherent read-out of the whole registry, renderable as text
/// key=value lines (the `METRICS` protocol command) or JSON
/// (`--metrics-out`).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// `(key, value)` monotone counters.
    pub counters: Vec<(&'static str, u64)>,
    /// `(key, value)` point-in-time levels.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(key, summary)` latency histograms.
    pub histograms: Vec<(&'static str, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Looks up a counter or gauge by key.
    #[must_use]
    pub fn value(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .chain(&self.gauges)
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by key.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, h)| h)
    }

    /// Renders `key=value` lines — one per counter and gauge, and per
    /// histogram seven scalars (`.count`, `.sum`, `.max`, `.p50`,
    /// `.p95`, `.p99`, `.p999`) plus one `.bucket_le_<ns>` line per
    /// non-zero bucket — in stable order, one metric per line, no
    /// trailing newline.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.counters.iter().chain(&self.gauges) {
            out.push_str(&format!("{k}={v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k}.count={}\n{k}.sum={}\n{k}.max={}\n{k}.p50={}\n{k}.p95={}\n{k}.p99={}\n\
                 {k}.p999={}\n",
                h.count, h.sum_ns, h.max_ns, h.p50_ns, h.p95_ns, h.p99_ns, h.p999_ns
            ));
            for (i, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    out.push_str(&format!(
                        "{k}.bucket_le_{}={c}\n",
                        HistogramSummary::bucket_bound_ns(i)
                    ));
                }
            }
        }
        out.pop(); // drop the final '\n'
        out
    }

    /// Renders the snapshot as a self-describing JSON object (schema
    /// `streamlink.metrics.v1`). Hand-rolled: keys are static
    /// identifiers and values are integers, so no escaping is needed.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"streamlink.metrics.v1\",\"counters\":{");
        let kv: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        out.push_str(&kv.join(","));
        out.push_str("},\"gauges\":{");
        let kv: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        out.push_str(&kv.join(","));
        out.push_str("},\"histograms\":{");
        let kv: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect();
                format!(
                    "\"{k}\":{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\
                     \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\
                     \"buckets\":[{}]}}",
                    h.count,
                    h.sum_ns,
                    h.max_ns,
                    h.p50_ns,
                    h.p95_ns,
                    h.p99_ns,
                    h.p999_ns,
                    buckets.join(",")
                )
            })
            .collect();
        out.push_str(&kv.join(","));
        // Snapshot timestamps at top level so scraped files are
        // orderable even when the gauges section is filtered away.
        out.push_str(&format!(
            "}},\"uptime_secs\":{},\"as_of_unix_ms\":{}}}",
            self.value("process.uptime_secs").unwrap_or(0),
            self.value("process.as_of_unix_ms").unwrap_or(0),
        ));
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4), for the HTTP `/metrics` endpoint.
    ///
    /// Dotted keys are mangled to legal metric names (`.` → `_`) under a
    /// `streamlink_` namespace; counters gain the conventional `_total`
    /// suffix. Each histogram becomes a native Prometheus histogram:
    /// cumulative `_bucket{le="…"}` series over the registry's
    /// power-of-two nanosecond bounds (the last, open-ended bucket is
    /// exported as `le="+Inf"` only, so every finite bound is honest),
    /// plus `_sum` and `_count`. Ends with a trailing newline, as the
    /// format requires.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        fn mangle(key: &str) -> String {
            let mut name = String::with_capacity(key.len() + 11);
            name.push_str("streamlink_");
            for c in key.chars() {
                name.push(if c == '.' { '_' } else { c });
            }
            name
        }
        let mut out = String::new();
        for (key, value) in &self.counters {
            let name = format!("{}_total", mangle(key));
            out.push_str(&format!(
                "# HELP {name} Streamlink counter `{key}`.\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        for (key, value) in &self.gauges {
            let name = mangle(key);
            out.push_str(&format!(
                "# HELP {name} Streamlink gauge `{key}`.\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        }
        for (key, h) in &self.histograms {
            let name = mangle(key);
            out.push_str(&format!(
                "# HELP {name} Streamlink latency histogram `{key}` (nanoseconds).\n\
                 # TYPE {name} histogram\n"
            ));
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
                cumulative += c;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    HistogramSummary::bucket_bound_ns(i)
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!(
                "{name}_sum {}\n{name}_count {}\n",
                h.sum_ns, h.count
            ));
        }
        out
    }

    /// Number of exported metric lines ([`MetricsSnapshot::render_text`]
    /// line count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
            + self.gauges.len()
            + self
                .histograms
                .iter()
                .map(|(_, h)| h.text_lines())
                .sum::<usize>()
    }

    /// Whether the snapshot exports nothing (never true for the global
    /// registry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.incr(), 0);
        assert_eq!(c.incr(), 1);
        c.add(10);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(128), 0);
        assert_eq!(bucket_index(129), 1);
        assert_eq!(bucket_index(256), 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut prev = 0;
        for ns in [1u64, 50, 200, 1_000, 10_000, 1_000_000, u64::MAX / 2] {
            let idx = bucket_index(ns);
            assert!(idx >= prev, "bucket index must be monotone in ns");
            prev = idx;
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.p99_ns, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_the_data() {
        let h = LatencyHistogram::new();
        // 90 fast samples, 10 slow ones: p50 low, p99 high.
        for _ in 0..90 {
            h.record_ns(100);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(
            s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns && s.p99_ns <= s.p999_ns,
            "{s:?}"
        );
        assert!(s.p50_ns <= 128, "median should sit in the fast bucket");
        assert!(s.p99_ns >= 1_000_000, "p99 must cover the slow tail");
        assert_eq!(s.max_ns, 1_000_000);
        assert_eq!(s.sum_ns, 90 * 100 + 10 * 1_000_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(s.buckets[bucket_index(100)], 90);
        assert_eq!(s.buckets[bucket_index(1_000_000)], 10);
    }

    #[test]
    fn single_sample_percentiles_agree() {
        let h = LatencyHistogram::new();
        h.record_ns(5_000);
        let s = h.summary();
        assert_eq!(s.p50_ns, s.p99_ns);
        assert!(s.p50_ns >= 5_000, "bucket bound must not understate");
    }

    #[test]
    fn snapshot_text_lines_match_len() {
        let snap = global().snapshot();
        assert_eq!(snap.render_text().lines().count(), snap.len());
        for line in snap.render_text().lines() {
            let (k, v) = line.split_once('=').expect("every line is key=value");
            assert!(!k.is_empty());
            v.parse::<u64>().expect("every value is an integer");
        }
    }

    #[test]
    fn snapshot_lookup_finds_known_keys() {
        let snap = global().snapshot();
        assert!(snap.value("core.insert.edges").is_some());
        assert!(snap.value("journal.lag_edges").is_some());
        assert!(snap.histogram("core.insert.latency_ns").is_some());
        assert!(snap.value("no.such.metric").is_none());
        assert!(!snap.is_empty());
    }

    #[test]
    fn snapshot_json_is_valid() {
        let json = global().snapshot().render_json();
        let parsed: serde_json::Value =
            serde_json::from_str(&json).expect("render_json must emit valid JSON");
        drop(parsed);
        assert!(json.contains("\"schema\":\"streamlink.metrics.v1\""));
        assert!(json.contains("\"core.insert.edges\""));
        assert!(json.contains("\"p999_ns\""));
        assert!(json.contains("\"buckets\":["));
        assert!(json.contains("\"uptime_secs\":"));
        assert!(json.contains("\"as_of_unix_ms\":"));
    }

    #[test]
    fn render_json_round_trips_through_parser() {
        // Put nonzero data everywhere so the round trip exercises real
        // values, not just zeroes.
        let m = Metrics::new();
        m.server_commands.add(41);
        m.connections_active.set(3);
        m.server_command_latency.record_ns(900);
        m.server_command_latency.record_ns(5_000_000);
        let snap = m.snapshot();
        let json = snap.render_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");

        assert_eq!(
            v.get("schema").and_then(serde_json::Value::as_str),
            Some("streamlink.metrics.v1")
        );
        // Every counter and gauge survives with its exact value.
        for (k, val) in snap.counters.iter().chain(&snap.gauges) {
            let section = if snap.counters.iter().any(|(ck, _)| ck == k) {
                "counters"
            } else {
                "gauges"
            };
            let got = v
                .get(section)
                .and_then(|s| s.get(k))
                .and_then(serde_json::Value::as_u64);
            assert_eq!(got, Some(*val), "round trip lost {k}");
        }
        // Histogram scalars and the bucket array survive.
        let h = snap.histogram("server.command_latency_ns").unwrap();
        let hv = v
            .get("histograms")
            .and_then(|s| s.get("server.command_latency_ns"))
            .expect("histogram object");
        assert_eq!(
            hv.get("count").and_then(serde_json::Value::as_u64),
            Some(h.count)
        );
        assert_eq!(
            hv.get("p999_ns").and_then(serde_json::Value::as_u64),
            Some(h.p999_ns)
        );
        let buckets = hv.get("buckets").expect("buckets array");
        let serde_json::Value::Array(items) = buckets else {
            panic!("buckets must be an array")
        };
        assert_eq!(items.len(), HISTOGRAM_BUCKETS);
        let total: u64 = items
            .iter()
            .map(|b| b.as_u64().expect("bucket counts are u64"))
            .sum();
        assert_eq!(total, h.count);
        // Top-level timestamps parse as integers.
        assert!(v
            .get("uptime_secs")
            .and_then(serde_json::Value::as_u64)
            .is_some());
        assert!(v
            .get("as_of_unix_ms")
            .and_then(serde_json::Value::as_u64)
            .is_some());
    }

    #[test]
    fn text_lines_include_p999_and_nonzero_buckets_only() {
        let m = Metrics::new();
        m.insert_latency.record_ns(100); // bucket 0
        m.insert_latency.record_ns(100);
        m.insert_latency.record_ns(1_000_000);
        let snap = m.snapshot();
        let text = snap.render_text();
        assert_eq!(text.lines().count(), snap.len());
        assert!(text.contains("core.insert.latency_ns.p999="));
        assert!(
            text.contains("core.insert.latency_ns.bucket_le_128=2"),
            "{text}"
        );
        // Only 2 buckets are populated for this histogram.
        let bucket_lines = text
            .lines()
            .filter(|l| l.starts_with("core.insert.latency_ns.bucket_le_"))
            .count();
        assert_eq!(bucket_lines, 2);
        // Empty histograms contribute exactly their 7 scalar lines.
        let merge_lines = text
            .lines()
            .filter(|l| l.starts_with("core.merge.latency_ns."))
            .count();
        assert_eq!(merge_lines, 7);
    }

    #[test]
    fn snapshot_carries_timestamps() {
        let snap = global().snapshot();
        assert!(snap.value("process.uptime_secs").is_some());
        let as_of = snap.value("process.as_of_unix_ms").expect("as_of gauge");
        assert!(as_of > 1_500_000_000_000, "wall clock should be post-2017");
    }

    #[test]
    fn on_insert_counts_and_samples() {
        // Use a private registry so concurrent tests cannot interfere.
        let m = Metrics::new();
        let mut timed = 0;
        for _ in 0..(2 * INSERT_SAMPLE_INTERVAL) {
            if let Some(start) = m.on_insert() {
                m.insert_latency.observe(start);
                timed += 1;
            }
        }
        assert_eq!(m.insert_edges.get(), 2 * INSERT_SAMPLE_INTERVAL);
        assert_eq!(timed, 2, "exactly 1 in {INSERT_SAMPLE_INTERVAL} sampled");
        assert_eq!(m.insert_latency.summary().count, 2);
        m.set_enabled(false);
        assert!(m.on_insert().is_none());
        assert_eq!(
            m.insert_edges.get(),
            2 * INSERT_SAMPLE_INTERVAL,
            "disabled inserts are not counted"
        );
        m.set_enabled(true);
        m.reset();
        assert_eq!(m.insert_edges.get(), 0);
        assert_eq!(m.insert_latency.summary().count, 0);
    }

    #[test]
    fn prometheus_rendering_mangles_and_types_every_family() {
        let m = Metrics::new();
        m.insert_edges.add(17);
        m.connections_active.set(3);
        m.insert_latency.record_ns(100);
        m.insert_latency.record_ns(1_000_000);
        let text = m.snapshot().render_prometheus();
        assert!(text.ends_with('\n'), "exposition must end with a newline");
        assert!(text.contains("# TYPE streamlink_core_insert_edges_total counter"));
        assert!(text.contains("streamlink_core_insert_edges_total 17"));
        assert!(text.contains("# TYPE streamlink_server_connections_active gauge"));
        assert!(text.contains("streamlink_server_connections_active 3"));
        assert!(text.contains("# TYPE streamlink_core_insert_latency_ns histogram"));
        assert!(text.contains("streamlink_core_insert_latency_ns_bucket{le=\"128\"} 1"));
        assert!(text.contains("streamlink_core_insert_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("streamlink_core_insert_latency_ns_sum 1000100"));
        assert!(text.contains("streamlink_core_insert_latency_ns_count 2"));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(!name.contains('.'), "unmangled metric name: {line:?}");
            assert!(name.starts_with("streamlink_"), "unprefixed name: {line:?}");
        }
        // New memory and http instruments are exported.
        assert!(text.contains("streamlink_mem_bytes_per_vertex "));
        assert!(text.contains("streamlink_http_requests_total "));
    }

    #[test]
    fn serve_phase_and_shed_reason_instruments_are_exported() {
        let m = Metrics::new();
        m.sheds_busy.incr();
        m.sheds_idle_timeout.add(2);
        m.sheds_http_cap.add(3);
        m.serve_accept_wait_ms.set(40);
        m.serve_conn_queue_depth.set(5);
        m.serve_phase_parse.record_ns(200);
        m.serve_phase_execute.record_ns(9_000);
        m.serve_phase_journal_append.record_ns(50_000);
        m.serve_phase_respond.record_ns(700);
        let snap = m.snapshot();
        assert_eq!(snap.value("serve.sheds_by_reason.busy"), Some(1));
        assert_eq!(snap.value("serve.sheds_by_reason.idle_timeout"), Some(2));
        assert_eq!(snap.value("serve.sheds_by_reason.http_cap"), Some(3));
        assert_eq!(snap.value("serve.accept_wait_ms"), Some(40));
        assert_eq!(snap.value("serve.conn_queue_depth"), Some(5));
        for key in [
            "serve.phase.parse_ns",
            "serve.phase.execute_ns",
            "serve.phase.journal_append_ns",
            "serve.phase.respond_ns",
        ] {
            let h = snap.histogram(key).unwrap_or_else(|| panic!("{key}"));
            assert_eq!(h.count, 1, "{key}");
        }
        let prom = snap.render_prometheus();
        assert!(prom.contains("streamlink_serve_sheds_by_reason_busy_total 1"));
        assert!(prom.contains("streamlink_serve_sheds_by_reason_idle_timeout_total 2"));
        assert!(prom.contains("streamlink_serve_sheds_by_reason_http_cap_total 3"));
        assert!(prom.contains("# TYPE streamlink_serve_conn_queue_depth gauge"));
        assert!(prom.contains("# TYPE streamlink_serve_phase_execute_ns histogram"));
        m.reset();
        let snap = m.snapshot();
        assert_eq!(snap.value("serve.sheds_by_reason.busy"), Some(0));
        assert_eq!(snap.value("serve.conn_queue_depth"), Some(0));
        assert_eq!(snap.histogram("serve.phase.parse_ns").unwrap().count, 0);
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_monotone() {
        let m = Metrics::new();
        for ns in [1u64, 100, 200, 5_000, 5_000, u64::MAX] {
            m.server_command_latency.record_ns(ns);
        }
        let text = m.snapshot().render_prometheus();
        let mut last = 0u64;
        let mut inf = None;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("streamlink_server_command_latency_ns_bucket{le=\"")
            else {
                continue;
            };
            let (le, count) = rest.split_once("\"} ").expect("bucket line shape");
            let count: u64 = count.parse().expect("bucket count");
            assert!(count >= last, "bucket series regressed at le={le}");
            last = count;
            if le == "+Inf" {
                inf = Some(count);
            }
        }
        assert_eq!(inf, Some(6), "+Inf bucket must equal the sample count");
    }
}
