//! Causally-ordered cluster event journal: typed control-plane events
//! with `(node_id, epoch, applied_seq, monotonic_tick)` provenance.
//!
//! The metrics registry answers *how much*, the trace ring answers
//! *where one request spent its time* — this module answers *what the
//! cluster did and in what order*. Every election, vote, promotion,
//! fence, handoff acceptance, resync, and config change is recorded as
//! one [`ClusterEvent`]:
//!
//! * **Typed** — [`EventKind`] is a closed enum; the JSONL schema
//!   (`streamlink.event.v1`) is golden-file–checked in CI, so dashboards
//!   and post-mortem tooling can parse journals from any node version.
//! * **Provenanced** — each event carries the emitting node's identity,
//!   the epoch it believed in, its applied WAL seq, and a per-node
//!   monotonic tick, plus an optional cross-node correlation ID that
//!   threads into [`crate::trace`] spans on both ends of a REPL
//!   exchange.
//! * **Bounded** — live events land in a fixed-capacity in-memory ring
//!   ([`RING_CAPACITY`], oldest-first overwrite) and, when a sink is
//!   installed ([`install_event_log`]), append to a size-capped
//!   `events.jsonl` that rotates once to `<path>.1` — the exact
//!   discipline of the slow-op log.
//!
//! ## Merging journals into one timeline
//!
//! Journals from different nodes [`merge`] deterministically: events
//! sort by `(epoch, tick_ms, kind, node_id, applied_seq)`. The epoch is
//! the causal backbone — epochs only move forward, so epoch-major order
//! is causally consistent across machines even though each node's
//! `tick_ms` is only locally monotonic (ticks break ties *within* a
//! node's view; across nodes they are a deterministic, not a wall-clock,
//! tie-break). [`check_single_primary`] then asserts the core failover
//! invariant on the merged timeline: at most one node ever claims
//! primaryship (bootstrap or promotion) per epoch.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Self-describing schema tag carried by every journal line.
pub const SCHEMA: &str = "streamlink.event.v1";

/// Event slots in the global in-memory ring.
pub const RING_CAPACITY: usize = 512;

/// Default `events.jsonl` size bound before rotation (10 MiB).
pub const DEFAULT_EVENT_LOG_BYTES: u64 = 10 * 1024 * 1024;

/// Modeled resident bytes per ring slot: the struct plus a budget for
/// the owned `node_id`/`detail` strings (addresses and short phrases).
const EVENT_SLOT_MODEL_BYTES: usize = std::mem::size_of::<ClusterEvent>() + 96;

/// The closed set of cluster control-plane events. Declaration order is
/// the causal rank used to break ties in [`merge`]: a candidacy sorts
/// before the vote it solicited, the vote before the promotion it
/// enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A node seeded a brand-new cluster timeline at epoch 1.
    Bootstrap,
    /// A node (re)started with a given cluster configuration.
    ConfigChange,
    /// A replica stopped seeing a live primary and started campaigning.
    CandidacyStarted,
    /// A node granted its vote to a candidate for a target epoch.
    VoteGranted,
    /// A candidate won a majority and promoted itself to primary.
    Promotion,
    /// An ex-primary observed a higher epoch and stepped down.
    StepDown,
    /// A node adopted a higher epoch it observed on the wire.
    EpochAdopted,
    /// A primary fenced a request carrying a stale epoch.
    Fence,
    /// A new primary accepted a divergent-tail handoff entry.
    HandoffAccepted,
    /// A replica resynced onto the current timeline (rejoin).
    Resync,
}

/// Every kind, in causal-rank order (mirrors the enum declaration).
pub const ALL_KINDS: [EventKind; 10] = [
    EventKind::Bootstrap,
    EventKind::ConfigChange,
    EventKind::CandidacyStarted,
    EventKind::VoteGranted,
    EventKind::Promotion,
    EventKind::StepDown,
    EventKind::EpochAdopted,
    EventKind::Fence,
    EventKind::HandoffAccepted,
    EventKind::Resync,
];

impl EventKind {
    /// The stable wire name (`streamlink.event.v1` `kind` field).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Bootstrap => "bootstrap",
            EventKind::ConfigChange => "config-change",
            EventKind::CandidacyStarted => "candidacy-started",
            EventKind::VoteGranted => "vote-granted",
            EventKind::Promotion => "promotion",
            EventKind::StepDown => "step-down",
            EventKind::EpochAdopted => "epoch-adopted",
            EventKind::Fence => "fence",
            EventKind::HandoffAccepted => "handoff-accepted",
            EventKind::Resync => "resync",
        }
    }

    /// Parses a wire name back to a kind.
    #[must_use]
    pub fn parse(name: &str) -> Option<EventKind> {
        ALL_KINDS.into_iter().find(|k| k.as_str() == name)
    }

    /// Whether this kind is a claim of primaryship for its epoch.
    #[must_use]
    pub fn claims_primary(self) -> bool {
        matches!(self, EventKind::Bootstrap | EventKind::Promotion)
    }
}

/// One cluster control-plane event with full provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterEvent {
    /// Identity of the emitting node (its advertised address).
    pub node_id: String,
    /// The epoch the node believed in when it emitted the event (for
    /// votes and promotions: the *target* epoch).
    pub epoch: u64,
    /// The node's applied WAL seq at emission time.
    pub applied_seq: u64,
    /// Per-node monotonic tick (ms since node start, or the virtual
    /// tick in simulation). Locally monotonic only.
    pub tick_ms: u64,
    /// What happened.
    pub kind: EventKind,
    /// Short human detail (peer address, epoch transition, seq range).
    pub detail: String,
    /// Cross-node correlation ID threading this event into trace spans
    /// on both ends of the exchange, if one was in flight.
    pub corr_id: Option<u64>,
}

impl ClusterEvent {
    /// One JSONL line (schema `streamlink.event.v1`). Keys and kinds
    /// are static identifiers; `node_id` and `detail` are escaped.
    #[must_use]
    pub fn render_line(&self) -> String {
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"node\":\"{}\",\"epoch\":{},\"applied_seq\":{},\
             \"tick_ms\":{},\"kind\":\"{}\",\"detail\":\"{}\",\"corr_id\":{}}}",
            escape_json(&self.node_id),
            self.epoch,
            self.applied_seq,
            self.tick_ms,
            self.kind.as_str(),
            escape_json(&self.detail),
            self.corr_id
                .map_or_else(|| "null".to_string(), |c| c.to_string()),
        )
    }

    /// Parses one journal line. Returns `None` for lines of another
    /// schema, unknown kinds, or missing fields — a merge over mixed or
    /// truncated files skips what it cannot read instead of failing.
    #[must_use]
    pub fn parse_line(line: &str) -> Option<ClusterEvent> {
        if json_str_field(line, "schema")? != SCHEMA {
            return None;
        }
        Some(ClusterEvent {
            node_id: json_str_field(line, "node")?,
            epoch: json_u64_field(line, "epoch")?,
            applied_seq: json_u64_field(line, "applied_seq")?,
            tick_ms: json_u64_field(line, "tick_ms")?,
            kind: EventKind::parse(&json_str_field(line, "kind")?)?,
            detail: json_str_field(line, "detail")?,
            corr_id: json_u64_field(line, "corr_id"),
        })
    }

    /// The deterministic merge key: epoch-major (the causal backbone),
    /// then local tick, causal kind rank, node, and seq.
    fn merge_key(&self) -> (u64, u64, EventKind, &str, u64, &str) {
        (
            self.epoch,
            self.tick_ms,
            self.kind,
            &self.node_id,
            self.applied_seq,
            &self.detail,
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extracts `"key":"value"` from a single-line JSON object, honoring
/// backslash escapes in the value.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
}

/// Extracts `"key":123` from a single-line JSON object (`null` → None).
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

// --------------------------------------------------------- the journal

/// A bounded, append-ordered event ring. The live server keeps one
/// global instance (see [`emit`]); simulations (E25) keep one per
/// simulated node and [`merge`] them afterwards.
#[derive(Debug)]
pub struct EventJournal {
    ring: VecDeque<ClusterEvent>,
    capacity: usize,
    recorded: u64,
}

impl EventJournal {
    /// An empty journal holding at most `capacity` events (≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        EventJournal {
            ring: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            recorded: 0,
        }
    }

    /// Appends one event, evicting the oldest past capacity.
    pub fn record(&mut self, event: ClusterEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
        self.recorded += 1;
    }

    /// Every retained event, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<ClusterEvent> {
        self.ring.iter().cloned().collect()
    }

    /// The newest `n` retained events, newest first.
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<ClusterEvent> {
        self.ring.iter().rev().take(n).cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Retained event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// Merges per-node journals into one deterministic cluster timeline:
/// epoch-major (epochs only move forward, so this is causally
/// consistent across machines), then tick, causal kind rank, node, and
/// seq. Stable under any input ordering of `journals`.
#[must_use]
pub fn merge(journals: &[Vec<ClusterEvent>]) -> Vec<ClusterEvent> {
    let mut all: Vec<ClusterEvent> = journals.iter().flatten().cloned().collect();
    all.sort_by(|a, b| a.merge_key().cmp(&b.merge_key()));
    all
}

/// Asserts the core failover invariant on a merged timeline: at most
/// one distinct node claims primaryship (bootstrap or promotion) per
/// epoch.
///
/// # Errors
/// Returns a description of the first violating epoch and its rival
/// claimants.
pub fn check_single_primary(merged: &[ClusterEvent]) -> Result<(), String> {
    let mut claims: BTreeMap<u64, BTreeSet<&str>> = BTreeMap::new();
    for e in merged {
        if e.kind.claims_primary() {
            claims.entry(e.epoch).or_default().insert(&e.node_id);
        }
    }
    for (epoch, nodes) in &claims {
        if nodes.len() > 1 {
            let rivals: Vec<&str> = nodes.iter().copied().collect();
            return Err(format!(
                "epoch {epoch} has {} primaries: {}",
                nodes.len(),
                rivals.join(", ")
            ));
        }
    }
    Ok(())
}

// ------------------------------------------------- global live journal

fn journal() -> &'static Mutex<EventJournal> {
    static JOURNAL: OnceLock<Mutex<EventJournal>> = OnceLock::new();
    JOURNAL.get_or_init(|| Mutex::new(EventJournal::new(RING_CAPACITY)))
}

/// Records one event into the global ring, bumps `events.recorded`,
/// and appends a JSONL line to the installed sink, if any.
pub fn emit(event: ClusterEvent) {
    crate::metrics::global().events_recorded.incr();
    write_event(&event);
    journal()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .record(event);
}

/// The newest `n` events from the global ring, newest first.
#[must_use]
pub fn recent(n: usize) -> Vec<ClusterEvent> {
    journal()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .recent(n)
}

/// Total events recorded into the global ring since process start (or
/// the last [`reset`]).
#[must_use]
pub fn events_recorded() -> u64 {
    journal()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .recorded()
}

/// Clears the global ring (tests and benchmarks).
pub fn reset() {
    let mut guard = journal().lock().unwrap_or_else(PoisonError::into_inner);
    *guard = EventJournal::new(RING_CAPACITY);
}

/// Resident bytes of the global event ring: a constant capacity model
/// (the ring is bounded, so so is its footprint).
#[must_use]
pub fn ring_memory_bytes() -> usize {
    RING_CAPACITY * EVENT_SLOT_MODEL_BYTES
}

// ------------------------------------------------------ events.jsonl

struct EventLog {
    path: PathBuf,
    max_bytes: u64,
    file: std::fs::File,
    bytes: u64,
}

static EVENT_LOG: Mutex<Option<EventLog>> = Mutex::new(None);

/// Installs (or replaces) the on-disk event journal. Every [`emit`]
/// appends one `streamlink.event.v1` JSONL line; when the file passes
/// `max_bytes` it rotates once to `<path>.1`, so disk usage never
/// exceeds two generations.
///
/// # Errors
/// Fails if the file cannot be created or appended to.
pub fn install_event_log(path: &Path, max_bytes: u64) -> io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let bytes = file.metadata().map_or(0, |m| m.len());
    let mut guard = EVENT_LOG.lock().unwrap_or_else(PoisonError::into_inner);
    *guard = Some(EventLog {
        path: path.to_path_buf(),
        max_bytes: max_bytes.max(1),
        file,
        bytes,
    });
    Ok(())
}

/// Removes the event log sink (tests). Ring recording continues.
pub fn uninstall_event_log() {
    let mut guard = EVENT_LOG.lock().unwrap_or_else(PoisonError::into_inner);
    *guard = None;
}

fn write_event(event: &ClusterEvent) {
    let mut guard = EVENT_LOG.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(log) = guard.as_mut() else { return };
    let mut line = event.render_line();
    line.push('\n');
    if log.bytes + line.len() as u64 > log.max_bytes {
        let rotated = crate::trace::rotated_path(&log.path);
        let _ = std::fs::rename(&log.path, rotated);
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log.path)
        {
            Ok(f) => {
                log.file = f;
                log.bytes = 0;
                crate::metrics::global().events_log_rotations.incr();
            }
            Err(_) => return, // keep the old handle; try again next time
        }
    }
    if log.file.write_all(line.as_bytes()).is_ok() {
        log.bytes += line.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global ring or sink.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn ev(node: &str, epoch: u64, tick: u64, kind: EventKind) -> ClusterEvent {
        ClusterEvent {
            node_id: node.to_string(),
            epoch,
            applied_seq: 10 * epoch,
            tick_ms: tick,
            kind,
            detail: format!("{} at epoch {epoch}", kind.as_str()),
            corr_id: epoch.is_multiple_of(2).then_some(epoch * 1000),
        }
    }

    #[test]
    fn kinds_round_trip_their_wire_names() {
        for kind in ALL_KINDS {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("no-such-kind"), None);
    }

    #[test]
    fn render_and_parse_round_trip() {
        let mut e = ev("127.0.0.1:7001", 3, 250, EventKind::Promotion);
        e.detail = "weird \"quoted\" \\ detail\nline".to_string();
        let line = e.render_line();
        let parsed: serde_json::Value = serde_json::from_str(&line).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(serde_json::Value::as_str),
            Some(SCHEMA)
        );
        assert_eq!(ClusterEvent::parse_line(&line), Some(e));

        let bare = ClusterEvent {
            node_id: "n0".to_string(),
            epoch: 1,
            applied_seq: 0,
            tick_ms: 0,
            kind: EventKind::Bootstrap,
            detail: String::new(),
            corr_id: None,
        };
        let line = bare.render_line();
        assert!(line.contains("\"corr_id\":null"), "{line}");
        assert_eq!(ClusterEvent::parse_line(&line), Some(bare));
    }

    #[test]
    fn parse_rejects_foreign_schemas_and_junk() {
        assert_eq!(ClusterEvent::parse_line("not json at all"), None);
        assert_eq!(
            ClusterEvent::parse_line("{\"schema\":\"streamlink.trace.v1\",\"op\":\"x\"}"),
            None
        );
        let mut line = ev("n0", 1, 1, EventKind::Fence).render_line();
        line = line.replace("\"fence\"", "\"unheard-of\"");
        assert_eq!(ClusterEvent::parse_line(&line), None);
    }

    #[test]
    fn journal_ring_is_bounded_and_ordered() {
        let mut j = EventJournal::new(4);
        for i in 0..10u64 {
            j.record(ev("n0", i, i, EventKind::Fence));
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.recorded(), 10);
        let all = j.events();
        assert_eq!(all[0].epoch, 6, "oldest retained first");
        assert_eq!(all[3].epoch, 9);
        let newest = j.recent(2);
        assert_eq!(newest[0].epoch, 9, "recent() is newest first");
        assert_eq!(newest[1].epoch, 8);
    }

    #[test]
    fn merge_is_deterministic_and_epoch_major() {
        let a = vec![
            ev("b-node", 2, 50, EventKind::Promotion),
            ev("b-node", 3, 90, EventKind::Fence),
        ];
        let b = vec![
            ev("a-node", 1, 999, EventKind::Bootstrap),
            ev("a-node", 2, 50, EventKind::VoteGranted),
        ];
        let forward = merge(&[a.clone(), b.clone()]);
        let backward = merge(&[b, a]);
        assert_eq!(forward, backward, "input order must not matter");
        let epochs: Vec<u64> = forward.iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 2, 3], "epoch-major despite ticks");
        // Same epoch, same tick: causal kind rank orders the vote
        // before the promotion it enabled.
        assert_eq!(forward[1].kind, EventKind::VoteGranted);
        assert_eq!(forward[2].kind, EventKind::Promotion);
    }

    #[test]
    fn single_primary_check_catches_split_brain() {
        let clean = merge(&[vec![
            ev("n0", 1, 0, EventKind::Bootstrap),
            ev("n1", 2, 10, EventKind::Promotion),
            ev("n0", 3, 20, EventKind::Promotion),
        ]]);
        assert_eq!(check_single_primary(&clean), Ok(()));

        let split = merge(&[vec![
            ev("n0", 2, 10, EventKind::Promotion),
            ev("n1", 2, 11, EventKind::Promotion),
        ]]);
        let err = check_single_primary(&split).unwrap_err();
        assert!(err.contains("epoch 2"), "{err}");
        assert!(err.contains("n0") && err.contains("n1"), "{err}");
    }

    #[test]
    fn global_ring_records_and_resets() {
        let _gate = lock();
        reset();
        emit(ev("n0", 1, 0, EventKind::Bootstrap));
        emit(ev("n0", 2, 5, EventKind::Promotion));
        let newest = recent(10);
        assert_eq!(newest.len(), 2);
        assert_eq!(newest[0].kind, EventKind::Promotion, "newest first");
        assert_eq!(events_recorded(), 2);
        assert!(ring_memory_bytes() > 0);
        reset();
        assert!(recent(10).is_empty());
    }

    #[test]
    fn event_log_writes_and_rotates() {
        let _gate = lock();
        reset();
        let dir = std::env::temp_dir().join(format!("streamlink-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        // Tiny bound forces rotation after a couple of records.
        install_event_log(&path, 400).unwrap();
        for i in 0..8u64 {
            emit(ev("127.0.0.1:7001", i, i * 10, EventKind::Fence));
        }
        uninstall_event_log();

        let current = std::fs::read_to_string(&path).unwrap();
        for line in current.lines() {
            let parsed = ClusterEvent::parse_line(line).expect("parseable event line");
            assert_eq!(parsed.kind, EventKind::Fence);
        }
        let rotated =
            std::fs::read_to_string(crate::trace::rotated_path(&path)).expect("rotated generation");
        assert!(!rotated.is_empty());
        assert!(current.len() as u64 <= 400);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
