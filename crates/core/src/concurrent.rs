//! A thread-safe sketch store for concurrent ingest + query workloads.
//!
//! [`crate::parallel`] covers offline throughput (shard, then merge). A
//! *serving* system interleaves writers and readers instead: edges arrive
//! while queries run. [`ConcurrentSketchStore`] supports that with
//! per-vertex-shard `RwLock`s:
//!
//! * vertices are assigned to `S` shards by hashing their id;
//! * an edge insert write-locks the two affected shards (in shard-index
//!   order, so two inserts can never deadlock);
//! * a query read-locks the two shards the same way; reads never block
//!   reads.
//!
//! Linearizability note: a query observes each endpoint's sketch at some
//! point between the query's start and end — the same freshness contract
//! a single-threaded store interleaving the same operations would give.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use hashkit::mix64;

use graphstream::{Edge, VertexId};

use crate::config::SketchConfig;
use crate::estimators;
use crate::store::SketchStore;

/// A sharded, thread-safe sketch store.
///
/// Shares query semantics with [`SketchStore`]; `&self` methods are safe
/// to call from any number of threads.
pub struct ConcurrentSketchStore {
    config: SketchConfig,
    shards: Vec<RwLock<SketchStore>>,
    edges_processed: AtomicU64,
}

impl std::fmt::Debug for ConcurrentSketchStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentSketchStore")
            .field("shards", &self.shards.len())
            .field(
                "edges_processed",
                &self.edges_processed.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl ConcurrentSketchStore {
    /// A store with `shards` vertex shards (rounded up to at least 1).
    ///
    /// Each shard holds an independent [`SketchStore`] over its vertices;
    /// the per-shard `edges_processed`/degree bookkeeping is maintained
    /// so that per-vertex state is identical to a sequential store.
    #[must_use]
    pub fn new(config: SketchConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            config,
            shards: (0..shards)
                .map(|_| RwLock::new(SketchStore::new(config)))
                .collect(),
            edges_processed: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_of(&self, v: VertexId) -> usize {
        (mix64(v.0 ^ 0xC0C0_57AB) % self.shards.len() as u64) as usize
    }

    /// Processes one stream edge (thread-safe).
    pub fn insert_edge(&self, u: VertexId, v: VertexId) {
        self.edges_processed.fetch_add(1, Ordering::Relaxed);
        if u == v {
            return;
        }
        let (su, sv) = (self.shard_of(u), self.shard_of(v));
        if su == sv {
            // Single shard: the inner store handles both endpoints.
            self.shards[su].write().insert_edge(u, v);
            return;
        }
        // Distinct shards: lock both in shard-index order (no deadlock),
        // then feed the edge to each endpoint's home shard. Each shard's
        // inner store updates both endpoints, but the query path only
        // ever reads a vertex from its home shard, so the duplicate
        // bookkeeping in the partner shard is invisible.
        let (mut a, mut b) = if su < sv {
            let a = self.shards[su].write();
            let b = self.shards[sv].write();
            (a, b)
        } else {
            let b = self.shards[sv].write();
            let a = self.shards[su].write();
            (a, b)
        };
        a.insert_edge(u, v);
        b.insert_edge(u, v);
    }

    /// Processes a whole stream from one thread (convenience).
    pub fn insert_stream(&self, edges: impl IntoIterator<Item = Edge>) {
        for e in edges {
            self.insert_edge(e.src, e.dst);
        }
    }

    /// Estimated Jaccard coefficient (thread-safe read).
    #[must_use]
    pub fn jaccard(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (su, sv) = (self.shard_of(u), self.shard_of(v));
        let k = self.config.slots();
        if su == sv {
            let shard = self.shards[su].read();
            let (a, b) = (shard.sketch(u)?.clone(), shard.sketch(v)?.clone());
            return Some(estimators::jaccard_from_matches(a.match_count(&b), k));
        }
        let (first, second) = if su < sv { (su, sv) } else { (sv, su) };
        let g1 = self.shards[first].read();
        let g2 = self.shards[second].read();
        let (gu, gv) = if su < sv { (&g1, &g2) } else { (&g2, &g1) };
        let a = gu.sketch(u)?;
        let b = gv.sketch(v)?;
        Some(estimators::jaccard_from_matches(a.match_count(b), k))
    }

    /// Estimated common-neighbor count (thread-safe read).
    #[must_use]
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let j = self.jaccard(u, v)?;
        Some(estimators::cn_from_jaccard(
            j,
            self.degree(u),
            self.degree(v),
        ))
    }

    /// Degree counter of `v` (0 for unseen).
    #[must_use]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.shards[self.shard_of(v)].read().degree(v)
    }

    /// Total edges processed.
    #[must_use]
    pub fn edges_processed(&self) -> u64 {
        self.edges_processed.load(Ordering::Relaxed)
    }

    /// Number of distinct vertices (sums home shards; each vertex's
    /// sketch lives in exactly one shard's view for counting purposes —
    /// the partner shard also tracks it, so count home vertices only).
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        let mut count = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            let guard = shard.read();
            count += guard.vertices().filter(|&v| self.shard_of(v) == i).count();
        }
        count
    }

    /// Collapses into a single-threaded [`SketchStore`] holding every
    /// vertex's *home-shard* state (exactly the sequential result).
    #[must_use]
    pub fn into_store(self) -> SketchStore {
        let mut out = SketchStore::new(self.config);
        let total = self.edges_processed.load(Ordering::Relaxed);
        {
            let (sketches, degrees, edges) = out.parts_mut();
            for (i, shard) in self.shards.iter().enumerate() {
                let guard = shard.read();
                let (shard_sketches, shard_degrees, _) = guard.parts();
                for (&v, s) in shard_sketches {
                    if self.shard_of(v) == i {
                        sketches.insert(v, s.clone());
                        degrees.insert(v, shard_degrees.get(&v).copied().unwrap_or(0));
                    }
                }
            }
            *edges = total;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstream::{BarabasiAlbert, EdgeStream};

    fn cfg() -> SketchConfig {
        SketchConfig::with_slots(32).seed(3)
    }

    #[test]
    fn sequential_equivalence() {
        let edges: Vec<Edge> = BarabasiAlbert::new(300, 3, 5).edges().collect();
        let concurrent = ConcurrentSketchStore::new(cfg(), 8);
        concurrent.insert_stream(edges.iter().copied());
        let mut plain = SketchStore::new(cfg());
        plain.insert_stream(edges.iter().copied());

        assert_eq!(concurrent.vertex_count(), plain.vertex_count());
        for u in 0..60u64 {
            for v in (u + 1)..60u64 {
                let (u, v) = (VertexId(u), VertexId(v));
                assert_eq!(concurrent.jaccard(u, v), plain.jaccard(u, v), "({u},{v})");
                assert_eq!(concurrent.degree(u), plain.degree(u));
            }
        }
    }

    #[test]
    fn into_store_equals_sequential() {
        let edges: Vec<Edge> = BarabasiAlbert::new(200, 2, 9).edges().collect();
        let concurrent = ConcurrentSketchStore::new(cfg(), 4);
        concurrent.insert_stream(edges.iter().copied());
        let collapsed = concurrent.into_store();

        let mut plain = SketchStore::new(cfg());
        plain.insert_stream(edges.iter().copied());

        assert_eq!(collapsed.vertex_count(), plain.vertex_count());
        assert_eq!(collapsed.edges_processed(), plain.edges_processed());
        for v in plain.vertices() {
            assert_eq!(collapsed.sketch(v), plain.sketch(v), "sketch at {v}");
            assert_eq!(collapsed.degree(v), plain.degree(v));
        }
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let edges: Vec<Edge> = BarabasiAlbert::new(400, 3, 7).edges().collect();
        let store = ConcurrentSketchStore::new(cfg(), 16);
        let chunk = edges.len().div_ceil(4);

        crossbeam::scope(|scope| {
            for part in edges.chunks(chunk) {
                let store = &store;
                scope.spawn(move |_| {
                    for e in part {
                        store.insert_edge(e.src, e.dst);
                    }
                });
            }
            // Interleave readers while writers run.
            for t in 0..2 {
                let store = &store;
                scope.spawn(move |_| {
                    for i in 0..500u64 {
                        let u = VertexId((i + t) % 100);
                        let v = VertexId((i * 7 + t) % 100);
                        let _ = store.jaccard(u, v);
                        let _ = store.degree(u);
                    }
                });
            }
        })
        .expect("threads panicked");

        assert_eq!(store.edges_processed(), edges.len() as u64);
        // Final state equals sequential regardless of interleaving.
        let collapsed = store.into_store();
        let mut plain = SketchStore::new(cfg());
        plain.insert_stream(edges.iter().copied());
        for v in plain.vertices() {
            assert_eq!(
                collapsed.sketch(v),
                plain.sketch(v),
                "sketch diverged at {v}"
            );
            assert_eq!(
                collapsed.degree(v),
                plain.degree(v),
                "degree diverged at {v}"
            );
        }
    }

    #[test]
    fn writer_bursts_on_a_hot_vertex_lose_no_updates() {
        // Worst-case write contention: every edge touches vertex 0, so
        // every insert write-locks the same home shard. The degree
        // counter and edge count must come out exact — a lost update
        // here would silently corrupt degree-based estimators.
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 500;
        let hot = VertexId(0);
        let store = ConcurrentSketchStore::new(cfg(), 16);
        crossbeam::scope(|scope| {
            for t in 0..WRITERS {
                let store = &store;
                scope.spawn(move |_| {
                    for i in 0..PER_WRITER {
                        // Distinct partner per insert: degree counts edges.
                        store.insert_edge(hot, VertexId(1 + t * PER_WRITER + i));
                    }
                });
            }
        })
        .expect("threads panicked");
        assert_eq!(store.edges_processed(), WRITERS * PER_WRITER);
        assert_eq!(store.degree(hot), WRITERS * PER_WRITER);
    }

    #[test]
    fn readers_observe_monotone_degrees_during_writer_bursts() {
        // Degree counters only ever increment, so any single reader must
        // observe a non-decreasing sequence even while writers burst —
        // a dip would mean a reader saw a torn or rolled-back update.
        const TOTAL: u64 = 2_000;
        let hot = VertexId(7);
        let store = ConcurrentSketchStore::new(cfg(), 8);
        crossbeam::scope(|scope| {
            for t in 0..4u64 {
                let store = &store;
                scope.spawn(move |_| {
                    for i in 0..TOTAL / 4 {
                        store.insert_edge(hot, VertexId(1_000 + t * (TOTAL / 4) + i));
                    }
                });
            }
            for _ in 0..3 {
                let store = &store;
                scope.spawn(move |_| {
                    let mut prev = 0u64;
                    loop {
                        let d = store.degree(hot);
                        assert!(d >= prev, "degree went backwards: {prev} -> {d}");
                        // Reads stay sane mid-burst, not just at the end.
                        if let Some(j) = store.jaccard(hot, VertexId(1_000)) {
                            assert!((0.0..=1.0).contains(&j), "jaccard out of range: {j}");
                        }
                        if d == TOTAL {
                            break;
                        }
                        prev = d;
                    }
                });
            }
        })
        .expect("threads panicked");
        assert_eq!(store.degree(hot), TOTAL);
    }

    #[test]
    fn self_loops_ignored() {
        let store = ConcurrentSketchStore::new(cfg(), 4);
        store.insert_edge(VertexId(1), VertexId(1));
        assert_eq!(store.vertex_count(), 0);
        assert_eq!(store.edges_processed(), 1);
    }

    #[test]
    fn single_shard_still_works() {
        let store = ConcurrentSketchStore::new(cfg(), 1);
        for w in 10..30u64 {
            store.insert_edge(VertexId(0), VertexId(w));
            store.insert_edge(VertexId(1), VertexId(w));
        }
        assert_eq!(store.jaccard(VertexId(0), VertexId(1)), Some(1.0));
    }
}
