//! Replication primitives: seq-deduplicated apply and the primary's
//! bounded ship buffer.
//!
//! A primary ships its CRC-framed WAL entries (`F <seq> <u> <v> <crc>`)
//! to read replicas over the wire. Two facts shape everything here:
//!
//! * **Slots are idempotent, degrees are not.** Re-merging a sketch slot
//!   is free (min-register); re-applying an edge double-counts the
//!   degree counters and the edge count. So a replica must apply each
//!   primary seq **at most once**.
//! * **Delivery is unreliable.** Entries can be dropped, duplicated, or
//!   reordered in transit (see [`crate::chaos::DeliveryPlan`]).
//!
//! [`ReplicaApplier`] enforces at-most-once by monotone-seq gating: an
//! entry is applied iff its seq is strictly greater than the high-water
//! mark, so duplicates and late reorders are deduplicated, and drops
//! leave *gaps* — the replica's state is then a sub-multiset of the
//! primary's applied stream (every applied seq is a real primary edge,
//! applied once). That invariant is exactly what makes anti-entropy via
//! [`crate::merge::merge_join`] (slot min / degree max / edge-count max)
//! converge the replica to the primary byte-for-byte.
//!
//! [`ReplLog`] is the primary side: a bounded in-memory ring of recent
//! entries served to pulling replicas. A replica that falls behind the
//! ring's tail is told to resync from a snapshot instead of stalling
//! ingest — the buffer is bounded, never the write path.

use std::collections::VecDeque;

use crate::journal::JournalEntry;
use crate::store::SketchStore;

/// What [`ReplicaApplier::offer`] did with one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The entry advanced the high-water mark and was applied.
    Applied,
    /// The entry's seq was already covered (duplicate or late reorder):
    /// dropped without touching the store.
    Deduped,
}

/// Seq-deduplicated apply gate for a replica.
///
/// Tracks the highest primary seq applied; [`offer`](Self::offer)
/// applies an entry iff it advances that mark, so no seq is ever
/// applied twice regardless of duplication or reordering in delivery.
/// Gaps (dropped entries) are tolerated and counted — anti-entropy
/// repairs them.
#[derive(Debug, Clone)]
pub struct ReplicaApplier {
    applied_seq: u64,
    applied: u64,
    deduped: u64,
    gap_skips: u64,
}

impl ReplicaApplier {
    /// An applier whose high-water mark is `applied_seq` (0 for a fresh
    /// replica: every real WAL seq is ≥ 1).
    #[must_use]
    pub fn new(applied_seq: u64) -> Self {
        ReplicaApplier {
            applied_seq,
            applied: 0,
            deduped: 0,
            gap_skips: 0,
        }
    }

    /// Applies `entry` to `store` iff its seq advances the high-water
    /// mark; duplicates and late reorders are dropped.
    pub fn offer(&mut self, store: &mut SketchStore, entry: JournalEntry) -> ApplyOutcome {
        if entry.seq <= self.applied_seq {
            self.deduped += 1;
            return ApplyOutcome::Deduped;
        }
        self.gap_skips += entry.seq - self.applied_seq - 1;
        self.applied_seq = entry.seq;
        self.applied += 1;
        store.insert_edge(entry.u, entry.v);
        ApplyOutcome::Applied
    }

    /// Raises the high-water mark to `seq` (no-op if already past it).
    ///
    /// Called after anti-entropy joins a primary snapshot taken at
    /// `seq`: every entry ≤ `seq` is now reflected in the store, so the
    /// stream tail up to `seq` must dedupe rather than re-apply.
    pub fn advance_to(&mut self, seq: u64) {
        self.applied_seq = self.applied_seq.max(seq);
    }

    /// Resets the high-water mark to `seq` unconditionally — used when
    /// the replica discards its store (full resync, or a primary that
    /// restarted with a lower seq space).
    pub fn reset_to(&mut self, seq: u64) {
        self.applied_seq = seq;
    }

    /// Highest primary seq reflected in the store.
    #[must_use]
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Entries applied through this applier.
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Entries dropped as duplicates / late reorders.
    #[must_use]
    pub fn deduped(&self) -> u64 {
        self.deduped
    }

    /// Seqs skipped over as delivery gaps (awaiting anti-entropy).
    #[must_use]
    pub fn gap_skips(&self) -> u64 {
        self.gap_skips
    }
}

/// The primary's bounded ship buffer: a ring of the most recent WAL
/// entries, pulled by replicas.
///
/// Bounded so slow or stuck replicas can never stall ingest: when the
/// ring is full the oldest entry is shed, and a replica asking for a seq
/// the ring no longer holds gets [`PullOutcome::ResyncRequired`] —
/// it must resync from a snapshot (or the on-disk WAL) instead.
#[derive(Debug)]
pub struct ReplLog {
    entries: VecDeque<JournalEntry>,
    capacity: usize,
    /// Highest seq ever recorded (survives shedding and clears).
    last_seq: u64,
}

/// What [`ReplLog::entries_after`] can serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PullOutcome {
    /// Entries with seq > the requested mark, oldest first (empty when
    /// the caller is already caught up).
    Entries(Vec<JournalEntry>),
    /// The ring has shed (or never held) part of the requested range;
    /// the caller must resync from a snapshot.
    ResyncRequired,
}

impl ReplLog {
    /// An empty ring holding at most `capacity` entries, whose seq
    /// high-water mark starts at `last_seq` (the primary's current WAL
    /// position; 0 for a fresh store).
    #[must_use]
    pub fn new(capacity: usize, last_seq: u64) -> Self {
        ReplLog {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            last_seq,
        }
    }

    /// Records one shipped entry. Non-contiguous seqs (a burned seq
    /// after a failed append, a rotation gap) clear the ring — replicas
    /// behind the discontinuity resync from a snapshot, which is always
    /// safe.
    pub fn record(&mut self, entry: JournalEntry) {
        if entry.seq != self.last_seq + 1 {
            self.entries.clear();
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.last_seq = self.last_seq.max(entry.seq);
        self.entries.push_back(entry);
    }

    /// Assigns the next seq and records the edge — the seq authority for
    /// primaries running without a durable journal.
    pub fn assign_and_record(&mut self, u: graphstream::VertexId, v: graphstream::VertexId) -> u64 {
        let seq = self.last_seq + 1;
        self.record(JournalEntry { seq, u, v });
        seq
    }

    /// Highest seq ever recorded.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Seq of the oldest entry still buffered, if any.
    #[must_use]
    pub fn first_buffered(&self) -> Option<u64> {
        self.entries.front().map(|e| e.seq)
    }

    /// Number of entries currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.entries.len()
    }

    /// Up to `max` entries with seq > `after_seq`, oldest first.
    ///
    /// Returns [`PullOutcome::ResyncRequired`] when the range
    /// `(after_seq, last_seq]` is non-empty but its start has been shed
    /// from the ring.
    #[must_use]
    pub fn entries_after(&self, after_seq: u64, max: usize) -> PullOutcome {
        if after_seq >= self.last_seq {
            return PullOutcome::Entries(Vec::new());
        }
        match self.first_buffered() {
            Some(first) if first <= after_seq + 1 => {
                let out: Vec<JournalEntry> = self
                    .entries
                    .iter()
                    .filter(|e| e.seq > after_seq)
                    .take(max)
                    .copied()
                    .collect();
                PullOutcome::Entries(out)
            }
            // Ring empty or its tail already shed past the request.
            _ => PullOutcome::ResyncRequired,
        }
    }

    /// Approximate heap footprint of the ring (for `mem.*` accounting).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<JournalEntry>()
    }

    /// Re-seats the ring at a new WAL position, dropping everything
    /// buffered. Used at failover promotion: a replica that becomes
    /// primary starts shipping from its applied seq, and any entries an
    /// earlier role buffered belong to a dead timeline.
    pub fn reset(&mut self, last_seq: u64) {
        self.entries.clear();
        self.last_seq = last_seq;
    }
}

/// Compares a replica's state against the primary's, byte for byte.
///
/// Returns `None` when every per-vertex sketch slot, every degree
/// counter, and the edge count match exactly; otherwise a human-readable
/// description of the first divergence found. This is the E23 chaos
/// convergence invariant.
#[must_use]
pub fn divergence(primary: &SketchStore, replica: &SketchStore) -> Option<String> {
    if primary.edges_processed() != replica.edges_processed() {
        return Some(format!(
            "edges_processed: primary={} replica={}",
            primary.edges_processed(),
            replica.edges_processed()
        ));
    }
    if primary.vertex_count() != replica.vertex_count() {
        return Some(format!(
            "vertex_count: primary={} replica={}",
            primary.vertex_count(),
            replica.vertex_count()
        ));
    }
    for v in primary.vertices() {
        if primary.degree(v) != replica.degree(v) {
            return Some(format!(
                "degree({v}): primary={} replica={}",
                primary.degree(v),
                replica.degree(v)
            ));
        }
        if primary.sketch(v) != replica.sketch(v) {
            return Some(format!("sketch({v}): slot contents differ"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::DeliveryPlan;
    use crate::config::SketchConfig;
    use crate::merge::merge_join;
    use crate::snapshot::StoreSnapshot;
    use graphstream::VertexId;

    fn cfg() -> SketchConfig {
        SketchConfig::with_slots(32).seed(11)
    }

    fn entry(seq: u64) -> JournalEntry {
        JournalEntry {
            seq,
            u: VertexId(seq % 7),
            v: VertexId(seq % 5 + 7),
        }
    }

    #[test]
    fn applier_applies_each_seq_at_most_once() {
        let mut store = SketchStore::new(cfg());
        let mut applier = ReplicaApplier::new(0);
        assert_eq!(applier.offer(&mut store, entry(1)), ApplyOutcome::Applied);
        assert_eq!(applier.offer(&mut store, entry(2)), ApplyOutcome::Applied);
        // Duplicate and late reorder both dedupe.
        assert_eq!(applier.offer(&mut store, entry(2)), ApplyOutcome::Deduped);
        assert_eq!(applier.offer(&mut store, entry(1)), ApplyOutcome::Deduped);
        assert_eq!(store.edges_processed(), 2);
        assert_eq!(applier.applied(), 2);
        assert_eq!(applier.deduped(), 2);
        assert_eq!(applier.applied_seq(), 2);
    }

    #[test]
    fn applier_counts_gaps_and_skips_reorder_laggards() {
        let mut store = SketchStore::new(cfg());
        let mut applier = ReplicaApplier::new(0);
        applier.offer(&mut store, entry(1));
        applier.offer(&mut store, entry(5)); // 2,3,4 lost
        assert_eq!(applier.gap_skips(), 3);
        // 3 arrives late (reordered): under the monotone gate it is
        // deduped — anti-entropy, not replay, repairs the gap.
        assert_eq!(applier.offer(&mut store, entry(3)), ApplyOutcome::Deduped);
        assert_eq!(store.edges_processed(), 2);
    }

    #[test]
    fn advance_to_dedupes_the_tail_after_anti_entropy() {
        let mut store = SketchStore::new(cfg());
        let mut applier = ReplicaApplier::new(0);
        applier.offer(&mut store, entry(1));
        applier.advance_to(10);
        assert_eq!(applier.offer(&mut store, entry(7)), ApplyOutcome::Deduped);
        assert_eq!(applier.offer(&mut store, entry(11)), ApplyOutcome::Applied);
        // advance_to never lowers the mark.
        applier.advance_to(4);
        assert_eq!(applier.applied_seq(), 11);
        applier.reset_to(4);
        assert_eq!(applier.applied_seq(), 4);
    }

    #[test]
    fn repl_log_serves_contiguous_tail_and_requires_resync_past_shed() {
        let mut log = ReplLog::new(4, 0);
        for seq in 1..=6 {
            log.record(entry(seq));
        }
        // Capacity 4: seqs 1 and 2 were shed.
        assert_eq!(log.first_buffered(), Some(3));
        assert_eq!(log.last_seq(), 6);
        match log.entries_after(3, 100) {
            PullOutcome::Entries(v) => {
                assert_eq!(v.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5, 6]);
            }
            PullOutcome::ResyncRequired => panic!("contiguous tail must be served"),
        }
        // Caught up: empty, not resync.
        assert_eq!(log.entries_after(6, 100), PullOutcome::Entries(Vec::new()));
        assert_eq!(log.entries_after(99, 100), PullOutcome::Entries(Vec::new()));
        // Behind the shed point: resync.
        assert_eq!(log.entries_after(1, 100), PullOutcome::ResyncRequired);
        // Batch limit respected.
        match log.entries_after(2, 2) {
            PullOutcome::Entries(v) => {
                assert_eq!(v.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3, 4]);
            }
            PullOutcome::ResyncRequired => panic!("start of range is buffered"),
        }
    }

    #[test]
    fn repl_log_discontinuity_clears_ring_but_keeps_high_water() {
        let mut log = ReplLog::new(16, 0);
        log.record(entry(1));
        log.record(entry(2));
        // Seq 3 burned by a failed append; 4 lands next.
        log.record(entry(4));
        assert_eq!(log.last_seq(), 4);
        assert_eq!(log.first_buffered(), Some(4));
        assert_eq!(log.entries_after(1, 10), PullOutcome::ResyncRequired);
        match log.entries_after(3, 10) {
            PullOutcome::Entries(v) => assert_eq!(v.len(), 1),
            PullOutcome::ResyncRequired => panic!("post-gap tail must be served"),
        }
    }

    #[test]
    fn repl_log_assigns_seqs_for_memoryless_primaries() {
        let mut log = ReplLog::new(8, 0);
        assert_eq!(log.assign_and_record(VertexId(1), VertexId(2)), 1);
        assert_eq!(log.assign_and_record(VertexId(2), VertexId(3)), 2);
        assert_eq!(log.last_seq(), 2);
        assert_eq!(log.buffered(), 2);
        assert!(log.memory_bytes() > 0);
    }

    /// End-to-end convergence at the core layer: a chaos-perturbed
    /// delivery followed by one anti-entropy join equals the primary.
    #[test]
    fn perturbed_stream_plus_anti_entropy_converges_exactly() {
        let mut primary = SketchStore::new(cfg());
        let entries: Vec<JournalEntry> = (1..=200)
            .map(|seq| JournalEntry {
                seq,
                u: VertexId(seq * 7 % 23),
                v: VertexId(seq * 13 % 19 + 23),
            })
            .collect();
        for e in &entries {
            primary.insert_edge(e.u, e.v);
        }

        let mut plan = DeliveryPlan::new();
        plan.drop_at(10);
        plan.drop_at(11);
        plan.duplicate_at(40);
        plan.duplicate_at(41);
        plan.delay_at(100, 30);
        plan.delay_at(150, 5);

        let mut replica = SketchStore::new(cfg());
        let mut applier = ReplicaApplier::new(0);
        for e in plan.apply(entries.clone()) {
            applier.offer(&mut replica, e);
        }
        assert!(applier.deduped() > 0, "schedule must exercise dedup");
        assert!(
            divergence(&primary, &replica).is_some(),
            "drops must leave the replica behind before anti-entropy"
        );

        // One anti-entropy round: join a primary snapshot, advance the
        // gate to the snapshot seq.
        let snap = StoreSnapshot::capture(&primary);
        let restored = snap.restore();
        merge_join(&mut replica, &restored).unwrap();
        applier.advance_to(200);
        assert_eq!(divergence(&primary, &replica), None);

        // A second round is a no-op (idempotent join).
        merge_join(&mut replica, &restored).unwrap();
        assert_eq!(divergence(&primary, &replica), None);
    }
}
