//! Live component-wise memory accounting for a serving process.
//!
//! The paper's space claim — *constant bytes per vertex, independent of
//! degree and stream length* — is proven offline by experiment E7. This
//! module makes it observable on a running server: [`MemoryReport`]
//! walks every resident component the serving stack owns (sketch slot
//! arrays, the two store hash maps, journal write buffer, trace ring,
//! event-journal ring, audit shadow sets), sums a deterministic
//! capacity model for each, and
//! publishes the result into the `mem.*` gauges — including the live
//! `mem.bytes_per_vertex` an operator can alert on.
//!
//! All component models are `O(1)` or `O(tracked vertices)` to compute
//! (never `O(edges)`), so a background refresh cycle can hold the store
//! read lock briefly without stalling ingest.

use crate::audit::AccuracyAuditor;
use crate::store::SketchStore;
use crate::trace;

/// One accounted component of the serving process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryComponent {
    /// Stable dotted identifier (e.g. `store.sketch_slots`).
    pub name: &'static str,
    /// Modeled resident bytes.
    pub bytes: usize,
    /// Entry count behind the bytes (vertices, slots, tracked sets…);
    /// 0 where no meaningful count exists.
    pub entries: usize,
}

/// A point-in-time component memory breakdown of the serving stack.
///
/// Built by [`MemoryReport::collect`], surfaced as JSON by the HTTP
/// `/memz` endpoint, and pushed into the `mem.*` gauges by
/// [`MemoryReport::publish`].
#[derive(Debug, Clone)]
pub struct MemoryReport {
    /// Every accounted component, in stable order.
    pub components: Vec<MemoryComponent>,
    /// Distinct vertices resident in the store.
    pub vertices: usize,
    /// Sum of all component bytes.
    pub total_bytes: usize,
    /// `total_bytes / max(vertices, 1)` — the live per-vertex cost.
    pub bytes_per_vertex: u64,
}

impl MemoryReport {
    /// Walks the store (and optional auditor) and assembles the report.
    ///
    /// `journal_buffer_bytes` and `repl_buffer_bytes` are passed in by
    /// the caller because the journal lives behind the server's
    /// persistence lock and the replication ship buffer behind its own
    /// lock, not inside the store; pass 0 for deployments without them.
    #[must_use]
    pub fn collect(
        store: &SketchStore,
        auditor: Option<&AccuracyAuditor>,
        journal_buffer_bytes: usize,
        repl_buffer_bytes: usize,
    ) -> Self {
        let vertices = store.vertex_count();
        let sm = store.memory_breakdown();
        let (shadow_bytes, shadow_tracked) = match auditor {
            Some(a) => (a.shadow_memory_bytes(), a.snapshot().tracked),
            None => (0, 0),
        };
        let components = vec![
            MemoryComponent {
                name: "store.sketch_slots",
                bytes: sm.sketch_slot_bytes,
                entries: vertices,
            },
            MemoryComponent {
                name: "store.sketch_map",
                bytes: sm.sketch_map_bytes,
                entries: vertices,
            },
            MemoryComponent {
                name: "store.degree_map",
                bytes: sm.degree_map_bytes,
                entries: vertices,
            },
            MemoryComponent {
                name: "store.fixed",
                bytes: sm.fixed_bytes,
                entries: 0,
            },
            MemoryComponent {
                name: "journal.write_buffer",
                bytes: journal_buffer_bytes,
                entries: 0,
            },
            MemoryComponent {
                name: "trace.ring",
                bytes: trace::ring_memory_bytes(),
                entries: trace::RING_CAPACITY,
            },
            MemoryComponent {
                name: "audit.shadow",
                bytes: shadow_bytes,
                entries: shadow_tracked,
            },
            MemoryComponent {
                name: "repl.buffer",
                bytes: repl_buffer_bytes,
                entries: 0,
            },
            MemoryComponent {
                name: "events.ring",
                bytes: crate::events::ring_memory_bytes(),
                entries: crate::events::RING_CAPACITY,
            },
        ];
        let total_bytes = components.iter().map(|c| c.bytes).sum();
        Self {
            components,
            vertices,
            total_bytes,
            bytes_per_vertex: (total_bytes / vertices.max(1)) as u64,
        }
    }

    /// Bytes of a named component (0 if absent) — publish/test helper.
    #[must_use]
    pub fn component_bytes(&self, name: &str) -> usize {
        self.components
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.bytes)
    }

    /// Pushes the report into the global `mem.*` gauges, making the
    /// breakdown scrapeable from `/metrics` and the TCP `METRICS`
    /// command.
    pub fn publish(&self) {
        let m = crate::metrics::global();
        m.mem_total_bytes.set(self.total_bytes as u64);
        m.mem_sketch_slot_bytes
            .set(self.component_bytes("store.sketch_slots") as u64);
        m.mem_sketch_map_bytes
            .set(self.component_bytes("store.sketch_map") as u64);
        m.mem_degree_map_bytes
            .set(self.component_bytes("store.degree_map") as u64);
        m.mem_store_fixed_bytes
            .set(self.component_bytes("store.fixed") as u64);
        m.mem_journal_buffer_bytes
            .set(self.component_bytes("journal.write_buffer") as u64);
        m.mem_trace_ring_bytes
            .set(self.component_bytes("trace.ring") as u64);
        m.mem_audit_shadow_bytes
            .set(self.component_bytes("audit.shadow") as u64);
        m.mem_repl_buffer_bytes
            .set(self.component_bytes("repl.buffer") as u64);
        m.mem_events_ring_bytes
            .set(self.component_bytes("events.ring") as u64);
        m.mem_vertices.set(self.vertices as u64);
        m.mem_bytes_per_vertex.set(self.bytes_per_vertex);
    }

    /// Renders the report as single-line JSON under the
    /// `streamlink.memz.v1` schema (served by HTTP `GET /memz`).
    #[must_use]
    pub fn render_json(&self) -> String {
        let rows: Vec<String> = self
            .components
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\":\"{}\",\"bytes\":{},\"entries\":{}}}",
                    c.name, c.bytes, c.entries
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"streamlink.memz.v1\",\"total_bytes\":{},\"vertices\":{},\
             \"bytes_per_vertex\":{},\"components\":[{}]}}",
            self.total_bytes,
            self.vertices,
            self.bytes_per_vertex,
            rows.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditConfig;
    use crate::SketchConfig;
    use graphstream::VertexId;

    fn populated_store(vertices: u64) -> SketchStore {
        let mut store = SketchStore::new(SketchConfig::with_slots(64).seed(7));
        for v in 0..vertices / 2 {
            store.insert_edge(VertexId(v), VertexId(v + vertices / 2));
        }
        store
    }

    #[test]
    fn report_totals_are_component_sums() {
        let store = populated_store(200);
        let report = MemoryReport::collect(&store, None, 8192, 0);
        let sum: usize = report.components.iter().map(|c| c.bytes).sum();
        assert_eq!(report.total_bytes, sum);
        assert_eq!(report.vertices, 200);
        assert_eq!(report.component_bytes("journal.write_buffer"), 8192);
        assert_eq!(report.bytes_per_vertex, (report.total_bytes / 200) as u64);
        // The store components must agree with the store's own total.
        let store_sum = report.component_bytes("store.sketch_slots")
            + report.component_bytes("store.sketch_map")
            + report.component_bytes("store.degree_map")
            + report.component_bytes("store.fixed");
        assert_eq!(store_sum, store.memory_bytes());
    }

    #[test]
    fn empty_store_has_nonzero_per_vertex_denominator() {
        let store = SketchStore::new(SketchConfig::with_slots(64));
        let report = MemoryReport::collect(&store, None, 0, 0);
        assert_eq!(report.vertices, 0);
        assert_eq!(report.bytes_per_vertex, report.total_bytes as u64);
    }

    #[test]
    fn auditor_shadow_component_appears_when_present() {
        let mut store = SketchStore::new(SketchConfig::with_slots(64));
        let auditor = AccuracyAuditor::new(AuditConfig {
            vertex_sample_shift: 0,
            ..AuditConfig::default()
        });
        for v in 0u64..50 {
            store.insert_edge(VertexId(v), VertexId(v + 1000));
            auditor.observe_edge(VertexId(v), VertexId(v + 1000), 0, 0);
        }
        let with = MemoryReport::collect(&store, Some(&auditor), 0, 0);
        let without = MemoryReport::collect(&store, None, 0, 0);
        assert!(with.component_bytes("audit.shadow") > 0);
        assert_eq!(without.component_bytes("audit.shadow"), 0);
        assert!(with.total_bytes > without.total_bytes);
    }

    #[test]
    fn json_rendering_is_single_line_and_schema_tagged() {
        let store = populated_store(20);
        let json = MemoryReport::collect(&store, None, 0, 0).render_json();
        assert!(json.starts_with("{\"schema\":\"streamlink.memz.v1\""));
        assert!(!json.contains('\n'));
        assert!(json.contains("\"name\":\"store.sketch_slots\""));
        assert!(json.contains("\"name\":\"trace.ring\""));
        assert!(json.contains("\"name\":\"events.ring\""));
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(parsed.get("total_bytes").and_then(|v| v.as_u64()).unwrap() > 0);
        let components = parsed
            .get("components")
            .and_then(|v| v.as_array())
            .expect("components array");
        assert_eq!(components.len(), 9);
    }

    #[test]
    fn publish_round_trips_through_the_gauges() {
        let m = crate::metrics::global();
        m.set_enabled(true);
        let store = populated_store(100);
        let report = MemoryReport::collect(&store, None, 4096, 2048);
        report.publish();
        let snap = m.snapshot();
        let gauge = |k: &str| {
            snap.gauges
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("gauge {k} missing"))
        };
        assert_eq!(gauge("mem.total_bytes"), report.total_bytes as u64);
        assert_eq!(gauge("mem.vertices"), 100);
        assert_eq!(gauge("mem.journal_buffer_bytes"), 4096);
        assert_eq!(gauge("mem.repl_buffer_bytes"), 2048);
        assert_eq!(gauge("mem.bytes_per_vertex"), report.bytes_per_vertex);
    }
}
