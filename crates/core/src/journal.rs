//! Append-only edge journal (write-ahead log) for crash-safe ingestion.
//!
//! The serving layer appends every accepted edge here *before*
//! acknowledging it to the client, so an acked edge survives a crash even
//! if it is not yet in any snapshot. Recovery loads the newest snapshot
//! and replays the journal tail (see [`crate::durable`]).
//!
//! ## Layout
//!
//! A journal is a directory of segment files named `wal.<first_seq>.log`,
//! where `first_seq` is the sequence number of the first entry the
//! segment may contain. Entries are text lines:
//!
//! ```text
//! E <seq> <u> <v>\n
//! ```
//!
//! `seq` is the store's `edges_processed` value *after* applying the
//! edge, so a snapshot taken at `edges_processed = S` makes every entry
//! with `seq <= S` redundant.
//!
//! ## Crash semantics
//!
//! Appends are flushed to the OS (a `write` syscall) before the caller
//! acks, which survives process death (SIGKILL) unconditionally. Whether
//! they survive *power loss* is governed by [`FsyncPolicy`]; `Always`
//! issues `fdatasync` per entry, `Never` leaves it to the OS. Replay
//! tolerates a torn final line — the entry was never acked, so dropping
//! it loses nothing that was promised.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use graphstream::VertexId;

/// When journal appends are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: survives power loss, slowest.
    Always,
    /// Flush to the OS per append (survives process crash), sync only on
    /// rotation and shutdown. The default serving tradeoff.
    #[default]
    OnRotate,
    /// Never sync explicitly; fastest, weakest.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling (`always` | `interval` | `never`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "interval" => Some(FsyncPolicy::OnRotate),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// One journaled edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// `edges_processed` after this edge was applied.
    pub seq: u64,
    /// Edge source.
    pub u: VertexId,
    /// Edge destination.
    pub v: VertexId,
}

impl fmt::Display for JournalEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E {} {} {}", self.seq, self.u.0, self.v.0)
    }
}

impl JournalEntry {
    /// Parses one journal line; `None` for malformed (torn) lines.
    #[must_use]
    pub fn parse(line: &str) -> Option<Self> {
        let mut parts = line.split(' ');
        if parts.next() != Some("E") {
            return None;
        }
        let seq = parts.next()?.parse().ok()?;
        let u = parts.next()?.parse().ok()?;
        let v = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(JournalEntry {
            seq,
            u: VertexId(u),
            v: VertexId(v),
        })
    }
}

/// The active, appendable journal for one data directory.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    writer: BufWriter<File>,
    policy: FsyncPolicy,
    /// First seq the active segment may contain (its name).
    segment_first_seq: u64,
    /// Seq of the last entry appended to the active segment, if any.
    last_seq: Option<u64>,
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal.{first_seq}.log"))
}

/// Lists `(first_seq, path)` for every segment in `dir`, sorted by seq.
///
/// # Errors
/// Fails if the directory cannot be read.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(first_seq) = name
            .strip_prefix("wal.")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|seq| seq.parse::<u64>().ok())
        else {
            continue;
        };
        segments.push((first_seq, entry.path()));
    }
    segments.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(segments)
}

impl Journal {
    /// Opens a fresh segment that will hold entries from `next_seq` on.
    ///
    /// The directory is created if missing. Existing segments are left in
    /// place — replay them first (see [`replay`]) and prune after the
    /// next checkpoint.
    ///
    /// # Errors
    /// Fails on directory-creation or file-open errors.
    pub fn create(dir: &Path, next_seq: u64, policy: FsyncPolicy) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let path = segment_path(dir, next_seq);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            writer: BufWriter::new(file),
            policy,
            segment_first_seq: next_seq,
            last_seq: None,
        })
    }

    /// Appends one edge and flushes it to the OS; with
    /// [`FsyncPolicy::Always`] also forces it to stable storage.
    ///
    /// Returns only after the entry is at least crash-durable (survives
    /// process death). Callers must not ack the edge before this returns.
    ///
    /// # Errors
    /// Fails on write, flush, or sync errors; the entry must then be
    /// treated as not persisted (nack the client).
    pub fn append(&mut self, entry: JournalEntry) -> io::Result<()> {
        let metrics = crate::metrics::global();
        let start = std::time::Instant::now();
        writeln!(self.writer, "{entry}")?;
        self.writer.flush()?;
        if self.policy == FsyncPolicy::Always {
            self.writer.get_ref().sync_data()?;
            metrics.journal_fsyncs.incr();
        }
        self.last_seq = Some(entry.seq);
        metrics.journal_appends.incr();
        metrics.journal_append_latency.observe(start);
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    ///
    /// # Errors
    /// Fails on flush or sync errors.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        crate::metrics::global().journal_fsyncs.incr();
        Ok(())
    }

    /// Seals the active segment and starts a new one holding entries from
    /// `next_seq` on.
    ///
    /// Call this at checkpoint time *while holding the store lock* so no
    /// entry with `seq >= next_seq` can land in the sealed segment.
    ///
    /// # Errors
    /// Fails on sync or file-open errors; on error the old segment stays
    /// active.
    pub fn rotate(&mut self, next_seq: u64) -> io::Result<()> {
        if self.policy != FsyncPolicy::Never {
            self.sync()?;
        } else {
            self.writer.flush()?;
        }
        let path = segment_path(&self.dir, next_seq);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        self.writer = BufWriter::new(file);
        self.segment_first_seq = next_seq;
        self.last_seq = None;
        crate::metrics::global().journal_rotations.incr();
        Ok(())
    }

    /// Deletes sealed segments made fully redundant by a snapshot taken
    /// at `snapshot_seq` (every entry in them has `seq <= snapshot_seq`).
    ///
    /// The active segment is never deleted. Call only *after* the
    /// snapshot is durably on disk — the snapshot-then-prune order is
    /// what keeps the recovery chain unbroken if either step dies.
    ///
    /// # Errors
    /// Fails if the directory listing or a deletion fails; a partial
    /// prune is harmless (replay skips redundant entries by seq).
    pub fn prune_below(&mut self, snapshot_seq: u64) -> io::Result<usize> {
        let segments = list_segments(&self.dir)?;
        let mut removed = 0;
        for window in segments.windows(2) {
            let (first, path) = &window[0];
            let (next_first, _) = &window[1];
            // Segment `first` holds seqs in [first, next_first); redundant
            // iff next_first - 1 <= snapshot_seq.
            if *first < self.segment_first_seq && *next_first <= snapshot_seq + 1 {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Seq of the last appended entry in the active segment, if any.
    #[must_use]
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// First seq the active segment may contain.
    #[must_use]
    pub fn segment_first_seq(&self) -> u64 {
        self.segment_first_seq
    }
}

/// What [`replay`] found in the journal directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Entries applied (seq beyond the snapshot).
    pub replayed: u64,
    /// Entries skipped as redundant (seq already covered by the
    /// snapshot).
    pub skipped: u64,
    /// Segments scanned.
    pub segments: usize,
    /// Whether a torn (incomplete or malformed) tail line was dropped.
    pub torn_tail: bool,
    /// Highest seq seen across all entries, if any.
    pub last_seq: Option<u64>,
}

/// Replays every journal entry with `seq > after_seq`, in order, through
/// `apply`, tolerating a torn tail.
///
/// A malformed or unterminated line ends that segment's replay (it can
/// only be the product of a crash mid-append, and the entry was never
/// acked). Later segments are still scanned.
///
/// # Errors
/// Fails if the directory or a segment cannot be read.
pub fn replay(
    dir: &Path,
    after_seq: u64,
    mut apply: impl FnMut(JournalEntry),
) -> io::Result<ReplayReport> {
    let mut report = ReplayReport::default();
    let segments = match list_segments(dir) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    report.segments = segments.len();
    for (_, path) in segments {
        // Read as bytes and convert lossily: a crash can leave arbitrary
        // garbage at the tail, which must read as a torn line, not an
        // IO error.
        let bytes = fs::read(&path)?;
        let content = String::from_utf8_lossy(&bytes);
        if content.is_empty() {
            continue; // freshly created active segment
        }
        let terminated = content.ends_with('\n');
        let mut lines = content.split('\n').collect::<Vec<_>>();
        // split('\n') leaves a trailing empty piece for terminated files.
        if terminated {
            lines.pop();
        }
        let count = lines.len();
        for (i, line) in lines.into_iter().enumerate() {
            let last_line = i + 1 == count;
            let parsed = JournalEntry::parse(line);
            match parsed {
                Some(entry) if !last_line || terminated => {
                    report.last_seq = Some(report.last_seq.map_or(entry.seq, |s| s.max(entry.seq)));
                    if entry.seq > after_seq {
                        apply(entry);
                        report.replayed += 1;
                    } else {
                        report.skipped += 1;
                    }
                }
                _ => {
                    // Torn: malformed line, or a well-formed final line
                    // missing its newline (the write was cut mid-entry).
                    report.torn_tail = true;
                    break;
                }
            }
        }
    }
    crate::metrics::global()
        .journal_replayed
        .add(report.replayed);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "streamlink-journal-{}-{tag}-{n}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(seq: u64) -> JournalEntry {
        JournalEntry {
            seq,
            u: VertexId(seq * 2),
            v: VertexId(seq * 2 + 1),
        }
    }

    #[test]
    fn entry_line_roundtrip() {
        let e = JournalEntry {
            seq: 7,
            u: VertexId(3),
            v: VertexId(9),
        };
        assert_eq!(e.to_string(), "E 7 3 9");
        assert_eq!(JournalEntry::parse("E 7 3 9"), Some(e));
        assert_eq!(JournalEntry::parse("E 7 3"), None);
        assert_eq!(JournalEntry::parse("E 7 3 9 1"), None);
        assert_eq!(JournalEntry::parse("X 7 3 9"), None);
        assert_eq!(JournalEntry::parse("E 7 3 banana"), None);
        assert_eq!(JournalEntry::parse(""), None);
    }

    #[test]
    fn append_then_replay() {
        let dir = temp_dir("append");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::OnRotate).unwrap();
        for seq in 1..=5 {
            j.append(entry(seq)).unwrap();
        }
        assert_eq!(j.last_seq(), Some(5));

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(report.replayed, 5);
        assert_eq!(report.skipped, 0);
        assert!(!report.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_skips_entries_covered_by_snapshot() {
        let dir = temp_dir("skip");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=10 {
            j.append(entry(seq)).unwrap();
        }
        let mut seen = Vec::new();
        let report = replay(&dir, 7, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![8, 9, 10]);
        assert_eq!(report.skipped, 7);
        assert_eq!(report.last_seq, Some(10));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = temp_dir("torn");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            j.append(entry(seq)).unwrap();
        }
        drop(j);
        // Simulate a crash mid-append: a partial line with no newline.
        let (first, path) = &list_segments(&dir).unwrap()[0];
        assert_eq!(*first, 1);
        let mut f = OpenOptions::new().append(true).open(path).unwrap();
        write!(f, "E 4 8").unwrap();
        drop(f);

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert!(report.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn complete_final_line_without_newline_is_treated_as_torn() {
        // A well-formed line missing its terminator means the write was
        // cut exactly at the line end — it was never flushed-and-acked as
        // a whole, so it must not be replayed.
        let dir = temp_dir("noterm");
        fs::write(segment_path(&dir, 1), "E 1 0 1\nE 2 2 3").unwrap();
        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1]);
        assert!(report.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_pruning() {
        let dir = temp_dir("rotate");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::OnRotate).unwrap();
        for seq in 1..=4 {
            j.append(entry(seq)).unwrap();
        }
        j.rotate(5).unwrap();
        for seq in 5..=6 {
            j.append(entry(seq)).unwrap();
        }
        assert_eq!(list_segments(&dir).unwrap().len(), 2);

        // Snapshot at seq 4 makes the first segment redundant.
        assert_eq!(j.prune_below(4).unwrap(), 1);
        let remaining = list_segments(&dir).unwrap();
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].0, 5);

        // Replay after pruning still yields the tail.
        let mut seen = Vec::new();
        replay(&dir, 4, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![5, 6]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_segments_with_unsnapshotted_entries() {
        let dir = temp_dir("prune-keep");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=4 {
            j.append(entry(seq)).unwrap();
        }
        j.rotate(5).unwrap();
        j.append(entry(5)).unwrap();
        // Snapshot at 3: segment [1,4] still holds seq 4 > 3 — keep it.
        assert_eq!(j.prune_below(3).unwrap(), 0);
        assert_eq!(list_segments(&dir).unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_active_segment_is_not_torn() {
        let dir = temp_dir("empty");
        let _j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        let report = replay(&dir, 0, |_| {}).unwrap();
        assert!(!report.torn_tail);
        assert_eq!(report.replayed, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_on_missing_dir_is_empty() {
        let dir = std::env::temp_dir().join("streamlink-journal-does-not-exist-xyzzy");
        let report = replay(&dir, 0, |_| panic!("nothing to apply")).unwrap();
        assert_eq!(report, ReplayReport::default());
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("interval"), Some(FsyncPolicy::OnRotate));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
