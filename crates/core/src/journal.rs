//! Append-only edge journal (write-ahead log) for crash-safe ingestion.
//!
//! The serving layer appends every accepted edge here *before*
//! acknowledging it to the client, so an acked edge survives a crash even
//! if it is not yet in any snapshot. Recovery loads the best snapshot
//! generation and replays the journal tail (see [`crate::durable`]).
//!
//! ## Layout
//!
//! A journal is a directory of segment files named `wal.<first_seq>.log`,
//! where `first_seq` is the sequence number of the first entry the
//! segment may contain. Entries are text lines. The current (v2) framing
//! carries a per-record CRC-32 ([`hashkit::crc32()`]) over the payload:
//!
//! ```text
//! F <seq> <u> <v> <crc32-lower-hex-8>\n
//! ```
//!
//! Pre-CRC (v1) records — `E <seq> <u> <v>\n` — are still read and
//! replayed, so data directories written before the framing change load
//! unmodified; they simply cannot be *verified*, only parsed.
//!
//! A journal opened with [`crate::codec::WireFormat::BinaryV3`] appends
//! binary envelope records instead (see [`crate::codec`]): same
//! per-record CRC guarantee, a fraction of the bytes, no text parsing on
//! replay. [`scan_segment`] sniffs each record's framing from its first
//! bytes, so segments of any format — even interleaved in one directory
//! across a migration — replay through the same classification logic.
//!
//! `seq` is a monotone log sequence number. In an uncorrupted directory
//! it equals the store's `edges_processed` after applying the edge; after
//! a corruption event has quarantined records the two may diverge, which
//! is why recovery resumes from the journal's high-water mark, not the
//! store's counter (see [`crate::durable::recover`]).
//!
//! ## Crash and corruption semantics
//!
//! Appends are flushed to the OS (a `write` syscall) before the caller
//! acks, which survives process death (SIGKILL) unconditionally. Whether
//! they survive *power loss* is governed by [`FsyncPolicy`]; `Always`
//! issues `fdatasync` per entry, `Never` leaves it to the OS.
//!
//! [`replay`] distinguishes two corruption shapes:
//!
//! * **Torn tail** — the trailing run of unparseable (or unterminated)
//!   lines after the last valid record. Only a crash mid-append can
//!   produce it; the records were never acked, so they are dropped and
//!   counted ([`ReplayReport::tail_dropped`]).
//! * **Mid-file corruption** — a bad record *followed by* valid records.
//!   That is bit rot of acked data, never a torn write. The record is
//!   quarantined into `quarantine/` (raw bytes preserved for forensics),
//!   counted in [`ReplayReport::quarantined`] and the
//!   `journal.replay_skipped_records` metric, and replay continues — an
//!   acked edge is either recovered or *explicitly reported*, never
//!   silently lost.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use graphstream::VertexId;
use hashkit::crc32;

use crate::chaos::{AppendDecision, FaultPlan};
use crate::codec::{self, WireFormat};

/// The subdirectory of a data dir that receives corrupt artifacts.
pub const QUARANTINE_DIR: &str = "quarantine";

/// When journal appends are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: survives power loss, slowest.
    Always,
    /// Flush to the OS per append (survives process crash), sync only on
    /// rotation and shutdown. The default serving tradeoff.
    #[default]
    OnRotate,
    /// Never sync explicitly; fastest, weakest.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling (`always` | `interval` | `never`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "interval" => Some(FsyncPolicy::OnRotate),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// One journaled edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// Log sequence number of this record (monotone per directory).
    pub seq: u64,
    /// Edge source.
    pub u: VertexId,
    /// Edge destination.
    pub v: VertexId,
}

impl fmt::Display for JournalEntry {
    /// Renders the v2 checksummed line (without the trailing newline).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let payload = self.payload();
        write!(f, "{payload} {:08x}", crc32(payload.as_bytes()))
    }
}

/// What [`JournalEntry::check_line`] found in one journal line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineCheck {
    /// A v2 record whose CRC verified.
    Verified(JournalEntry),
    /// A legacy v1 record — parseable, but carrying no checksum.
    Legacy(JournalEntry),
    /// Structurally invalid (wrong tag, field count, or field syntax).
    Malformed,
    /// Well-formed v2 framing whose CRC does not match the payload.
    BadCrc,
}

impl LineCheck {
    /// The entry, when the line parsed.
    #[must_use]
    pub fn entry(self) -> Option<JournalEntry> {
        match self {
            LineCheck::Verified(e) | LineCheck::Legacy(e) => Some(e),
            LineCheck::Malformed | LineCheck::BadCrc => None,
        }
    }
}

/// Strict canonical u64: ASCII digits only (no sign, no padding), as
/// written — so any mutated byte is either a CRC mismatch or a parse
/// failure, never a silently different number.
fn parse_u64_strict(tok: &str) -> Option<u64> {
    if tok.is_empty() || !tok.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    tok.parse().ok()
}

impl JournalEntry {
    /// The checksummed payload of the v2 line (everything before the CRC
    /// field).
    #[must_use]
    fn payload(&self) -> String {
        format!("F {} {} {}", self.seq, self.u.0, self.v.0)
    }

    /// Classifies one journal line: verified v2, legacy v1, malformed,
    /// or CRC mismatch.
    #[must_use]
    pub fn check_line(line: &str) -> LineCheck {
        let mut parts = line.split(' ');
        let tag = parts.next();
        let (Some(seq), Some(u), Some(v)) = (
            parts.next().and_then(parse_u64_strict),
            parts.next().and_then(parse_u64_strict),
            parts.next().and_then(parse_u64_strict),
        ) else {
            return LineCheck::Malformed;
        };
        let crc_tok = parts.next();
        if parts.next().is_some() {
            return LineCheck::Malformed;
        }
        let entry = JournalEntry {
            seq,
            u: VertexId(u),
            v: VertexId(v),
        };
        match (tag, crc_tok) {
            // Legacy v1: exactly four fields, no checksum to verify.
            (Some("E"), None) => LineCheck::Legacy(entry),
            // v2: exactly five fields; the CRC must be canonical
            // lowercase 8-hex (case-insensitive parsing would let a
            // single case-bit flip in the CRC field go undetected).
            (Some("F"), Some(crc_tok)) => {
                if crc_tok.len() != 8
                    || !crc_tok
                        .bytes()
                        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
                {
                    return LineCheck::Malformed;
                }
                let Ok(found) = u32::from_str_radix(crc_tok, 16) else {
                    return LineCheck::Malformed;
                };
                // CRC the line bytes as stored, not a re-rendering: any
                // byte drift since write is a mismatch. Checked length
                // math: a corrupt short line must classify, not panic.
                let Some(payload_len) = line.len().checked_sub(9) else {
                    return LineCheck::Malformed; // strip " <8 hex>"
                };
                if crc32(&line.as_bytes()[..payload_len]) == found {
                    LineCheck::Verified(entry)
                } else {
                    LineCheck::BadCrc
                }
            }
            _ => LineCheck::Malformed,
        }
    }

    /// Parses one journal line (either framing version); `None` for
    /// malformed or checksum-failing lines.
    #[must_use]
    pub fn parse(line: &str) -> Option<Self> {
        Self::check_line(line).entry()
    }
}

/// The active, appendable journal for one data directory.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    writer: BufWriter<File>,
    policy: FsyncPolicy,
    /// First seq the active segment may contain (its name).
    segment_first_seq: u64,
    /// Seq of the last entry appended to the active segment, if any.
    last_seq: Option<u64>,
    /// Scripted storage faults (tests only; `None` in production).
    faults: Option<Arc<FaultPlan>>,
    /// The record framing new appends use (reads always sniff).
    format: WireFormat,
    /// A failed append may have left partial bytes at the tail; the next
    /// write must seal them off with a guard newline so an acked record
    /// can never merge into un-acked debris.
    tainted: bool,
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal.{first_seq}.log"))
}

/// Lists `(first_seq, path)` for every segment in `dir`, sorted by seq.
///
/// # Errors
/// Fails if the directory cannot be read.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(first_seq) = name
            .strip_prefix("wal.")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|seq| seq.parse::<u64>().ok())
        else {
            continue;
        };
        segments.push((first_seq, entry.path()));
    }
    segments.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(segments)
}

/// Writes one corrupt artifact into `dir/quarantine/`, best-effort (a
/// failing quarantine write must not abort recovery). Returns whether
/// the artifact landed.
pub fn quarantine_bytes(dir: &Path, name: &str, bytes: &[u8]) -> bool {
    let qdir = dir.join(QUARANTINE_DIR);
    if fs::create_dir_all(&qdir).is_err() {
        return false;
    }
    fs::write(qdir.join(name), bytes).is_ok()
}

/// Moves a corrupt file into `dir/quarantine/` under its own name,
/// best-effort. Returns whether the move landed.
pub fn quarantine_file(dir: &Path, path: &Path) -> bool {
    let qdir = dir.join(QUARANTINE_DIR);
    if fs::create_dir_all(&qdir).is_err() {
        return false;
    }
    let Some(name) = path.file_name() else {
        return false;
    };
    fs::rename(path, qdir.join(name)).is_ok()
}

impl Journal {
    /// Opens a fresh segment that will hold entries from `next_seq` on.
    ///
    /// The directory is created if missing. Existing segments are left in
    /// place — replay them first (see [`replay`]) and prune after the
    /// next checkpoint.
    ///
    /// # Errors
    /// Fails on directory-creation or file-open errors.
    pub fn create(dir: &Path, next_seq: u64, policy: FsyncPolicy) -> io::Result<Self> {
        Self::create_with_faults(dir, next_seq, policy, None)
    }

    /// Like [`Journal::create`], but every append/fsync consults the
    /// given [`FaultPlan`] first. Production callers pass `None` (via
    /// [`Journal::create`]); tests script exact-operation failures.
    ///
    /// # Errors
    /// Fails on directory-creation or file-open errors.
    pub fn create_with_faults(
        dir: &Path,
        next_seq: u64,
        policy: FsyncPolicy,
        faults: Option<Arc<FaultPlan>>,
    ) -> io::Result<Self> {
        Self::create_with_format(dir, next_seq, policy, WireFormat::TextV2, faults)
    }

    /// Like [`Journal::create_with_faults`], also choosing the record
    /// framing for new appends ([`WireFormat::TextV2`] text lines or
    /// [`WireFormat::BinaryV3`] envelopes). Replay sniffs per record, so
    /// a directory may freely mix segment formats across restarts.
    ///
    /// # Errors
    /// Fails on directory-creation or file-open errors.
    pub fn create_with_format(
        dir: &Path,
        next_seq: u64,
        policy: FsyncPolicy,
        format: WireFormat,
        faults: Option<Arc<FaultPlan>>,
    ) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let path = segment_path(dir, next_seq);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            writer: BufWriter::new(file),
            policy,
            segment_first_seq: next_seq,
            last_seq: None,
            faults,
            format,
            tainted: false,
        })
    }

    /// The record framing new appends use.
    #[must_use]
    pub fn format(&self) -> WireFormat {
        self.format
    }

    /// The installed fault plan, if any (threaded to the checkpoint path
    /// so snapshot writes honor the same schedule).
    #[must_use]
    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// The seq the next appended entry should carry.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.last_seq
            .map_or(self.segment_first_seq, |s| s.saturating_add(1))
    }

    /// Appends one edge and flushes it to the OS; with
    /// [`FsyncPolicy::Always`] also forces it to stable storage.
    ///
    /// Returns only after the entry is at least crash-durable (survives
    /// process death). Callers must not ack the edge before this returns.
    ///
    /// # Errors
    /// Fails on write, flush, or sync errors — real or injected by the
    /// fault plan; the entry must then be treated as not persisted (nack
    /// the client). A short-write fault leaves a genuine partial record
    /// on disk, which replay later classifies as a torn tail; the next
    /// successful append seals it behind a guard newline so no later
    /// (acked) record can merge into the debris.
    pub fn append(&mut self, entry: JournalEntry) -> io::Result<()> {
        let metrics = crate::metrics::global();
        let _t = crate::trace::child("journal.append");
        let start = std::time::Instant::now();
        let line = self.format.codec().encode_wal_record(&entry);
        if self.tainted {
            // Seal off the previous failure's partial bytes as their own
            // (un-acked, torn) line before this record touches the file.
            self.writer.write_all(b"\n")?;
            self.writer.flush()?;
            self.tainted = false;
        }
        if let Some(plan) = &self.faults {
            match plan.next_append() {
                AppendDecision::Proceed => {}
                AppendDecision::Fail => {
                    return Err(FaultPlan::error("append failed (storage full)"))
                }
                AppendDecision::ShortWrite(n) => {
                    let n = n.min(line.len());
                    self.tainted = true;
                    self.writer.write_all(&line[..n])?;
                    self.writer.flush()?;
                    return Err(FaultPlan::error("append cut short"));
                }
            }
        }
        self.writer
            .write_all(&line)
            .inspect_err(|_| self.tainted = true)?;
        self.writer.flush().inspect_err(|_| self.tainted = true)?;
        if self.policy == FsyncPolicy::Always {
            let synced = match &self.faults {
                Some(plan) => plan.next_fsync(),
                None => Ok(()),
            }
            .and_then(|()| self.writer.get_ref().sync_data());
            if let Err(e) = synced {
                // The record reached the OS and may well survive; its
                // seq is burned so the next (acked) append can never
                // collide with a ghost of this one in replay.
                self.last_seq = Some(entry.seq);
                return Err(e);
            }
            metrics.journal_fsyncs.incr();
        }
        self.last_seq = Some(entry.seq);
        metrics.journal_appends.incr();
        metrics.journal_append_latency.observe(start);
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    ///
    /// # Errors
    /// Fails on flush or sync errors (real or injected).
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        if let Some(plan) = &self.faults {
            plan.next_fsync()?;
        }
        self.writer.get_ref().sync_data()?;
        crate::metrics::global().journal_fsyncs.incr();
        Ok(())
    }

    /// Seals the active segment and starts a new one holding entries from
    /// `next_seq` on.
    ///
    /// Call this at checkpoint time *while holding the store lock* so no
    /// entry with `seq >= next_seq` can land in the sealed segment.
    ///
    /// # Errors
    /// Fails on sync or file-open errors; on error the old segment stays
    /// active.
    pub fn rotate(&mut self, next_seq: u64) -> io::Result<()> {
        if self.tainted {
            // Do not seal a partial record into the outgoing segment
            // tail, where it would read as mid-file corruption later.
            self.writer.write_all(b"\n")?;
            self.tainted = false;
        }
        if self.policy != FsyncPolicy::Never {
            self.sync()?;
        } else {
            self.writer.flush()?;
        }
        let path = segment_path(&self.dir, next_seq);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        self.writer = BufWriter::new(file);
        self.segment_first_seq = next_seq;
        self.last_seq = None;
        crate::metrics::global().journal_rotations.incr();
        Ok(())
    }

    /// Deletes sealed segments made fully redundant by a snapshot
    /// covering every seq up to and including `snapshot_seq`.
    ///
    /// The active segment is never deleted. Call only *after* the
    /// snapshot is durably on disk — and, with a retention chain, pass
    /// the seq of the **oldest retained** generation, so every retained
    /// snapshot can still replay forward from its own seq (see
    /// [`crate::durable::checkpoint`]).
    ///
    /// # Errors
    /// Fails if the directory listing or a deletion fails; a partial
    /// prune is harmless (replay skips redundant entries by seq).
    pub fn prune_below(&mut self, snapshot_seq: u64) -> io::Result<usize> {
        let segments = list_segments(&self.dir)?;
        let mut removed = 0;
        for window in segments.windows(2) {
            let (first, path) = &window[0];
            let (next_first, _) = &window[1];
            // Segment `first` holds seqs in [first, next_first); redundant
            // iff next_first - 1 <= snapshot_seq.
            if *first < self.segment_first_seq && *next_first <= snapshot_seq + 1 {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Seq of the last appended entry in the active segment, if any.
    #[must_use]
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// First seq the active segment may contain.
    #[must_use]
    pub fn segment_first_seq(&self) -> u64 {
        self.segment_first_seq
    }

    /// Capacity of the in-memory write buffer in front of the active
    /// segment file — the journal's contribution to the process memory
    /// report (`mem.journal_buffer_bytes`).
    #[must_use]
    pub fn buffer_bytes(&self) -> usize {
        self.writer.capacity()
    }
}

/// What [`replay`] found in the journal directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Entries applied (seq beyond the snapshot).
    pub replayed: u64,
    /// Entries skipped as redundant (seq already covered by the
    /// snapshot).
    pub skipped: u64,
    /// Segments scanned.
    pub segments: usize,
    /// Whether a torn (incomplete or malformed) tail was dropped.
    pub torn_tail: bool,
    /// Lines discarded in the torn-tail region (trailing run of invalid
    /// lines after the last valid record — never-acked crash debris).
    pub tail_dropped: u64,
    /// Corrupt records found *before* later valid records (bit rot of
    /// acked data), quarantined into `quarantine/` and skipped.
    pub quarantined: u64,
    /// Highest seq seen across all valid entries, if any.
    pub last_seq: Option<u64>,
}

impl ReplayReport {
    /// Whether replay saw any corruption at all (torn tail or
    /// quarantined records).
    #[must_use]
    pub fn corruption_seen(&self) -> bool {
        self.torn_tail || self.quarantined > 0
    }
}

/// What framing one scanned journal record used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Checksummed text v2 line, verified.
    TextV2,
    /// Legacy text v1 line — parseable, no checksum.
    TextV1,
    /// Binary v3 envelope, verified.
    Binary,
    /// Unverifiable bytes: corrupt, truncated, unterminated, or a
    /// non-WAL envelope. Whether that means a torn tail or quarantine
    /// is positional and decided by the caller.
    Invalid,
}

/// One record found by [`scan_segment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScannedRecord<'a> {
    /// The record's bytes as stored — text records without their newline
    /// terminator, binary records as the whole envelope, invalid chunks
    /// verbatim.
    pub raw: &'a [u8],
    /// The decoded entry, when the record verified (or parsed, for v1).
    pub entry: Option<JournalEntry>,
    /// The framing the bytes used.
    pub kind: RecordKind,
}

fn classify_text_record(raw: &[u8]) -> (Option<JournalEntry>, RecordKind) {
    let Ok(line) = std::str::from_utf8(raw) else {
        return (None, RecordKind::Invalid);
    };
    match JournalEntry::check_line(line) {
        LineCheck::Verified(e) => (Some(e), RecordKind::TextV2),
        LineCheck::Legacy(e) => (Some(e), RecordKind::TextV1),
        LineCheck::Malformed | LineCheck::BadCrc => (None, RecordKind::Invalid),
    }
}

/// Where scanning restarts after a failed binary decode at `from - 1`:
/// the next binary magic or the byte after the next newline, whichever
/// comes first — the only two places a later record can begin.
fn resync(bytes: &[u8], from: usize) -> usize {
    let magic = (from..bytes.len()).find(|&i| bytes[i..].starts_with(&codec::BINARY_MAGIC));
    let newline = bytes[from.min(bytes.len())..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| from + i + 1);
    match (magic, newline) {
        (Some(m), Some(n)) => m.min(n),
        (Some(m), None) => m,
        (None, Some(n)) => n,
        (None, None) => bytes.len(),
    }
}

/// Splits one segment's bytes into records, sniffing each record's
/// framing from its first bytes: a binary magic starts an envelope,
/// anything else is a text line running to the next newline.
///
/// Purely structural — no quarantining, no position-dependent torn-tail
/// judgment; [`replay`] and `scrub` layer those on top. An unterminated
/// final text line is always [`RecordKind::Invalid`] (it was never
/// flushed-and-acked whole), as is a truncated or corrupt envelope (the
/// bytes up to the next plausible record start become one invalid
/// chunk).
#[must_use]
pub fn scan_segment(bytes: &[u8]) -> Vec<ScannedRecord<'_>> {
    let mut records = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        if codec::is_binary(&bytes[pos..]) {
            match codec::decode_envelope(&bytes[pos..]) {
                Ok(env) => {
                    let entry = (env.mode == codec::MODE_WAL_ENTRY)
                        .then(|| codec::decode_wal_entry_body(env.body).ok())
                        .flatten();
                    records.push(ScannedRecord {
                        raw: &bytes[pos..pos + env.consumed],
                        entry,
                        kind: if entry.is_some() {
                            RecordKind::Binary
                        } else {
                            RecordKind::Invalid
                        },
                    });
                    pos += env.consumed;
                }
                Err(_) => {
                    let end = resync(bytes, pos + 1);
                    records.push(ScannedRecord {
                        raw: &bytes[pos..end],
                        entry: None,
                        kind: RecordKind::Invalid,
                    });
                    pos = end;
                }
            }
        } else {
            match bytes[pos..].iter().position(|&b| b == b'\n') {
                Some(rel) => {
                    let raw = &bytes[pos..pos + rel];
                    let (entry, kind) = classify_text_record(raw);
                    records.push(ScannedRecord { raw, entry, kind });
                    pos += rel + 1;
                }
                None => {
                    // Unterminated final line: a write cut exactly at the
                    // line boundary was never flushed-and-acked whole.
                    records.push(ScannedRecord {
                        raw: &bytes[pos..],
                        entry: None,
                        kind: RecordKind::Invalid,
                    });
                    pos = bytes.len();
                }
            }
        }
    }
    records
}

/// Replays every journal entry with `seq > after_seq`, in order, through
/// `apply`, tolerating a torn tail and quarantining mid-file corruption.
///
/// The trailing run of invalid lines after the last valid record is the
/// torn tail: dropped (those records can only be un-acked crash debris)
/// and counted. An invalid line *followed by* a valid record anywhere in
/// the chain is bit rot of acked data: its raw bytes are written to
/// `dir/quarantine/` and replay continues with the records after it.
///
/// # Errors
/// Fails if the directory or a segment cannot be read.
pub fn replay(
    dir: &Path,
    after_seq: u64,
    mut apply: impl FnMut(JournalEntry),
) -> io::Result<ReplayReport> {
    let mut report = ReplayReport::default();
    let segments = match list_segments(dir) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    report.segments = segments.len();

    // Read everything first: torn/rotten bytes must classify by position
    // (is any *valid* record after this line?), which needs the whole
    // chain. Journal size is bounded by the checkpoint cadence.
    let mut files = Vec::with_capacity(segments.len());
    for (_, path) in &segments {
        files.push(fs::read(path)?);
    }

    // A record is usable iff the scanner verified it (v1/v2 text or a
    // binary envelope); everything else classifies by position.
    let parsed: Vec<Vec<ScannedRecord>> = files.iter().map(|bytes| scan_segment(bytes)).collect();

    // Position of the last valid record in the whole chain; every
    // invalid record after it is the torn tail, every one before it is
    // mid-file corruption.
    let last_valid = parsed
        .iter()
        .enumerate()
        .flat_map(|(seg, records)| {
            records
                .iter()
                .enumerate()
                .filter(|(_, r)| r.entry.is_some())
                .map(move |(i, _)| (seg, i))
        })
        .next_back();

    for (seg_idx, records) in parsed.iter().enumerate() {
        let seg_name = segments[seg_idx]
            .1
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("wal.unknown.log")
            .to_string();
        for (rec_idx, record) in records.iter().enumerate() {
            match record.entry {
                Some(entry) => {
                    report.last_seq = Some(report.last_seq.map_or(entry.seq, |s| s.max(entry.seq)));
                    if entry.seq > after_seq {
                        apply(entry);
                        report.replayed += 1;
                    } else {
                        report.skipped += 1;
                    }
                }
                None if record.raw.is_empty() && Some((seg_idx, rec_idx)) > last_valid => {
                    // Blank padding at the very end of the chain (e.g. a
                    // freshly rotated empty segment) is not corruption.
                }
                None if last_valid.is_none_or(|pos| (seg_idx, rec_idx) > pos) => {
                    report.torn_tail = true;
                    report.tail_dropped += 1;
                }
                None => {
                    quarantine_bytes(dir, &format!("{seg_name}.line{rec_idx}.rec"), record.raw);
                    report.quarantined += 1;
                }
            }
        }
    }
    let metrics = crate::metrics::global();
    metrics.journal_replayed.add(report.replayed);
    metrics.wal_replay_skipped.add(report.quarantined);
    Ok(report)
}

/// Reads up to `max` verified entries with `seq > after_seq` from the
/// segment chain, oldest first — the replication PULL path for entries
/// that have aged out of the primary's in-memory ship buffer but are
/// still on disk.
///
/// Read-only and side-effect free: unlike [`replay`] it never
/// quarantines — corrupt or torn lines are simply not shipped (recovery
/// owns forensics). Segments fully covered by `after_seq` are skipped
/// without being read.
///
/// # Errors
/// Fails if the directory or a needed segment cannot be read.
pub fn read_entries_after(dir: &Path, after_seq: u64, max: usize) -> io::Result<Vec<JournalEntry>> {
    let mut out = Vec::new();
    if max == 0 {
        return Ok(out);
    }
    let segments = match list_segments(dir) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for (i, (_, path)) in segments.iter().enumerate() {
        // Segment i holds seqs in [first_i, first_{i+1}); skip it when
        // that whole range is already covered.
        if let Some((next_first, _)) = segments.get(i + 1) {
            if *next_first <= after_seq + 1 {
                continue;
            }
        }
        let bytes = fs::read(path)?;
        for record in scan_segment(&bytes) {
            // Invalid chunks (torn, rotten, or unterminated) are simply
            // not shipped; recovery owns forensics.
            let Some(entry) = record.entry else { continue };
            if entry.seq > after_seq {
                out.push(entry);
                if out.len() == max {
                    return Ok(out);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "streamlink-journal-{}-{tag}-{n}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(seq: u64) -> JournalEntry {
        JournalEntry {
            seq,
            u: VertexId(seq * 2),
            v: VertexId(seq * 2 + 1),
        }
    }

    #[test]
    fn entry_line_roundtrip_v2() {
        let e = JournalEntry {
            seq: 7,
            u: VertexId(3),
            v: VertexId(9),
        };
        let line = e.to_string();
        assert!(line.starts_with("F 7 3 9 "), "{line}");
        assert_eq!(line.len(), "F 7 3 9".len() + 9, "8 hex chars + space");
        assert_eq!(JournalEntry::parse(&line), Some(e));
        assert!(matches!(
            JournalEntry::check_line(&line),
            LineCheck::Verified(got) if got == e
        ));
    }

    #[test]
    fn legacy_v1_lines_still_parse() {
        let e = JournalEntry {
            seq: 7,
            u: VertexId(3),
            v: VertexId(9),
        };
        assert_eq!(JournalEntry::parse("E 7 3 9"), Some(e));
        assert!(matches!(
            JournalEntry::check_line("E 7 3 9"),
            LineCheck::Legacy(got) if got == e
        ));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "E 7 3",
            "E 7 3 9 1", // v1 tag with five fields
            "F 7 3 9",   // v2 tag with four fields
            "X 7 3 9",
            "E 7 3 banana",
            "F 7 3 9 zzzzzzzz",  // non-hex CRC
            "F 7 3 9 abc",       // short CRC
            "F 7 3 9 ABCDEF12",  // uppercase CRC (non-canonical)
            "F 7 3 9 abcdef123", // long CRC
            "E +7 3 9",          // sign is not canonical
            "E 7 3 9 ",          // trailing separator
        ] {
            assert_eq!(JournalEntry::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn crc_mismatch_is_detected_not_malformed() {
        let mut line = entry(5).to_string();
        // Corrupt one payload digit without breaking the structure.
        line = line.replacen("F 5", "F 6", 1);
        assert_eq!(JournalEntry::check_line(&line), LineCheck::BadCrc);
        assert_eq!(JournalEntry::parse(&line), None);
    }

    #[test]
    fn every_single_bit_flip_in_a_v2_record_is_detected() {
        // The framing guarantee the proptest satellite pins at scale;
        // here the deterministic spot-check on one record.
        let line = entry(123_456_789).to_string();
        let mut bytes = line.clone().into_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                bytes[byte] ^= 1 << bit;
                let mutated = String::from_utf8_lossy(&bytes).into_owned();
                assert!(
                    JournalEntry::parse(&mutated).is_none(),
                    "flip {byte}:{bit} produced a silently valid record {mutated:?}"
                );
                bytes[byte] ^= 1 << bit;
            }
        }
        assert_eq!(String::from_utf8(bytes).unwrap(), line);
    }

    #[test]
    fn append_then_replay() {
        let dir = temp_dir("append");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::OnRotate).unwrap();
        for seq in 1..=5 {
            j.append(entry(seq)).unwrap();
        }
        assert_eq!(j.last_seq(), Some(5));
        assert_eq!(j.next_seq(), 6);

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(report.replayed, 5);
        assert_eq!(report.skipped, 0);
        assert!(!report.corruption_seen());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_skips_entries_covered_by_snapshot() {
        let dir = temp_dir("skip");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=10 {
            j.append(entry(seq)).unwrap();
        }
        let mut seen = Vec::new();
        let report = replay(&dir, 7, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![8, 9, 10]);
        assert_eq!(report.skipped, 7);
        assert_eq!(report.last_seq, Some(10));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = temp_dir("torn");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            j.append(entry(seq)).unwrap();
        }
        drop(j);
        // Simulate a crash mid-append: a partial line with no newline.
        let (first, path) = &list_segments(&dir).unwrap()[0];
        assert_eq!(*first, 1);
        let mut f = OpenOptions::new().append(true).open(path).unwrap();
        write!(f, "F 4 8").unwrap();
        drop(f);

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert!(report.torn_tail);
        assert_eq!(report.tail_dropped, 1);
        assert_eq!(report.quarantined, 0, "a torn tail is not quarantined");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn complete_final_line_without_newline_is_treated_as_torn() {
        // A well-formed line missing its terminator means the write was
        // cut exactly at the line end — it was never flushed-and-acked as
        // a whole, so it must not be replayed. (v1 framing, which also
        // pins the legacy read path.)
        let dir = temp_dir("noterm");
        fs::write(segment_path(&dir, 1), "E 1 0 1\nE 2 2 3").unwrap();
        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1]);
        assert!(report.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_quarantined_and_replay_continues() {
        let dir = temp_dir("midfile");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=5 {
            j.append(entry(seq)).unwrap();
        }
        drop(j);
        // Rot record 3 in place: flip a payload bit.
        let (_, path) = &list_segments(&dir).unwrap()[0];
        let content = fs::read_to_string(path).unwrap();
        let rotted = content.replacen("F 3", "F 7", 1);
        assert_ne!(content, rotted);
        fs::write(path, rotted).unwrap();

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2, 4, 5], "records after the rot still apply");
        assert_eq!(report.quarantined, 1);
        assert!(!report.torn_tail);
        // The corrupt raw line is preserved for forensics.
        let quarantined: Vec<_> = fs::read_dir(dir.join(QUARANTINE_DIR))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(quarantined.len(), 1);
        let saved = fs::read_to_string(&quarantined[0]).unwrap();
        assert!(saved.starts_with("F 7"), "{saved}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_a_sealed_segment_is_mid_file_not_torn() {
        // A bad record at the end of a *sealed* segment is followed by
        // the next segment's valid records — bit rot, not a torn write.
        let dir = temp_dir("sealedrot");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            j.append(entry(seq)).unwrap();
        }
        j.rotate(4).unwrap();
        j.append(entry(4)).unwrap();
        drop(j);
        let (_, sealed) = &list_segments(&dir).unwrap()[0];
        crate::chaos::flip_bit(sealed, 2, 1).unwrap();

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![2, 3, 4]);
        assert_eq!(report.quarantined, 1);
        assert!(!report.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trailing_garbage_run_is_all_torn_tail() {
        let dir = temp_dir("garbagerun");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=2 {
            j.append(entry(seq)).unwrap();
        }
        drop(j);
        let (_, path) = &list_segments(&dir).unwrap()[0];
        crate::chaos::append_garbage(path, b"\x00garbage\nmore garbage\nF 9 9").unwrap();

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2]);
        assert!(report.torn_tail);
        assert_eq!(report.tail_dropped, 3);
        assert_eq!(report.quarantined, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_segments_replay_unmodified() {
        // A pre-CRC data dir: plain `E` lines, no checksums.
        let dir = temp_dir("v1compat");
        fs::write(segment_path(&dir, 1), "E 1 10 11\nE 2 12 13\nE 3 14 15\n").unwrap();
        let mut seen = Vec::new();
        let report = replay(&dir, 1, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![2, 3]);
        assert_eq!(report.skipped, 1);
        assert!(!report.corruption_seen());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_pruning() {
        let dir = temp_dir("rotate");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::OnRotate).unwrap();
        for seq in 1..=4 {
            j.append(entry(seq)).unwrap();
        }
        j.rotate(5).unwrap();
        assert_eq!(j.next_seq(), 5);
        for seq in 5..=6 {
            j.append(entry(seq)).unwrap();
        }
        assert_eq!(list_segments(&dir).unwrap().len(), 2);

        // Snapshot at seq 4 makes the first segment redundant.
        assert_eq!(j.prune_below(4).unwrap(), 1);
        let remaining = list_segments(&dir).unwrap();
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].0, 5);

        // Replay after pruning still yields the tail.
        let mut seen = Vec::new();
        replay(&dir, 4, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![5, 6]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_segments_with_unsnapshotted_entries() {
        let dir = temp_dir("prune-keep");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=4 {
            j.append(entry(seq)).unwrap();
        }
        j.rotate(5).unwrap();
        j.append(entry(5)).unwrap();
        // Snapshot at 3: segment [1,4] still holds seq 4 > 3 — keep it.
        assert_eq!(j.prune_below(3).unwrap(), 0);
        assert_eq!(list_segments(&dir).unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_active_segment_is_not_torn() {
        let dir = temp_dir("empty");
        let _j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        let report = replay(&dir, 0, |_| {}).unwrap();
        assert!(!report.torn_tail);
        assert_eq!(report.replayed, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_on_missing_dir_is_empty() {
        let dir = std::env::temp_dir().join("streamlink-journal-does-not-exist-xyzzy");
        let report = replay(&dir, 0, |_| panic!("nothing to apply")).unwrap();
        assert_eq!(report, ReplayReport::default());
    }

    #[test]
    fn injected_enospc_fails_append_without_writing() {
        let dir = temp_dir("enospc");
        let plan = Arc::new(FaultPlan::new());
        plan.fail_append(1, crate::chaos::FaultKind::Enospc);
        let mut j = Journal::create_with_faults(&dir, 1, FsyncPolicy::Never, Some(plan)).unwrap();
        j.append(entry(1)).unwrap();
        let err = j.append(entry(2)).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        // The plan is one-shot: the journal heals.
        j.append(entry(2)).unwrap();

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2], "the failed append left no record");
        assert!(!report.corruption_seen());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_short_write_leaves_a_torn_tail() {
        let dir = temp_dir("shortwrite");
        let plan = Arc::new(FaultPlan::new());
        plan.fail_append(2, crate::chaos::FaultKind::ShortWrite(5));
        let mut j = Journal::create_with_faults(&dir, 1, FsyncPolicy::Never, Some(plan)).unwrap();
        j.append(entry(1)).unwrap();
        j.append(entry(2)).unwrap();
        assert!(j.append(entry(3)).is_err());
        drop(j);

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2], "partial record must not replay");
        assert!(report.torn_tail);
        assert_eq!(report.quarantined, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_after_short_write_seals_debris_behind_guard_newline() {
        let dir = temp_dir("guard");
        let plan = Arc::new(FaultPlan::new());
        plan.fail_append(1, crate::chaos::FaultKind::ShortWrite(4));
        let mut j = Journal::create_with_faults(&dir, 1, FsyncPolicy::Never, Some(plan)).unwrap();
        j.append(entry(1)).unwrap();
        assert!(j.append(entry(2)).is_err(), "short write must nack");
        // The journal keeps accepting appends after the failure; the
        // acked records on either side of the debris must both survive.
        j.append(entry(3)).unwrap();
        drop(j);

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 3], "acked records never merge into debris");
        assert_eq!(
            report.quarantined, 1,
            "the sealed partial record is explicit, not silent"
        );
        assert!(!report.torn_tail, "the tail itself ends clean");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_after_short_write_seals_debris_in_the_old_segment() {
        let dir = temp_dir("guardrotate");
        let plan = Arc::new(FaultPlan::new());
        plan.fail_append(1, crate::chaos::FaultKind::ShortWrite(4));
        let mut j = Journal::create_with_faults(&dir, 1, FsyncPolicy::Never, Some(plan)).unwrap();
        j.append(entry(1)).unwrap();
        assert!(j.append(entry(2)).is_err());
        j.rotate(3).unwrap();
        j.append(entry(3)).unwrap();
        drop(j);

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 3]);
        assert_eq!(report.quarantined, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_failure_burns_the_seq_so_replay_never_sees_duplicates() {
        let dir = temp_dir("fsyncburn");
        let plan = Arc::new(FaultPlan::new());
        plan.fail_fsync(0);
        let mut j = Journal::create_with_faults(&dir, 1, FsyncPolicy::Always, Some(plan)).unwrap();
        assert!(j.append(entry(1)).is_err(), "failed fsync must nack");
        assert_eq!(j.next_seq(), 2, "the unsynced record's seq is burned");
        j.append(entry(2)).unwrap();
        drop(j);

        // The ghost of seq 1 survives on disk (it reached the OS) and
        // replays; what matters is the acked record kept its own seq.
        let mut seen = Vec::new();
        replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_fsync_failure_surfaces_on_sync() {
        let dir = temp_dir("fsyncfail");
        let plan = Arc::new(FaultPlan::new());
        plan.fail_fsync(0);
        let mut j =
            Journal::create_with_faults(&dir, 1, FsyncPolicy::OnRotate, Some(plan)).unwrap();
        j.append(entry(1)).unwrap();
        assert!(j.sync().is_err());
        assert!(j.sync().is_ok(), "one-shot fault heals");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_entries_after_serves_the_tail_across_segments() {
        let dir = temp_dir("readafter");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=4 {
            j.append(entry(seq)).unwrap();
        }
        j.rotate(5).unwrap();
        for seq in 5..=8 {
            j.append(entry(seq)).unwrap();
        }
        drop(j);

        let all = read_entries_after(&dir, 0, 100).unwrap();
        assert_eq!(
            all.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (1..=8).collect::<Vec<_>>()
        );
        // Covered prefix skipped; batch limit honored.
        let tail = read_entries_after(&dir, 5, 2).unwrap();
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![6, 7]);
        assert!(read_entries_after(&dir, 8, 10).unwrap().is_empty());
        assert!(read_entries_after(&dir, 3, 0).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_entries_after_never_ships_corrupt_or_torn_lines() {
        let dir = temp_dir("readclean");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            j.append(entry(seq)).unwrap();
        }
        drop(j);
        let (_, path) = &list_segments(&dir).unwrap()[0];
        // Rot record 2, then leave a torn (unterminated) record 4.
        let content = fs::read_to_string(path).unwrap();
        fs::write(path, content.replacen("F 2", "F 9", 1)).unwrap();
        let mut f = OpenOptions::new().append(true).open(path).unwrap();
        write!(f, "F 4 8").unwrap();
        drop(f);

        let got = read_entries_after(&dir, 0, 100).unwrap();
        assert_eq!(got.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 3]);
        // No quarantine side effects from the read path.
        assert!(!dir.join(QUARANTINE_DIR).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    fn binary_journal(dir: &Path, next_seq: u64) -> Journal {
        Journal::create_with_format(
            dir,
            next_seq,
            FsyncPolicy::Never,
            WireFormat::BinaryV3,
            None,
        )
        .unwrap()
    }

    #[test]
    fn binary_append_then_replay() {
        let dir = temp_dir("bin-append");
        let mut j = binary_journal(&dir, 1);
        assert_eq!(j.format(), WireFormat::BinaryV3);
        for seq in 1..=5 {
            j.append(entry(seq)).unwrap();
        }
        drop(j);
        let (_, path) = &list_segments(&dir).unwrap()[0];
        let bytes = fs::read(path).unwrap();
        assert!(codec::is_binary(&bytes), "segment must open with the magic");

        let mut seen = Vec::new();
        let report = replay(&dir, 2, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![3, 4, 5]);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.last_seq, Some(5));
        assert!(!report.corruption_seen());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_format_directory_replays_in_order() {
        // A v2 deployment restarted with --format v3: the old text
        // segment and the new binary segment replay through one scanner.
        let dir = temp_dir("bin-mixed");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            j.append(entry(seq)).unwrap();
        }
        drop(j);
        let mut j = binary_journal(&dir, 4);
        for seq in 4..=6 {
            j.append(entry(seq)).unwrap();
        }
        drop(j);

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6]);
        assert!(!report.corruption_seen());
        assert_eq!(
            read_entries_after(&dir, 2, 3)
                .unwrap()
                .iter()
                .map(|e| e.seq)
                .collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_torn_tail_is_dropped_not_fatal() {
        let dir = temp_dir("bin-torn");
        let mut j = binary_journal(&dir, 1);
        for seq in 1..=3 {
            j.append(entry(seq)).unwrap();
        }
        drop(j);
        // Crash mid-append: cut the final envelope short.
        let (_, path) = &list_segments(&dir).unwrap()[0];
        let bytes = fs::read(path).unwrap();
        fs::write(path, &bytes[..bytes.len() - 3]).unwrap();

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2]);
        assert!(report.torn_tail);
        assert_eq!(report.quarantined, 0, "a torn tail is not quarantined");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_mid_file_corruption_is_quarantined_and_replay_continues() {
        let dir = temp_dir("bin-midfile");
        let mut j = binary_journal(&dir, 1);
        for seq in 1..=5 {
            j.append(entry(seq)).unwrap();
        }
        drop(j);
        // Rot a byte inside the second record's body.
        let (_, path) = &list_segments(&dir).unwrap()[0];
        let one_record = codec::encode_wal_entry(&entry(1)).len() as u64;
        crate::chaos::flip_bit(path, one_record + 8, 3).unwrap();

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 3, 4, 5], "records after the rot still apply");
        assert_eq!(report.quarantined, 1);
        assert!(!report.torn_tail);
        // The corrupt raw chunk is preserved for forensics.
        assert_eq!(fs::read_dir(dir.join(QUARANTINE_DIR)).unwrap().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_append_after_short_write_seals_debris() {
        let dir = temp_dir("bin-guard");
        let plan = Arc::new(FaultPlan::new());
        plan.fail_append(1, crate::chaos::FaultKind::ShortWrite(6));
        let mut j = Journal::create_with_format(
            &dir,
            1,
            FsyncPolicy::Never,
            WireFormat::BinaryV3,
            Some(plan),
        )
        .unwrap();
        j.append(entry(1)).unwrap();
        assert!(j.append(entry(2)).is_err(), "short write must nack");
        j.append(entry(3)).unwrap();
        drop(j);

        let mut seen = Vec::new();
        let report = replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 3], "acked records never merge into debris");
        assert_eq!(report.quarantined, 1);
        assert!(!report.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_read_entries_after_never_ships_corrupt_records() {
        let dir = temp_dir("bin-readclean");
        let mut j = binary_journal(&dir, 1);
        for seq in 1..=4 {
            j.append(entry(seq)).unwrap();
        }
        drop(j);
        let (_, path) = &list_segments(&dir).unwrap()[0];
        let one_record = codec::encode_wal_entry(&entry(1)).len() as u64;
        crate::chaos::flip_bit(path, one_record * 2 + 5, 2).unwrap();

        let got = read_entries_after(&dir, 0, 100).unwrap();
        assert_eq!(got.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2, 4]);
        assert!(!dir.join(QUARANTINE_DIR).exists(), "read path is pure");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_segment_reports_record_kinds() {
        let v2 = entry(1).to_string();
        let bin = codec::encode_wal_entry(&entry(2));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(v2.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(b"E 7 3 9\n");
        bytes.extend_from_slice(&bin);
        bytes.extend_from_slice(b"not a record\n");
        let records = scan_segment(&bytes);
        assert_eq!(
            records.iter().map(|r| r.kind).collect::<Vec<_>>(),
            vec![
                RecordKind::TextV2,
                RecordKind::TextV1,
                RecordKind::Binary,
                RecordKind::Invalid
            ]
        );
        assert_eq!(records[2].entry, Some(entry(2)));
        assert_eq!(records[3].raw, b"not a record");
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("interval"), Some(FsyncPolicy::OnRotate));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
