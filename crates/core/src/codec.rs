//! Storage & wire codecs: the text v2 formats and the binary v3 format
//! behind one [`Codec`] trait.
//!
//! Everything durable or shipped — snapshot generations, WAL records,
//! replication batches, protocol frames — is encoded through a codec so
//! the serving and recovery layers are format-agnostic:
//!
//! * [`TextV2`] — today's human-readable formats, unchanged on disk:
//!   `STREAMLINK-SNAP v2` framed JSON snapshots and `F <seq> <u> <v>
//!   <crc32>` WAL lines. Kept both for rollback and for `grep`-ability.
//! * [`BinaryV3`] — a checksummed binary envelope with LEB128 varints
//!   and delta-encoded sorted columns. Snapshots shrink several-fold and
//!   decode without a JSON parser; recovery replay gets correspondingly
//!   faster (experiment E24 gates the ratio).
//!
//! ## The v3 envelope
//!
//! Every v3 record — on disk or on the wire — is one envelope:
//!
//! ```text
//! "SLB3"  version  mode  body_len  body        crc32
//! 4 bytes  1 byte 1 byte  varint  body_len B  4 B LE
//! ```
//!
//! The CRC-32 ([`hashkit::crc32()`]) covers everything between the magic
//! and the trailer (version, mode, length varint, body), so any bit flip
//! in the framing or payload fails verification; the magic itself is the
//! format sniff, so a flipped magic simply stops being v3. Decoders are
//! hard-limit bounded ([`MAX_BODY_LEN`], [`MAX_SLOT_COUNT`]) and never
//! allocate more than the input could justify, so corrupt or adversarial
//! length fields cannot balloon memory — they fail closed into the same
//! quarantine paths the text formats use.
//!
//! ## Columnar snapshot bodies
//!
//! A v3 snapshot body stores per-sketch slot state as three columns:
//! the non-empty slot hashes sorted ascending and delta-encoded (minima
//! of uniform hashes delta-compress well), the slot-index permutation
//! that returns each hash to its slot, and the argmin vertex ids.
//! Vertex ids are likewise sorted and delta-encoded across the store.
//!
//! ## Varints
//!
//! Unsigned LEB128: 7 value bits per byte, high bit is the continuation
//! flag, low groups first, at most 10 bytes for a `u64`.

use std::fmt;
use std::io;

use graphstream::VertexId;
use hashkit::crc32;

use crate::config::{HasherBackend, SketchConfig};
use crate::hll::HyperLogLog;
use crate::journal::JournalEntry;
use crate::sketch::{Slot, VertexSketch};
use crate::snapshot::{self, RobustSnapshot, RobustVertexEntry, StoreSnapshot, VertexEntry};

/// The 4-byte magic opening every binary v3 envelope.
pub const BINARY_MAGIC: [u8; 4] = *b"SLB3";

/// The format version byte carried after the magic.
pub const BINARY_VERSION: u8 = 3;

/// Hard upper bound on one envelope's body length. A corrupt length
/// field beyond this fails decoding immediately instead of driving a
/// huge read or allocation.
pub const MAX_BODY_LEN: u64 = 1 << 28;

/// Hard upper bound on the slot count of a decoded sketch (far above
/// any configurable width).
pub const MAX_SLOT_COUNT: u64 = 1 << 20;

/// Envelope mode byte: one WAL edge record.
pub const MODE_WAL_ENTRY: u8 = 0x01;
/// Envelope mode byte: a [`StoreSnapshot`] body.
pub const MODE_STORE_SNAPSHOT: u8 = 0x02;
/// Envelope mode byte: a [`RobustSnapshot`] body.
pub const MODE_ROBUST_SNAPSHOT: u8 = 0x03;
/// Envelope mode byte: a protocol frame whose body is UTF-8 command or
/// response text (the negotiated binary wire mode).
pub const MODE_TEXT_FRAME: u8 = 0x04;
/// Envelope mode byte: a replication batch of WAL entries.
pub const MODE_WAL_BATCH: u8 = 0x05;
/// Envelope mode byte: an anti-entropy snapshot transfer whose body is
/// `varint seq · varint raw_len · LZ-compressed snapshot bytes` (the
/// checksummed JSON document the text plane ships verbatim).
pub const MODE_SNAPSHOT_FRAME: u8 = 0x06;

/// Why a binary decode failed. Every variant is a fail-closed outcome:
/// callers treat the input as corrupt and route it to quarantine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ends before the envelope (or a field) is complete.
    Truncated,
    /// The input does not start with [`BINARY_MAGIC`].
    BadMagic,
    /// The version byte is not [`BINARY_VERSION`].
    BadVersion(u8),
    /// The mode byte is not one this decoder accepts.
    BadMode(u8),
    /// The CRC-32 trailer does not match the framed bytes.
    BadCrc,
    /// A length field exceeds its hard limit.
    TooLarge(&'static str),
    /// The framing verified but the body is structurally invalid.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated record"),
            CodecError::BadMagic => write!(f, "missing binary magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::BadMode(m) => write!(f, "unexpected record mode {m:#04x}"),
            CodecError::BadCrc => write!(f, "CRC mismatch"),
            CodecError::TooLarge(what) => write!(f, "{what} exceeds hard limit"),
            CodecError::Malformed(what) => write!(f, "malformed body: {what}"),
        }
    }
}

impl From<CodecError> for io::Error {
    fn from(e: CodecError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Appends `value` as an unsigned LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint at `*pos`, advancing it.
///
/// # Errors
/// [`CodecError::Truncated`] if the input ends mid-varint;
/// [`CodecError::Malformed`] if the encoding overflows a `u64`.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    for i in 0..10u32 {
        let Some(&b) = bytes.get(*pos) else {
            return Err(CodecError::Truncated);
        };
        *pos += 1;
        let group = u64::from(b & 0x7f);
        if i == 9 && group > 1 {
            return Err(CodecError::Malformed("varint overflows u64"));
        }
        value |= group << (7 * i);
        if b & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(CodecError::Malformed("varint longer than 10 bytes"))
}

/// Whether `bytes` opens with the binary v3 magic — the format sniff
/// used by every auto-detecting read path.
#[must_use]
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.starts_with(&BINARY_MAGIC)
}

/// A decoded v3 envelope: the mode byte, the body slice, and how many
/// input bytes the whole record consumed (for scanning concatenated
/// records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope<'a> {
    /// The record's mode byte.
    pub mode: u8,
    /// The verified body.
    pub body: &'a [u8],
    /// Total encoded length including magic and CRC trailer.
    pub consumed: usize,
}

/// Wraps `body` in a v3 envelope (magic, version, mode, length varint,
/// body, CRC-32 trailer).
#[must_use]
pub fn encode_envelope(mode: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 20);
    out.extend_from_slice(&BINARY_MAGIC);
    out.push(BINARY_VERSION);
    out.push(mode);
    write_varint(&mut out, body.len() as u64);
    out.extend_from_slice(body);
    let crc = crc32(&out[BINARY_MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes and verifies one envelope at the start of `bytes`.
///
/// Trailing bytes after the record are fine (concatenated records);
/// [`Envelope::consumed`] says where this one ends.
///
/// # Errors
/// Fails closed on any framing defect — missing magic, bad version,
/// truncation, an oversized length field, or a CRC mismatch.
pub fn decode_envelope(bytes: &[u8]) -> Result<Envelope<'_>, CodecError> {
    if bytes.len() < BINARY_MAGIC.len() {
        return Err(if is_binary(bytes) || BINARY_MAGIC.starts_with(bytes) {
            CodecError::Truncated
        } else {
            CodecError::BadMagic
        });
    }
    if !is_binary(bytes) {
        return Err(CodecError::BadMagic);
    }
    let mut pos = BINARY_MAGIC.len();
    let Some(&version) = bytes.get(pos) else {
        return Err(CodecError::Truncated);
    };
    if version != BINARY_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    pos += 1;
    let Some(&mode) = bytes.get(pos) else {
        return Err(CodecError::Truncated);
    };
    pos += 1;
    let body_len = read_varint(bytes, &mut pos)?;
    if body_len > MAX_BODY_LEN {
        return Err(CodecError::TooLarge("record body length"));
    }
    let body_len =
        usize::try_from(body_len).map_err(|_| CodecError::TooLarge("record body length"))?;
    let body_end = pos
        .checked_add(body_len)
        .ok_or(CodecError::TooLarge("record body length"))?;
    let trailer_end = body_end
        .checked_add(4)
        .ok_or(CodecError::TooLarge("record body length"))?;
    if bytes.len() < trailer_end {
        return Err(CodecError::Truncated);
    }
    let expected = u32::from_le_bytes(
        bytes[body_end..trailer_end]
            .try_into()
            .expect("4-byte slice"),
    );
    if crc32(&bytes[BINARY_MAGIC.len()..body_end]) != expected {
        return Err(CodecError::BadCrc);
    }
    Ok(Envelope {
        mode,
        body: &bytes[pos..body_end],
        consumed: trailer_end,
    })
}

// ---------------------------------------------------------------------
// WAL entries and replication batches
// ---------------------------------------------------------------------

fn wal_entry_body(entry: &JournalEntry) -> Vec<u8> {
    let mut body = Vec::with_capacity(16);
    write_varint(&mut body, entry.seq);
    write_varint(&mut body, entry.u.0);
    write_varint(&mut body, entry.v.0);
    body
}

/// Encodes one WAL entry as a standalone v3 record.
#[must_use]
pub fn encode_wal_entry(entry: &JournalEntry) -> Vec<u8> {
    encode_envelope(MODE_WAL_ENTRY, &wal_entry_body(entry))
}

/// Decodes the body of a [`MODE_WAL_ENTRY`] envelope.
///
/// # Errors
/// Fails if the body is not exactly three varints.
pub fn decode_wal_entry_body(body: &[u8]) -> Result<JournalEntry, CodecError> {
    let mut pos = 0;
    let seq = read_varint(body, &mut pos)?;
    let u = read_varint(body, &mut pos)?;
    let v = read_varint(body, &mut pos)?;
    if pos != body.len() {
        return Err(CodecError::Malformed("trailing bytes after WAL entry"));
    }
    Ok(JournalEntry {
        seq,
        u: VertexId(u),
        v: VertexId(v),
    })
}

/// Encodes a replication pull batch: the primary's high-water seq and a
/// seq-ascending run of entries (seqs delta-encoded).
#[must_use]
pub fn encode_wal_batch(entries: &[JournalEntry], primary_seq: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + entries.len() * 8);
    write_varint(&mut body, primary_seq);
    write_varint(&mut body, entries.len() as u64);
    let mut prev = 0u64;
    for (i, e) in entries.iter().enumerate() {
        let delta = if i == 0 {
            e.seq
        } else {
            e.seq.wrapping_sub(prev)
        };
        write_varint(&mut body, delta);
        prev = e.seq;
        write_varint(&mut body, e.u.0);
        write_varint(&mut body, e.v.0);
    }
    encode_envelope(MODE_WAL_BATCH, &body)
}

/// Decodes the body of a [`MODE_WAL_BATCH`] envelope into
/// `(entries, primary_seq)`.
///
/// # Errors
/// Fails on truncation, non-ascending seqs, or count/length mismatch.
pub fn decode_wal_batch_body(body: &[u8]) -> Result<(Vec<JournalEntry>, u64), CodecError> {
    let mut pos = 0;
    let primary_seq = read_varint(body, &mut pos)?;
    let count = read_varint(body, &mut pos)?;
    // Each entry needs at least 3 bytes; a count the remaining bytes
    // cannot hold is corrupt, and bounding the pre-allocation by it
    // keeps a flipped count bit from ballooning memory.
    if count > (body.len() - pos.min(body.len())) as u64 {
        return Err(CodecError::Malformed("batch count exceeds body"));
    }
    let count = usize::try_from(count).map_err(|_| CodecError::TooLarge("batch count"))?;
    let mut entries = Vec::with_capacity(count);
    let mut prev = 0u64;
    for i in 0..count {
        let delta = read_varint(body, &mut pos)?;
        let seq = if i == 0 {
            delta
        } else {
            prev.checked_add(delta)
                .filter(|_| delta > 0)
                .ok_or(CodecError::Malformed("batch seqs not ascending"))?
        };
        prev = seq;
        let u = read_varint(body, &mut pos)?;
        let v = read_varint(body, &mut pos)?;
        entries.push(JournalEntry {
            seq,
            u: VertexId(u),
            v: VertexId(v),
        });
    }
    if pos != body.len() {
        return Err(CodecError::Malformed("trailing bytes after batch"));
    }
    Ok((entries, primary_seq))
}

/// Encodes UTF-8 command/response text as a [`MODE_TEXT_FRAME`] record —
/// the unit of the negotiated binary protocol mode.
#[must_use]
pub fn encode_text_frame(text: &str) -> Vec<u8> {
    encode_envelope(MODE_TEXT_FRAME, text.as_bytes())
}

/// Reads one complete envelope from a blocking byte stream, returning
/// its `(mode, body)`. This is the client side of the negotiated binary
/// protocol mode, where frames arrive back-to-back on a socket and the
/// length prefix is the only delimiter.
///
/// # Errors
/// `UnexpectedEof` when the peer closes mid-frame; `InvalidData` (via
/// [`CodecError`]) for any framing defect, including an oversized
/// length field — rejected before any allocation happens.
pub fn read_envelope_blocking(reader: &mut impl io::Read) -> io::Result<(u8, Vec<u8>)> {
    // Magic + version + mode.
    let mut buf = vec![0u8; BINARY_MAGIC.len() + 2];
    reader.read_exact(&mut buf)?;
    if !is_binary(&buf) {
        return Err(CodecError::BadMagic.into());
    }
    let version = buf[BINARY_MAGIC.len()];
    if version != BINARY_VERSION {
        return Err(CodecError::BadVersion(version).into());
    }
    // Length varint, one byte at a time (at most 10).
    let varint_start = buf.len();
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        buf.push(byte[0]);
        if byte[0] & 0x80 == 0 {
            break;
        }
        if buf.len() - varint_start >= 10 {
            return Err(CodecError::Malformed("varint too long").into());
        }
    }
    let mut pos = varint_start;
    let body_len = read_varint(&buf, &mut pos)?;
    if body_len > MAX_BODY_LEN {
        return Err(CodecError::TooLarge("record body length").into());
    }
    // Body + CRC trailer, then verify through the one decoder.
    let rest = body_len as usize + 4;
    let start = buf.len();
    buf.resize(start + rest, 0);
    reader.read_exact(&mut buf[start..])?;
    let env = decode_envelope(&buf)?;
    Ok((env.mode, env.body.to_vec()))
}

// ---------------------------------------------------------------------
// LZ compression (anti-entropy snapshot bodies)
// ---------------------------------------------------------------------

/// Shortest backreference worth emitting.
const LZ_MIN_MATCH: usize = 4;
/// Longest backreference one token can carry (`0x80..=0xff` → 4..=131).
const LZ_MAX_MATCH: usize = LZ_MIN_MATCH + 0x7e;
/// Match window: backreference distances fit comfortably in a varint
/// and the matcher's table stays cache-friendly.
const LZ_WINDOW: usize = 1 << 16;
/// Longest literal run one token can carry (`0x00..=0x7f` → 1..=128).
const LZ_MAX_LITERALS: usize = 0x80;

/// Compresses `input` with a small greedy LZ77 (hash-table matcher,
/// 64 KiB window). The token stream is byte-oriented: a control byte
/// `< 0x80` copies `control + 1` literal bytes that follow; a control
/// byte `>= 0x80` is a backreference of length `control - 0x80 + 4`
/// whose distance follows as a varint. No entropy stage — the point is
/// shrinking highly repetitive snapshot JSON several-fold with zero
/// dependencies, not competing with zstd.
#[must_use]
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // One slot per 3-byte-prefix hash: position of its last occurrence.
    let mut table = vec![usize::MAX; 1 << 15];
    let hash = |window: &[u8]| -> usize {
        let h = (u32::from(window[0]) << 16) | (u32::from(window[1]) << 8) | u32::from(window[2]);
        (h.wrapping_mul(0x9e37_79b1) >> 17) as usize
    };
    let mut literals_from = 0usize;
    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut start = from;
        while start < to {
            let run = (to - start).min(LZ_MAX_LITERALS);
            out.push((run - 1) as u8);
            out.extend_from_slice(&input[start..start + run]);
            start += run;
        }
    };
    let mut i = 0usize;
    while i + LZ_MIN_MATCH <= input.len() {
        let slot = hash(&input[i..]);
        let candidate = table[slot];
        table[slot] = i;
        let mut matched = 0usize;
        if candidate != usize::MAX && i - candidate <= LZ_WINDOW {
            let limit = (input.len() - i).min(LZ_MAX_MATCH);
            while matched < limit && input[candidate + matched] == input[i + matched] {
                matched += 1;
            }
        }
        if matched >= LZ_MIN_MATCH {
            flush_literals(&mut out, literals_from, i);
            out.push(0x80 + (matched - LZ_MIN_MATCH) as u8);
            write_varint(&mut out, (i - candidate) as u64);
            // Seed the table across the matched span (sparsely — every
            // position would be slower for little extra ratio).
            let mut j = i + 1;
            while j + LZ_MIN_MATCH <= input.len() && j < i + matched {
                table[hash(&input[j..])] = j;
                j += 2;
            }
            i += matched;
            literals_from = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, literals_from, input.len());
    out
}

/// Decompresses [`lz_compress`] output. `max_len` bounds the result so
/// corrupt or hostile token streams cannot drive an unbounded
/// allocation.
///
/// # Errors
/// [`CodecError::Truncated`] on a short token stream,
/// [`CodecError::Malformed`] on an invalid backreference, and
/// [`CodecError::TooLarge`] past `max_len`.
pub fn lz_decompress(input: &[u8], max_len: u64) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < input.len() {
        let control = input[pos];
        pos += 1;
        if control < 0x80 {
            let run = control as usize + 1;
            if pos + run > input.len() {
                return Err(CodecError::Truncated);
            }
            if out.len() + run > max_len as usize {
                return Err(CodecError::TooLarge("decompressed length"));
            }
            out.extend_from_slice(&input[pos..pos + run]);
            pos += run;
        } else {
            let len = control as usize - 0x80 + LZ_MIN_MATCH;
            let distance = read_varint(input, &mut pos)? as usize;
            if distance == 0 || distance > out.len() {
                return Err(CodecError::Malformed("backreference outside window"));
            }
            if out.len() + len > max_len as usize {
                return Err(CodecError::TooLarge("decompressed length"));
            }
            let start = out.len() - distance;
            // Overlapping copies are legal (distance < len repeats).
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok(out)
}

/// Encodes an anti-entropy snapshot transfer as one
/// [`MODE_SNAPSHOT_FRAME`] envelope: the WAL seq the snapshot covers,
/// the raw byte length, and the LZ-compressed snapshot document.
#[must_use]
pub fn encode_snapshot_frame(seq: u64, raw: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(raw.len() / 2 + 16);
    write_varint(&mut body, seq);
    write_varint(&mut body, raw.len() as u64);
    body.extend_from_slice(&lz_compress(raw));
    encode_envelope(MODE_SNAPSHOT_FRAME, &body)
}

/// Decodes the body of a [`MODE_SNAPSHOT_FRAME`] envelope back into
/// `(seq, raw snapshot bytes)`.
///
/// # Errors
/// Any [`CodecError`] on malformed framing, a raw length past
/// [`MAX_BODY_LEN`], or a decompressed size that disagrees with the
/// declared one.
pub fn decode_snapshot_frame_body(body: &[u8]) -> Result<(u64, Vec<u8>), CodecError> {
    let mut pos = 0usize;
    let seq = read_varint(body, &mut pos)?;
    let raw_len = read_varint(body, &mut pos)?;
    if raw_len > MAX_BODY_LEN {
        return Err(CodecError::TooLarge("snapshot raw length"));
    }
    let raw = lz_decompress(&body[pos..], raw_len)?;
    if raw.len() as u64 != raw_len {
        return Err(CodecError::Malformed("decompressed length mismatch"));
    }
    Ok((seq, raw))
}

// ---------------------------------------------------------------------
// Columnar sketch encoding
// ---------------------------------------------------------------------

fn encode_sketch(out: &mut Vec<u8>, sketch: &VertexSketch) {
    let mut filled: Vec<(u64, usize, u64)> = sketch
        .slots()
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(i, s)| (s.hash, i, s.argmin.0))
        .collect();
    filled.sort_unstable();
    write_varint(out, filled.len() as u64);
    // Column 1: sorted hashes, delta-encoded.
    let mut prev = 0u64;
    for &(hash, _, _) in &filled {
        write_varint(out, hash - prev);
        prev = hash;
    }
    // Column 2: the slot-index permutation.
    for &(_, idx, _) in &filled {
        write_varint(out, idx as u64);
    }
    // Column 3: the argmin vertices.
    for &(_, _, argmin) in &filled {
        write_varint(out, argmin);
    }
}

fn decode_sketch(body: &[u8], pos: &mut usize, k: usize) -> Result<VertexSketch, CodecError> {
    let filled = read_varint(body, pos)?;
    if filled > k as u64 {
        return Err(CodecError::Malformed("filled slots exceed sketch width"));
    }
    let filled = usize::try_from(filled).map_err(|_| CodecError::TooLarge("filled slot count"))?;
    let mut hashes = Vec::with_capacity(filled);
    let mut prev = 0u64;
    for i in 0..filled {
        let delta = read_varint(body, pos)?;
        let hash = if i == 0 {
            delta
        } else {
            prev.checked_add(delta)
                .ok_or(CodecError::Malformed("hash column overflows"))?
        };
        prev = hash;
        hashes.push(hash);
    }
    let mut slots = vec![Slot::EMPTY; k].into_boxed_slice();
    let mut taken = vec![false; k];
    let mut indices = Vec::with_capacity(filled);
    for _ in 0..filled {
        let idx = read_varint(body, pos)?;
        let idx = usize::try_from(idx)
            .ok()
            .filter(|&i| i < k)
            .ok_or(CodecError::Malformed("slot index out of range"))?;
        if std::mem::replace(&mut taken[idx], true) {
            return Err(CodecError::Malformed("duplicate slot index"));
        }
        indices.push(idx);
    }
    for (i, &idx) in indices.iter().enumerate() {
        let argmin = read_varint(body, pos)?;
        slots[idx] = Slot {
            hash: hashes[i],
            argmin: VertexId(argmin),
        };
    }
    Ok(VertexSketch::from_slots(slots))
}

// ---------------------------------------------------------------------
// Snapshot bodies
// ---------------------------------------------------------------------

fn backend_byte(backend: HasherBackend) -> u8 {
    match backend {
        HasherBackend::Mixer => 0,
        HasherBackend::Tabulation => 1,
    }
}

fn backend_from(byte: u64) -> Result<HasherBackend, CodecError> {
    match byte {
        0 => Ok(HasherBackend::Mixer),
        1 => Ok(HasherBackend::Tabulation),
        _ => Err(CodecError::Malformed("unknown hasher backend")),
    }
}

fn encode_config(out: &mut Vec<u8>, config: &SketchConfig) -> Result<(), CodecError> {
    if config.slots() as u64 > MAX_SLOT_COUNT {
        return Err(CodecError::TooLarge("sketch slot count"));
    }
    write_varint(out, config.slots() as u64);
    write_varint(out, config.base_seed());
    out.push(backend_byte(config.hasher_backend()));
    Ok(())
}

fn decode_config(body: &[u8], pos: &mut usize) -> Result<SketchConfig, CodecError> {
    let slots = read_varint(body, pos)?;
    if slots == 0 || slots > MAX_SLOT_COUNT {
        return Err(CodecError::Malformed("slot count out of range"));
    }
    let slots = usize::try_from(slots).map_err(|_| CodecError::TooLarge("slot count"))?;
    let seed = read_varint(body, pos)?;
    let Some(&backend) = body.get(*pos) else {
        return Err(CodecError::Truncated);
    };
    *pos += 1;
    Ok(SketchConfig::with_slots(slots)
        .seed(seed)
        .backend(backend_from(u64::from(backend))?))
}

/// Decodes the sorted, delta-encoded vertex-id column.
fn decode_vertex_column(
    body: &[u8],
    pos: &mut usize,
    count: usize,
) -> Result<Vec<VertexId>, CodecError> {
    let mut out = Vec::with_capacity(count);
    let mut prev = 0u64;
    for i in 0..count {
        let delta = read_varint(body, pos)?;
        let id = if i == 0 {
            delta
        } else {
            prev.checked_add(delta)
                .filter(|_| delta > 0)
                .ok_or(CodecError::Malformed("vertex ids not strictly ascending"))?
        };
        prev = id;
        out.push(VertexId(id));
    }
    Ok(out)
}

fn read_vertex_count(body: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let count = read_varint(body, pos)?;
    // Every vertex costs at least two body bytes (id delta + degree or
    // sketch header); a count beyond the remaining bytes is corrupt.
    if count > body.len().saturating_sub(*pos) as u64 {
        return Err(CodecError::Malformed("vertex count exceeds body"));
    }
    usize::try_from(count).map_err(|_| CodecError::TooLarge("vertex count"))
}

fn encode_store_snapshot_body(snap: &StoreSnapshot) -> Result<Vec<u8>, CodecError> {
    let mut body = Vec::with_capacity(32 + snap.vertices.len() * 16);
    encode_config(&mut body, &snap.config)?;
    write_varint(&mut body, snap.edges_processed);
    write_varint(&mut body, snap.vertices.len() as u64);
    let mut prev = 0u64;
    for (i, entry) in snap.vertices.iter().enumerate() {
        let delta = if i == 0 {
            entry.vertex.0
        } else {
            entry.vertex.0.wrapping_sub(prev)
        };
        write_varint(&mut body, delta);
        prev = entry.vertex.0;
    }
    for entry in &snap.vertices {
        write_varint(&mut body, entry.degree);
    }
    for entry in &snap.vertices {
        encode_sketch(&mut body, &entry.sketch);
    }
    Ok(body)
}

fn decode_store_snapshot_body(body: &[u8]) -> Result<StoreSnapshot, CodecError> {
    let mut pos = 0;
    let config = decode_config(body, &mut pos)?;
    let edges_processed = read_varint(body, &mut pos)?;
    let count = read_vertex_count(body, &mut pos)?;
    let ids = decode_vertex_column(body, &mut pos, count)?;
    let mut degrees = Vec::with_capacity(count);
    for _ in 0..count {
        degrees.push(read_varint(body, &mut pos)?);
    }
    let mut vertices = Vec::with_capacity(count);
    for (vertex, degree) in ids.into_iter().zip(degrees) {
        let sketch = decode_sketch(body, &mut pos, config.slots())?;
        vertices.push(VertexEntry {
            vertex,
            sketch,
            degree,
        });
    }
    if pos != body.len() {
        return Err(CodecError::Malformed("trailing bytes after snapshot"));
    }
    Ok(StoreSnapshot {
        config,
        edges_processed,
        vertices,
    })
}

fn encode_robust_snapshot_body(snap: &RobustSnapshot) -> Result<Vec<u8>, CodecError> {
    if !(4..=16).contains(&snap.hll_precision) {
        return Err(CodecError::Malformed("HLL precision out of range"));
    }
    let mut body = Vec::with_capacity(32 + snap.vertices.len() * 32);
    encode_config(&mut body, &snap.config)?;
    body.push(snap.hll_precision);
    write_varint(&mut body, snap.edges_processed);
    write_varint(&mut body, snap.vertices.len() as u64);
    let mut prev = 0u64;
    for (i, entry) in snap.vertices.iter().enumerate() {
        let delta = if i == 0 {
            entry.vertex.0
        } else {
            entry.vertex.0.wrapping_sub(prev)
        };
        write_varint(&mut body, delta);
        prev = entry.vertex.0;
    }
    for entry in &snap.vertices {
        encode_sketch(&mut body, &entry.sketch);
        body.extend_from_slice(entry.degree.registers());
    }
    Ok(body)
}

fn decode_robust_snapshot_body(body: &[u8]) -> Result<RobustSnapshot, CodecError> {
    let mut pos = 0;
    let config = decode_config(body, &mut pos)?;
    let Some(&hll_precision) = body.get(pos) else {
        return Err(CodecError::Truncated);
    };
    pos += 1;
    if !(4..=16).contains(&hll_precision) {
        return Err(CodecError::Malformed("HLL precision out of range"));
    }
    let registers = 1usize << hll_precision;
    let edges_processed = read_varint(body, &mut pos)?;
    let count = read_vertex_count(body, &mut pos)?;
    let ids = decode_vertex_column(body, &mut pos, count)?;
    let mut vertices = Vec::with_capacity(count);
    for vertex in ids {
        let sketch = decode_sketch(body, &mut pos, config.slots())?;
        let end = pos
            .checked_add(registers)
            .filter(|&e| e <= body.len())
            .ok_or(CodecError::Truncated)?;
        let degree = HyperLogLog::from_parts(hll_precision, body[pos..end].to_vec())
            .ok_or(CodecError::Malformed("invalid HLL registers"))?;
        pos = end;
        vertices.push(RobustVertexEntry {
            vertex,
            sketch,
            degree,
        });
    }
    if pos != body.len() {
        return Err(CodecError::Malformed("trailing bytes after snapshot"));
    }
    Ok(RobustSnapshot {
        config,
        hll_precision,
        edges_processed,
        vertices,
    })
}

// ---------------------------------------------------------------------
// The Codec trait and its two implementations
// ---------------------------------------------------------------------

/// One storage/wire format: how snapshots and WAL records are rendered
/// to bytes and verified back.
///
/// Read paths do not pick a codec — they sniff ([`is_binary`]) and
/// dispatch, so any directory mixing formats (e.g. mid-migration)
/// remains readable. Write paths pick one via [`WireFormat`].
pub trait Codec {
    /// The CLI spelling of this format (`v2` / `v3`).
    fn name(&self) -> &'static str;

    /// Encodes a full store snapshot file.
    ///
    /// # Errors
    /// Fails if the snapshot cannot be rendered (oversized or, for the
    /// text codec, unserializable).
    fn encode_store_snapshot(&self, snap: &StoreSnapshot) -> io::Result<Vec<u8>>;

    /// Decodes and verifies a full store snapshot file.
    ///
    /// # Errors
    /// Fails closed on any framing or body defect.
    fn decode_store_snapshot(&self, bytes: &[u8]) -> io::Result<StoreSnapshot>;

    /// Encodes a full robust-store snapshot file.
    ///
    /// # Errors
    /// Fails if the snapshot cannot be rendered.
    fn encode_robust_snapshot(&self, snap: &RobustSnapshot) -> io::Result<Vec<u8>>;

    /// Decodes and verifies a full robust-store snapshot file.
    ///
    /// # Errors
    /// Fails closed on any framing or body defect.
    fn decode_robust_snapshot(&self, bytes: &[u8]) -> io::Result<RobustSnapshot>;

    /// Encodes one WAL record ready to append to a segment (the text
    /// codec's record includes its newline terminator).
    fn encode_wal_record(&self, entry: &JournalEntry) -> Vec<u8>;
}

/// The human-readable v2 formats: framed JSON snapshots and CRC'd text
/// WAL lines. See [`crate::snapshot`] and [`crate::journal`] for the
/// on-disk grammar.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextV2;

impl Codec for TextV2 {
    fn name(&self) -> &'static str {
        "v2"
    }

    fn encode_store_snapshot(&self, snap: &StoreSnapshot) -> io::Result<Vec<u8>> {
        let json = serde_json::to_string(snap)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(snapshot::frame_v2(&json).into_bytes())
    }

    fn decode_store_snapshot(&self, bytes: &[u8]) -> io::Result<StoreSnapshot> {
        let (payload, _) = snapshot::verify_text(bytes)?;
        serde_json::from_str(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    fn encode_robust_snapshot(&self, snap: &RobustSnapshot) -> io::Result<Vec<u8>> {
        let json = serde_json::to_string(snap)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(snapshot::frame_v2(&json).into_bytes())
    }

    fn decode_robust_snapshot(&self, bytes: &[u8]) -> io::Result<RobustSnapshot> {
        let (payload, _) = snapshot::verify_text(bytes)?;
        serde_json::from_str(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    fn encode_wal_record(&self, entry: &JournalEntry) -> Vec<u8> {
        let mut line = entry.to_string().into_bytes();
        line.push(b'\n');
        line
    }
}

/// The checksummed binary v3 format (see the module docs for the
/// envelope and column layouts).
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryV3;

impl BinaryV3 {
    fn decode_expecting(bytes: &[u8], mode: u8) -> Result<&[u8], CodecError> {
        let env = decode_envelope(bytes)?;
        if env.mode != mode {
            return Err(CodecError::BadMode(env.mode));
        }
        if env.consumed != bytes.len() {
            return Err(CodecError::Malformed("trailing bytes after record"));
        }
        Ok(env.body)
    }
}

impl Codec for BinaryV3 {
    fn name(&self) -> &'static str {
        "v3"
    }

    fn encode_store_snapshot(&self, snap: &StoreSnapshot) -> io::Result<Vec<u8>> {
        let body = encode_store_snapshot_body(snap)?;
        Ok(encode_envelope(MODE_STORE_SNAPSHOT, &body))
    }

    fn decode_store_snapshot(&self, bytes: &[u8]) -> io::Result<StoreSnapshot> {
        let body = Self::decode_expecting(bytes, MODE_STORE_SNAPSHOT)?;
        Ok(decode_store_snapshot_body(body)?)
    }

    fn encode_robust_snapshot(&self, snap: &RobustSnapshot) -> io::Result<Vec<u8>> {
        let body = encode_robust_snapshot_body(snap)?;
        Ok(encode_envelope(MODE_ROBUST_SNAPSHOT, &body))
    }

    fn decode_robust_snapshot(&self, bytes: &[u8]) -> io::Result<RobustSnapshot> {
        let body = Self::decode_expecting(bytes, MODE_ROBUST_SNAPSHOT)?;
        Ok(decode_robust_snapshot_body(body)?)
    }

    fn encode_wal_record(&self, entry: &JournalEntry) -> Vec<u8> {
        encode_wal_entry(entry)
    }
}

/// The format selector carried by CLI flags and write paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Human-readable text formats (today's default).
    #[default]
    TextV2,
    /// Checksummed binary v3.
    BinaryV3,
}

impl WireFormat {
    /// Parses the CLI spelling (`v2` | `v3`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "v2" => Some(WireFormat::TextV2),
            "v3" => Some(WireFormat::BinaryV3),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        self.codec().name()
    }

    /// The codec implementing this format.
    #[must_use]
    pub fn codec(self) -> &'static dyn Codec {
        match self {
            WireFormat::TextV2 => &TextV2,
            WireFormat::BinaryV3 => &BinaryV3,
        }
    }
}

impl fmt::Display for WireFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::robust::RobustStore;
    use crate::store::SketchStore;
    use graphstream::{BarabasiAlbert, EdgeStream};
    use proptest::prelude::*;

    fn populated_snapshot() -> StoreSnapshot {
        let mut s = SketchStore::new(SketchConfig::with_slots(32).seed(5));
        s.insert_stream(BarabasiAlbert::new(120, 2, 8).edges());
        StoreSnapshot::capture(&s)
    }

    fn entry(seq: u64) -> JournalEntry {
        JournalEntry {
            seq,
            u: VertexId(seq.wrapping_mul(3)),
            v: VertexId(seq.wrapping_mul(3).wrapping_add(1)),
        }
    }

    #[test]
    fn lz_round_trips_and_shrinks_snapshot_json() {
        let json = serde_json::to_string(&populated_snapshot()).unwrap();
        let raw = json.as_bytes();
        let packed = lz_compress(raw);
        assert_eq!(
            lz_decompress(&packed, raw.len() as u64).unwrap(),
            raw,
            "round trip"
        );
        // The satellite's size assertion: the anti-entropy transfer of a
        // real snapshot document must genuinely shrink on the wire, even
        // with the whole-envelope overhead included.
        let frame = encode_snapshot_frame(181, raw);
        assert!(
            frame.len() < raw.len(),
            "compressed frame {} >= raw {}",
            frame.len(),
            raw.len()
        );
        let env = decode_envelope(&frame).unwrap();
        assert_eq!(env.mode, MODE_SNAPSHOT_FRAME);
        let (seq, got) = decode_snapshot_frame_body(env.body).unwrap();
        assert_eq!(seq, 181);
        assert_eq!(got, raw);
    }

    #[test]
    fn lz_handles_edge_inputs() {
        for input in [
            b"".to_vec(),
            b"a".to_vec(),
            b"abc".to_vec(),
            vec![0u8; 5000],                         // long overlap run
            (0u8..=255).cycle().take(700).collect(), // periodic
        ] {
            let packed = lz_compress(&input);
            assert_eq!(lz_decompress(&packed, input.len() as u64).unwrap(), input);
        }
    }

    #[test]
    fn lz_decompress_fails_closed() {
        // Backreference before the start of output.
        let mut bogus = vec![0x00, b'x', 0x80];
        write_varint(&mut bogus, 9);
        assert!(matches!(
            lz_decompress(&bogus, 1 << 20),
            Err(CodecError::Malformed(_))
        ));
        // Truncated literal run.
        assert_eq!(
            lz_decompress(&[0x05, b'a'], 1 << 20),
            Err(CodecError::Truncated)
        );
        // Output bound enforced.
        let packed = lz_compress(&vec![7u8; 4096]);
        assert!(matches!(
            lz_decompress(&packed, 100),
            Err(CodecError::TooLarge(_))
        ));
    }

    proptest! {
        #[test]
        fn lz_round_trips_arbitrary_bytes(input in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let packed = lz_compress(&input);
            prop_assert_eq!(lz_decompress(&packed, input.len() as u64).unwrap(), input);
        }
    }

    #[test]
    fn varint_roundtrips_boundary_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
        let mut pos = 0;
        assert_eq!(read_varint(&buf[..9], &mut pos), Err(CodecError::Truncated));
        // 10th byte carrying more than one value bit overflows u64.
        let over = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&over, &mut pos),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn envelope_roundtrip_and_mode() {
        let rec = encode_envelope(MODE_WAL_ENTRY, b"payload");
        let env = decode_envelope(&rec).unwrap();
        assert_eq!(env.mode, MODE_WAL_ENTRY);
        assert_eq!(env.body, b"payload");
        assert_eq!(env.consumed, rec.len());
        // Concatenated records: the first decode reports its own end.
        let mut two = rec.clone();
        two.extend_from_slice(&encode_envelope(MODE_TEXT_FRAME, b"x"));
        assert_eq!(decode_envelope(&two).unwrap().consumed, rec.len());
    }

    #[test]
    fn envelope_rejects_wrong_version_and_magic() {
        let mut rec = encode_envelope(MODE_WAL_ENTRY, b"p");
        rec[4] = 9;
        assert_eq!(decode_envelope(&rec), Err(CodecError::BadVersion(9)));
        assert_eq!(decode_envelope(b"not binary"), Err(CodecError::BadMagic));
    }

    #[test]
    fn envelope_bounds_oversized_length_fields() {
        // Hand-build framing that claims a body beyond MAX_BODY_LEN.
        let mut rec = Vec::new();
        rec.extend_from_slice(&BINARY_MAGIC);
        rec.push(BINARY_VERSION);
        rec.push(MODE_WAL_ENTRY);
        write_varint(&mut rec, MAX_BODY_LEN + 1);
        rec.extend_from_slice(&[0; 8]);
        assert_eq!(
            decode_envelope(&rec),
            Err(CodecError::TooLarge("record body length"))
        );
    }

    #[test]
    fn read_envelope_blocking_walks_concatenated_frames() {
        let mut stream = encode_text_frame("OK pong");
        stream.extend_from_slice(&encode_wal_entry(&entry(7)));
        let mut cursor = io::Cursor::new(stream);
        let (mode, body) = read_envelope_blocking(&mut cursor).unwrap();
        assert_eq!(mode, MODE_TEXT_FRAME);
        assert_eq!(body, b"OK pong");
        let (mode, body) = read_envelope_blocking(&mut cursor).unwrap();
        assert_eq!(mode, MODE_WAL_ENTRY);
        assert_eq!(decode_wal_entry_body(&body), Ok(entry(7)));
        // Clean EOF at a frame boundary is still an error to the caller.
        assert!(read_envelope_blocking(&mut cursor).is_err());
    }

    #[test]
    fn read_envelope_blocking_fails_closed() {
        // Flipped CRC trailer.
        let mut frame = encode_text_frame("hello");
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(read_envelope_blocking(&mut io::Cursor::new(frame)).is_err());
        // Truncation mid-body.
        let frame = encode_text_frame("hello");
        let cut = frame.len() - 3;
        assert!(read_envelope_blocking(&mut io::Cursor::new(&frame[..cut])).is_err());
        // An oversized length field is rejected before allocating.
        let mut huge = Vec::new();
        huge.extend_from_slice(&BINARY_MAGIC);
        huge.push(BINARY_VERSION);
        huge.push(MODE_TEXT_FRAME);
        write_varint(&mut huge, MAX_BODY_LEN + 1);
        assert!(read_envelope_blocking(&mut io::Cursor::new(huge)).is_err());
    }

    #[test]
    fn wal_entry_roundtrip() {
        let e = entry(123_456_789);
        let rec = encode_wal_entry(&e);
        let env = decode_envelope(&rec).unwrap();
        assert_eq!(env.mode, MODE_WAL_ENTRY);
        assert_eq!(decode_wal_entry_body(env.body), Ok(e));
    }

    #[test]
    fn every_single_bit_flip_in_a_wal_record_fails_closed() {
        let rec = encode_wal_entry(&entry(987_654_321));
        let mut bytes = rec.clone();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                bytes[byte] ^= 1 << bit;
                let verdict =
                    decode_envelope(&bytes).and_then(|env| decode_wal_entry_body(env.body));
                assert!(
                    verdict.is_err(),
                    "flip {byte}:{bit} produced a silently valid record"
                );
                bytes[byte] ^= 1 << bit;
            }
        }
        assert_eq!(bytes, rec);
    }

    #[test]
    fn truncation_at_every_offset_fails_closed() {
        let rec = encode_wal_entry(&entry(42));
        for cut in 0..rec.len() {
            assert!(
                decode_envelope(&rec[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
        let snap = BinaryV3
            .encode_store_snapshot(&populated_snapshot())
            .unwrap();
        for cut in (0..snap.len()).step_by(7) {
            assert!(
                BinaryV3.decode_store_snapshot(&snap[..cut]).is_err(),
                "snapshot truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn wal_batch_roundtrip_and_ordering() {
        let entries: Vec<_> = (5..25).map(entry).collect();
        let rec = encode_wal_batch(&entries, 99);
        let env = decode_envelope(&rec).unwrap();
        assert_eq!(env.mode, MODE_WAL_BATCH);
        let (back, primary_seq) = decode_wal_batch_body(env.body).unwrap();
        assert_eq!(back, entries);
        assert_eq!(primary_seq, 99);
        assert!(decode_wal_batch_body(&env.body[..env.body.len() - 1]).is_err());
    }

    #[test]
    fn empty_wal_batch_roundtrips() {
        let rec = encode_wal_batch(&[], 7);
        let env = decode_envelope(&rec).unwrap();
        assert_eq!(decode_wal_batch_body(env.body), Ok((Vec::new(), 7)));
    }

    #[test]
    fn store_snapshot_binary_roundtrip_equals_text() {
        let snap = populated_snapshot();
        let v3 = BinaryV3.encode_store_snapshot(&snap).unwrap();
        let v2 = TextV2.encode_store_snapshot(&snap).unwrap();
        assert_eq!(BinaryV3.decode_store_snapshot(&v3).unwrap(), snap);
        assert_eq!(TextV2.decode_store_snapshot(&v2).unwrap(), snap);
        assert!(
            v3.len() * 2 < v2.len(),
            "binary snapshot should be far smaller: {} vs {}",
            v3.len(),
            v2.len()
        );
    }

    #[test]
    fn robust_snapshot_binary_roundtrip() {
        let mut s = RobustStore::new(SketchConfig::with_slots(16).seed(3), 8);
        s.insert_stream(BarabasiAlbert::new(80, 2, 4).edges());
        let snap = RobustSnapshot::capture(&s);
        let v3 = BinaryV3.encode_robust_snapshot(&snap).unwrap();
        assert_eq!(BinaryV3.decode_robust_snapshot(&v3).unwrap(), snap);
        assert_eq!(
            TextV2
                .decode_robust_snapshot(&TextV2.encode_robust_snapshot(&snap).unwrap())
                .unwrap(),
            snap
        );
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = StoreSnapshot::capture(&SketchStore::new(SketchConfig::with_slots(8)));
        let v3 = BinaryV3.encode_store_snapshot(&snap).unwrap();
        assert_eq!(BinaryV3.decode_store_snapshot(&v3).unwrap(), snap);
    }

    #[test]
    fn snapshot_decode_rejects_wrong_mode() {
        let snap = populated_snapshot();
        let v3 = BinaryV3.encode_store_snapshot(&snap).unwrap();
        assert!(BinaryV3.decode_robust_snapshot(&v3).is_err());
    }

    #[test]
    fn wire_format_parses_cli_spellings() {
        assert_eq!(WireFormat::parse("v2"), Some(WireFormat::TextV2));
        assert_eq!(WireFormat::parse("v3"), Some(WireFormat::BinaryV3));
        assert_eq!(WireFormat::parse("v1"), None);
        assert_eq!(WireFormat::TextV2.name(), "v2");
        assert_eq!(WireFormat::BinaryV3.name(), "v3");
    }

    proptest! {
        #[test]
        fn prop_varint_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_varint(&buf, &mut pos), Ok(v));
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn prop_wal_entry_roundtrip(seq in any::<u64>(), u in any::<u64>(), v in any::<u64>()) {
            let e = JournalEntry { seq, u: VertexId(u), v: VertexId(v) };
            let rec = encode_wal_entry(&e);
            let env = decode_envelope(&rec).unwrap();
            prop_assert_eq!(decode_wal_entry_body(env.body), Ok(e));
        }

        #[test]
        fn prop_wal_record_bit_flip_never_verifies(seq in any::<u64>(), flip in 0usize..400) {
            let rec = encode_wal_entry(&entry(seq));
            let mut bytes = rec.clone();
            let bit = flip % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            let verdict = decode_envelope(&bytes)
                .and_then(|env| decode_wal_entry_body(env.body));
            prop_assert!(verdict.is_err());
        }

        #[test]
        fn prop_snapshot_cross_format_equality(
            seed in 0u64..50,
            n in 30u64..100,
        ) {
            let mut s = SketchStore::new(SketchConfig::with_slots(16).seed(seed));
            s.insert_stream(BarabasiAlbert::new(n, 2, seed).edges());
            let snap = StoreSnapshot::capture(&s);
            let via_v3 = BinaryV3
                .decode_store_snapshot(&BinaryV3.encode_store_snapshot(&snap).unwrap())
                .unwrap();
            let via_v2 = TextV2
                .decode_store_snapshot(&TextV2.encode_store_snapshot(&snap).unwrap())
                .unwrap();
            prop_assert_eq!(&via_v3, &via_v2);
            prop_assert_eq!(via_v3, snap);
        }

        #[test]
        fn prop_snapshot_bit_flip_fails_closed(seed in 0u64..30, flip in any::<u64>()) {
            let mut s = SketchStore::new(SketchConfig::with_slots(8).seed(seed));
            s.insert_stream(BarabasiAlbert::new(40, 2, seed).edges());
            let rec = BinaryV3
                .encode_store_snapshot(&StoreSnapshot::capture(&s))
                .unwrap();
            let mut bytes = rec.clone();
            let bit = (flip % (bytes.len() as u64 * 8)) as usize;
            bytes[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(BinaryV3.decode_store_snapshot(&bytes).is_err());
        }

        #[test]
        fn prop_garbage_never_decodes_as_snapshot(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Random bytes must fail closed (the odds of a valid CRC on
            // random framing are ~2^-32; the deterministic structure
            // checks reject far earlier).
            prop_assert!(BinaryV3.decode_store_snapshot(&bytes).is_err());
        }
    }
}
