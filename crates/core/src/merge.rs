//! Sketch-store union — the distributed/parallel ingestion primitive.
//!
//! MinHash slots are min-registers, so the union of two stores built from
//! edge-disjoint sub-streams is *exactly* the store a single pass over the
//! combined stream would produce: merge slots component-wise by `min`, add
//! degree counters, add edge counts. This holds per vertex, so shards can
//! split the stream arbitrarily — by range, by hash, round-robin — as long
//! as no edge is delivered to two shards (that would double-count
//! degrees; slots themselves would still be correct).

use crate::sketch::VertexSketch;
use crate::store::SketchStore;

/// Why two stores could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// Slot counts differ.
    SlotMismatch {
        /// Slots of the destination store.
        left: usize,
        /// Slots of the source store.
        right: usize,
    },
    /// Base seeds differ — the hash families are incompatible and slot
    /// values are not comparable.
    SeedMismatch,
    /// Hasher backends differ.
    BackendMismatch,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::SlotMismatch { left, right } => {
                write!(f, "cannot merge sketches of {left} and {right} slots")
            }
            MergeError::SeedMismatch => write!(f, "cannot merge stores with different seeds"),
            MergeError::BackendMismatch => {
                write!(f, "cannot merge stores with different hasher backends")
            }
        }
    }
}

impl std::error::Error for MergeError {}

fn check_compat(dst: &SketchStore, src: &SketchStore) -> Result<(), MergeError> {
    let (dc, sc) = (dst.config(), src.config());
    if dc.slots() != sc.slots() {
        return Err(MergeError::SlotMismatch {
            left: dc.slots(),
            right: sc.slots(),
        });
    }
    if dc.base_seed() != sc.base_seed() {
        return Err(MergeError::SeedMismatch);
    }
    if dc.hasher_backend() != sc.hasher_backend() {
        return Err(MergeError::BackendMismatch);
    }
    Ok(())
}

/// Merges `src` into `dst` (neighborhood union per vertex).
///
/// This is the **shard union**: degrees and edge counts are *added*, so
/// it is exact only when the two stores were built from edge-disjoint
/// sub-streams. For joining two replicas of the *same* stream, use
/// [`merge_join`].
///
/// # Errors
/// Fails without modifying `dst` if the configurations are incompatible.
pub fn merge_into(dst: &mut SketchStore, src: &SketchStore) -> Result<(), MergeError> {
    check_compat(dst, src)?;

    let _t = crate::trace::op("merge");
    let start = std::time::Instant::now();
    let k = dst.config().slots();
    // `dst` and `src` are distinct objects (`&mut` + `&`), so the
    // mutable view of one and the shared view of the other coexist:
    // merge straight out of `src` with zero transient allocation.
    let (src_sketches, src_degrees, src_edges) = src.parts();
    let (dst_sketches, dst_degrees, dst_edges) = dst.parts_mut();
    for (&v, s) in src_sketches {
        dst_sketches
            .entry(v)
            .or_insert_with(|| VertexSketch::new(k))
            .merge(s);
    }
    for (&v, &d) in src_degrees {
        *dst_degrees.entry(v).or_insert(0) += d;
    }
    *dst_edges += src_edges;
    let m = crate::metrics::global();
    m.merge_ops.incr();
    m.merge_latency.observe(start);
    Ok(())
}

/// Joins `src` into `dst` as two states of the **same** stream — the
/// state-based-CRDT join replication anti-entropy uses.
///
/// Slots are min-registers, so the component-wise `min` is a true
/// idempotent join. Degree counters and the edge count are *not*
/// idempotent, and must never be blindly re-added when the two states
/// observed overlapping prefixes of one stream; here they are joined by
/// `max`. That is exact under the replication invariant: a replica
/// applies each primary seq at most once (seq-deduplicated), so its
/// per-vertex degrees and edge count are each ≤ the primary's, and
/// `max` recovers exactly the more-advanced state's counters.
///
/// `merge_join` is idempotent (`join(a, a) == a`), commutative, and
/// monotone; self-join and repeated join never double-count.
///
/// # Errors
/// Fails without modifying `dst` if the configurations are incompatible.
pub fn merge_join(dst: &mut SketchStore, src: &SketchStore) -> Result<(), MergeError> {
    check_compat(dst, src)?;

    let _t = crate::trace::op("merge_join");
    let start = std::time::Instant::now();
    let k = dst.config().slots();
    let (src_sketches, src_degrees, src_edges) = src.parts();
    let (dst_sketches, dst_degrees, dst_edges) = dst.parts_mut();
    for (&v, s) in src_sketches {
        dst_sketches
            .entry(v)
            .or_insert_with(|| VertexSketch::new(k))
            .merge(s);
    }
    for (&v, &d) in src_degrees {
        let slot = dst_degrees.entry(v).or_insert(0);
        *slot = (*slot).max(d);
    }
    *dst_edges = (*dst_edges).max(src_edges);
    let m = crate::metrics::global();
    m.merge_ops.incr();
    m.merge_latency.observe(start);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HasherBackend, SketchConfig};
    use graphstream::{BarabasiAlbert, EdgeStream};

    fn cfg() -> SketchConfig {
        SketchConfig::with_slots(64).seed(7)
    }

    #[test]
    fn merged_equals_single_pass() {
        let stream: Vec<_> = BarabasiAlbert::new(300, 3, 2).edges().collect();
        let (first, second) = stream.split_at(stream.len() / 2);

        let mut a = SketchStore::new(cfg());
        a.insert_stream(first.iter().copied());
        let mut b = SketchStore::new(cfg());
        b.insert_stream(second.iter().copied());

        let mut whole = SketchStore::new(cfg());
        whole.insert_stream(stream.iter().copied());

        merge_into(&mut a, &b).unwrap();

        assert_eq!(a.vertex_count(), whole.vertex_count());
        assert_eq!(a.edges_processed(), whole.edges_processed());
        for v in whole.vertices() {
            assert_eq!(a.degree(v), whole.degree(v), "degree mismatch at {v}");
            assert_eq!(a.sketch(v), whole.sketch(v), "sketch mismatch at {v}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = SketchStore::new(cfg());
        a.insert_stream(BarabasiAlbert::new(100, 2, 1).edges());
        let before: Vec<_> = a.vertices().map(|v| (v, a.degree(v))).collect();
        merge_into(&mut a, &SketchStore::new(cfg())).unwrap();
        for (v, d) in before {
            assert_eq!(a.degree(v), d);
        }
    }

    #[test]
    fn merge_order_does_not_matter_for_sketches() {
        let stream: Vec<_> = BarabasiAlbert::new(200, 2, 3).edges().collect();
        let (x, y) = stream.split_at(stream.len() / 3);

        let build = |edges: &[graphstream::Edge]| {
            let mut s = SketchStore::new(cfg());
            s.insert_stream(edges.iter().copied());
            s
        };
        let mut ab = build(x);
        merge_into(&mut ab, &build(y)).unwrap();
        let mut ba = build(y);
        merge_into(&mut ba, &build(x)).unwrap();
        for v in ab.vertices() {
            assert_eq!(ab.sketch(v), ba.sketch(v));
            assert_eq!(ab.degree(v), ba.degree(v));
        }
    }

    #[test]
    fn slot_mismatch_rejected() {
        let mut a = SketchStore::new(SketchConfig::with_slots(32).seed(7));
        let b = SketchStore::new(SketchConfig::with_slots(64).seed(7));
        assert_eq!(
            merge_into(&mut a, &b),
            Err(MergeError::SlotMismatch {
                left: 32,
                right: 64
            })
        );
    }

    #[test]
    fn seed_mismatch_rejected() {
        let mut a = SketchStore::new(SketchConfig::with_slots(32).seed(1));
        let b = SketchStore::new(SketchConfig::with_slots(32).seed(2));
        assert_eq!(merge_into(&mut a, &b), Err(MergeError::SeedMismatch));
    }

    #[test]
    fn backend_mismatch_rejected() {
        let mut a = SketchStore::new(SketchConfig::with_slots(32));
        let b = SketchStore::new(SketchConfig::with_slots(32).backend(HasherBackend::Tabulation));
        assert_eq!(merge_into(&mut a, &b), Err(MergeError::BackendMismatch));
    }

    #[test]
    fn join_with_self_is_identity() {
        let mut a = SketchStore::new(cfg());
        a.insert_stream(BarabasiAlbert::new(200, 3, 5).edges());
        let b = {
            let mut b = SketchStore::new(cfg());
            b.insert_stream(BarabasiAlbert::new(200, 3, 5).edges());
            b
        };
        merge_join(&mut a, &b).unwrap();
        assert_eq!(a.edges_processed(), b.edges_processed());
        for v in b.vertices() {
            assert_eq!(a.degree(v), b.degree(v), "self-join changed degree of {v}");
            assert_eq!(a.sketch(v), b.sketch(v), "self-join changed sketch of {v}");
        }
    }

    #[test]
    fn join_of_prefix_state_recovers_full_state() {
        // A replica that saw only a prefix of the stream, joined with
        // the primary's full state, must equal the primary exactly —
        // degrees via max, not sum.
        let stream: Vec<_> = BarabasiAlbert::new(250, 3, 9).edges().collect();
        let mut replica = SketchStore::new(cfg());
        replica.insert_stream(stream.iter().take(stream.len() / 3).copied());
        let mut primary = SketchStore::new(cfg());
        primary.insert_stream(stream.iter().copied());

        merge_join(&mut replica, &primary).unwrap();
        assert_eq!(replica.edges_processed(), primary.edges_processed());
        assert_eq!(replica.vertex_count(), primary.vertex_count());
        for v in primary.vertices() {
            assert_eq!(replica.degree(v), primary.degree(v), "degree at {v}");
            assert_eq!(replica.sketch(v), primary.sketch(v), "sketch at {v}");
        }
    }

    #[test]
    fn join_is_commutative_for_same_stream_states() {
        let stream: Vec<_> = BarabasiAlbert::new(150, 2, 4).edges().collect();
        let prefix = |n: usize| {
            let mut s = SketchStore::new(cfg());
            s.insert_stream(stream.iter().take(n).copied());
            s
        };
        let (short, long) = (prefix(stream.len() / 2), prefix(stream.len()));
        let mut a = prefix(stream.len() / 2);
        merge_join(&mut a, &long).unwrap();
        let mut b = prefix(stream.len());
        merge_join(&mut b, &short).unwrap();
        assert_eq!(a.edges_processed(), b.edges_processed());
        for v in a.vertices() {
            assert_eq!(a.degree(v), b.degree(v));
            assert_eq!(a.sketch(v), b.sketch(v));
        }
    }

    #[test]
    fn join_rejects_incompatible_configs_untouched() {
        let mut a = SketchStore::new(cfg());
        a.insert_stream(BarabasiAlbert::new(50, 2, 1).edges());
        let edges_before = a.edges_processed();
        let b = SketchStore::new(SketchConfig::with_slots(128).seed(7));
        assert!(matches!(
            merge_join(&mut a, &b),
            Err(MergeError::SlotMismatch { .. })
        ));
        assert_eq!(a.edges_processed(), edges_before);
        assert_eq!(
            merge_join(
                &mut a,
                &SketchStore::new(SketchConfig::with_slots(64).seed(8))
            ),
            Err(MergeError::SeedMismatch)
        );
    }

    #[test]
    fn failed_merge_leaves_dst_untouched() {
        let mut a = SketchStore::new(cfg());
        a.insert_stream(BarabasiAlbert::new(50, 2, 1).edges());
        let edges_before = a.edges_processed();
        let b = SketchStore::new(SketchConfig::with_slots(128).seed(7));
        assert!(merge_into(&mut a, &b).is_err());
        assert_eq!(a.edges_processed(), edges_before);
    }
}
