//! Sketch-store union — the distributed/parallel ingestion primitive.
//!
//! MinHash slots are min-registers, so the union of two stores built from
//! edge-disjoint sub-streams is *exactly* the store a single pass over the
//! combined stream would produce: merge slots component-wise by `min`, add
//! degree counters, add edge counts. This holds per vertex, so shards can
//! split the stream arbitrarily — by range, by hash, round-robin — as long
//! as no edge is delivered to two shards (that would double-count
//! degrees; slots themselves would still be correct).

use graphstream::VertexId;

use crate::sketch::VertexSketch;
use crate::store::SketchStore;

/// Why two stores could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// Slot counts differ.
    SlotMismatch {
        /// Slots of the destination store.
        left: usize,
        /// Slots of the source store.
        right: usize,
    },
    /// Base seeds differ — the hash families are incompatible and slot
    /// values are not comparable.
    SeedMismatch,
    /// Hasher backends differ.
    BackendMismatch,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::SlotMismatch { left, right } => {
                write!(f, "cannot merge sketches of {left} and {right} slots")
            }
            MergeError::SeedMismatch => write!(f, "cannot merge stores with different seeds"),
            MergeError::BackendMismatch => {
                write!(f, "cannot merge stores with different hasher backends")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Merges `src` into `dst` (neighborhood union per vertex).
///
/// # Errors
/// Fails without modifying `dst` if the configurations are incompatible.
pub fn merge_into(dst: &mut SketchStore, src: &SketchStore) -> Result<(), MergeError> {
    let (dc, sc) = (dst.config(), src.config());
    if dc.slots() != sc.slots() {
        return Err(MergeError::SlotMismatch {
            left: dc.slots(),
            right: sc.slots(),
        });
    }
    if dc.base_seed() != sc.base_seed() {
        return Err(MergeError::SeedMismatch);
    }
    if dc.hasher_backend() != sc.hasher_backend() {
        return Err(MergeError::BackendMismatch);
    }

    let _t = crate::trace::op("merge");
    let start = std::time::Instant::now();
    let k = dc.slots();
    let (src_sketches, src_degrees, src_edges) = src.parts();
    // Clone out of src first so we never hold two mutable views.
    let src_items: Vec<(VertexId, VertexSketch)> =
        src_sketches.iter().map(|(&v, s)| (v, s.clone())).collect();
    let src_deg: Vec<(VertexId, u64)> = src_degrees.iter().map(|(&v, &d)| (v, d)).collect();

    let (dst_sketches, dst_degrees, dst_edges) = dst.parts_mut();
    for (v, s) in src_items {
        dst_sketches
            .entry(v)
            .or_insert_with(|| VertexSketch::new(k))
            .merge(&s);
    }
    for (v, d) in src_deg {
        *dst_degrees.entry(v).or_insert(0) += d;
    }
    *dst_edges += src_edges;
    let m = crate::metrics::global();
    m.merge_ops.incr();
    m.merge_latency.observe(start);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HasherBackend, SketchConfig};
    use graphstream::{BarabasiAlbert, EdgeStream};

    fn cfg() -> SketchConfig {
        SketchConfig::with_slots(64).seed(7)
    }

    #[test]
    fn merged_equals_single_pass() {
        let stream: Vec<_> = BarabasiAlbert::new(300, 3, 2).edges().collect();
        let (first, second) = stream.split_at(stream.len() / 2);

        let mut a = SketchStore::new(cfg());
        a.insert_stream(first.iter().copied());
        let mut b = SketchStore::new(cfg());
        b.insert_stream(second.iter().copied());

        let mut whole = SketchStore::new(cfg());
        whole.insert_stream(stream.iter().copied());

        merge_into(&mut a, &b).unwrap();

        assert_eq!(a.vertex_count(), whole.vertex_count());
        assert_eq!(a.edges_processed(), whole.edges_processed());
        for v in whole.vertices() {
            assert_eq!(a.degree(v), whole.degree(v), "degree mismatch at {v}");
            assert_eq!(a.sketch(v), whole.sketch(v), "sketch mismatch at {v}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = SketchStore::new(cfg());
        a.insert_stream(BarabasiAlbert::new(100, 2, 1).edges());
        let before: Vec<_> = a.vertices().map(|v| (v, a.degree(v))).collect();
        merge_into(&mut a, &SketchStore::new(cfg())).unwrap();
        for (v, d) in before {
            assert_eq!(a.degree(v), d);
        }
    }

    #[test]
    fn merge_order_does_not_matter_for_sketches() {
        let stream: Vec<_> = BarabasiAlbert::new(200, 2, 3).edges().collect();
        let (x, y) = stream.split_at(stream.len() / 3);

        let build = |edges: &[graphstream::Edge]| {
            let mut s = SketchStore::new(cfg());
            s.insert_stream(edges.iter().copied());
            s
        };
        let mut ab = build(x);
        merge_into(&mut ab, &build(y)).unwrap();
        let mut ba = build(y);
        merge_into(&mut ba, &build(x)).unwrap();
        for v in ab.vertices() {
            assert_eq!(ab.sketch(v), ba.sketch(v));
            assert_eq!(ab.degree(v), ba.degree(v));
        }
    }

    #[test]
    fn slot_mismatch_rejected() {
        let mut a = SketchStore::new(SketchConfig::with_slots(32).seed(7));
        let b = SketchStore::new(SketchConfig::with_slots(64).seed(7));
        assert_eq!(
            merge_into(&mut a, &b),
            Err(MergeError::SlotMismatch {
                left: 32,
                right: 64
            })
        );
    }

    #[test]
    fn seed_mismatch_rejected() {
        let mut a = SketchStore::new(SketchConfig::with_slots(32).seed(1));
        let b = SketchStore::new(SketchConfig::with_slots(32).seed(2));
        assert_eq!(merge_into(&mut a, &b), Err(MergeError::SeedMismatch));
    }

    #[test]
    fn backend_mismatch_rejected() {
        let mut a = SketchStore::new(SketchConfig::with_slots(32));
        let b = SketchStore::new(SketchConfig::with_slots(32).backend(HasherBackend::Tabulation));
        assert_eq!(merge_into(&mut a, &b), Err(MergeError::BackendMismatch));
    }

    #[test]
    fn failed_merge_leaves_dst_untouched() {
        let mut a = SketchStore::new(cfg());
        a.insert_stream(BarabasiAlbert::new(50, 2, 1).edges());
        let edges_before = a.edges_processed();
        let b = SketchStore::new(SketchConfig::with_slots(128).seed(7));
        assert!(merge_into(&mut a, &b).is_err());
        assert_eq!(a.edges_processed(), edges_before);
    }
}
