//! b-bit compressed sketch replicas (Li–König b-bit minwise hashing).
//!
//! A serving replica doesn't need the full 16-byte slots: keeping only
//! the lowest `b` bits of each slot minimum preserves Jaccard
//! estimation, because two *equal* minima always agree on their low bits
//! while two *different* minima collide only with probability
//! `δ = 2^(−b)`. Matching fractions therefore satisfy
//!
//! ```text
//! E[M/k] = J + (1 − J)·δ      ⇒      Ĵ = (M/k − δ) / (1 − δ)
//! ```
//!
//! an unbiased estimator with variance inflated by `1/(1−δ)²` — at
//! `b = 8` that's under 0.8%. Memory drops from 16 bytes to `b/8` bytes
//! per slot (64× at `b = 2`), which is the classic accuracy-per-byte
//! win for shipping sketches to read replicas or over the network.
//!
//! The compressed form is **frozen**: min-registers cannot be updated
//! once truncated (a new neighbor's full hash can't be compared against
//! a truncated minimum), and the argmin ids are gone, so only Jaccard /
//! CN / cosine / overlap are answerable — not AA/RA (which need the
//! matched argmins). The builder keeps the full [`SketchStore`]; call
//! [`CompressedStore::from_store`] at replication points.

use serde::{Deserialize, Serialize};

use std::collections::HashMap;

use graphstream::VertexId;

use crate::estimators;
use crate::store::SketchStore;

/// A frozen, bit-packed b-bit replica of a [`SketchStore`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedStore {
    bits: u8,
    slots: usize,
    /// Per vertex: ⌈slots·bits/8⌉ bytes of packed low bits.
    sketches: HashMap<VertexId, Vec<u8>>,
    degrees: HashMap<VertexId, u64>,
}

impl CompressedStore {
    /// Compresses `store` down to `bits` bits per slot.
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 16`.
    #[must_use]
    pub fn from_store(store: &SketchStore, bits: u8) -> Self {
        assert!((1..=16).contains(&bits), "bits {bits} outside 1..=16");
        let slots = store.config().slots();
        let mut sketches = HashMap::new();
        let mut degrees = HashMap::new();
        for v in store.vertices() {
            let sketch = store.sketch(v).expect("vertex listed by the store");
            let mut packed = vec![0u8; (slots * bits as usize).div_ceil(8)];
            for (i, slot) in sketch.slots().iter().enumerate() {
                let value = slot.hash & ((1u64 << bits) - 1);
                write_bits(&mut packed, i * bits as usize, bits, value as u16);
            }
            sketches.insert(v, packed);
            degrees.insert(v, store.degree(v));
        }
        Self {
            bits,
            slots,
            sketches,
            degrees,
        }
    }

    /// Bits kept per slot.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Slots per vertex.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Whether `v` is present in the replica.
    #[must_use]
    pub fn contains(&self, v: VertexId) -> bool {
        self.sketches.contains_key(&v)
    }

    /// Degree counter of `v` (copied from the builder; 0 if unseen).
    #[must_use]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.degrees.get(&v).copied().unwrap_or(0)
    }

    /// Collision-corrected Jaccard estimate, `None` if either vertex is
    /// absent from the replica.
    #[must_use]
    pub fn jaccard(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (su, sv) = (self.sketches.get(&u)?, self.sketches.get(&v)?);
        let b = self.bits;
        let mut matches = 0usize;
        for i in 0..self.slots {
            let a = read_bits(su, i * b as usize, b);
            let c = read_bits(sv, i * b as usize, b);
            matches += usize::from(a == c);
        }
        let delta = 2f64.powi(-i32::from(b));
        let raw = (matches as f64 / self.slots as f64 - delta) / (1.0 - delta);
        Some(raw.clamp(0.0, 1.0))
    }

    /// CN estimate via the usual inversion with replica degrees.
    #[must_use]
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let j = self.jaccard(u, v)?;
        Some(estimators::cn_from_jaccard(
            j,
            self.degree(u),
            self.degree(v),
        ))
    }

    /// Approximate resident bytes (the whole point of the replica).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let packed: usize = self.sketches.values().map(Vec::len).sum();
        packed
            + self.sketches.capacity() * (size_of::<(VertexId, Vec<u8>)>() + size_of::<u64>())
            + self.degrees.capacity() * (size_of::<(VertexId, u64)>() + size_of::<u64>())
            + size_of::<Self>()
    }
}

/// Writes `bits` low bits of `value` at bit offset `offset`.
fn write_bits(buf: &mut [u8], offset: usize, bits: u8, value: u16) {
    for i in 0..bits as usize {
        let bit = (value >> i) & 1;
        let pos = offset + i;
        if bit == 1 {
            buf[pos / 8] |= 1 << (pos % 8);
        }
    }
}

/// Reads `bits` bits at bit offset `offset`.
fn read_bits(buf: &[u8], offset: usize, bits: u8) -> u16 {
    let mut value = 0u16;
    for i in 0..bits as usize {
        let pos = offset + i;
        let bit = (buf[pos / 8] >> (pos % 8)) & 1;
        value |= u16::from(bit) << i;
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SketchConfig;
    use graphstream::{BarabasiAlbert, EdgeStream};

    fn built_store(k: usize) -> SketchStore {
        let mut s = SketchStore::new(SketchConfig::with_slots(k).seed(9));
        s.insert_stream(BarabasiAlbert::new(400, 4, 3).edges());
        s
    }

    #[test]
    fn bit_packing_roundtrips() {
        for bits in [1u8, 2, 4, 7, 8, 13, 16] {
            let n = 50usize;
            let mut buf = vec![0u8; (n * bits as usize).div_ceil(8)];
            let mask = ((1u32 << bits) - 1) as u16;
            let values: Vec<u16> = (0..n as u16)
                .map(|i| (u32::from(i).wrapping_mul(2_654_435_761) as u16) & mask)
                .collect();
            for (i, &v) in values.iter().enumerate() {
                write_bits(&mut buf, i * bits as usize, bits, v);
            }
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(
                    read_bits(&buf, i * bits as usize, bits),
                    v,
                    "bits {bits} at {i}"
                );
            }
        }
    }

    #[test]
    fn high_b_matches_full_store_closely() {
        let store = built_store(512);
        let replica = CompressedStore::from_store(&store, 16);
        let mut max_diff = 0.0f64;
        for u in 0..40u64 {
            for v in (u + 1)..40u64 {
                let (u, v) = (VertexId(u), VertexId(v));
                let full = store.jaccard(u, v).unwrap();
                let comp = replica.jaccard(u, v).unwrap();
                max_diff = max_diff.max((full - comp).abs());
            }
        }
        // δ = 2^-16: correction noise is negligible.
        assert!(max_diff < 0.01, "b = 16 diverged: {max_diff}");
    }

    #[test]
    fn estimator_unbiased_on_known_overlap() {
        // Identical neighborhoods → J = 1 at every b; disjoint → ~0 even
        // though low bits collide at rate 2^-b (the correction removes it).
        for b in [1u8, 2, 4, 8] {
            let mut s = SketchStore::new(SketchConfig::with_slots(512).seed(1));
            for w in 0..30u64 {
                s.insert_edge(VertexId(0), VertexId(100 + w));
                s.insert_edge(VertexId(1), VertexId(100 + w));
                s.insert_edge(VertexId(2), VertexId(500 + w));
            }
            let replica = CompressedStore::from_store(&s, b);
            let twin = replica.jaccard(VertexId(0), VertexId(1)).unwrap();
            assert!(twin > 0.98, "b = {b}: twin J {twin}");
            let disjoint = replica.jaccard(VertexId(0), VertexId(2)).unwrap();
            assert!(disjoint < 0.15, "b = {b}: disjoint J {disjoint}");
        }
    }

    #[test]
    fn memory_shrinks_with_b() {
        let store = built_store(256);
        let full = store.memory_bytes();
        let b8 = CompressedStore::from_store(&store, 8).memory_bytes();
        let b2 = CompressedStore::from_store(&store, 2).memory_bytes();
        assert!(b8 < full / 5, "b=8 replica {b8} vs full {full}");
        assert!(b2 < b8, "b=2 ({b2}) should be smaller than b=8 ({b8})");
    }

    #[test]
    fn accuracy_memory_frontier_is_monotone() {
        // At fixed k, growing b improves accuracy (averaged over pairs).
        let store = built_store(256);
        let mae = |b: u8| {
            let replica = CompressedStore::from_store(&store, b);
            let mut total = 0.0;
            let mut n = 0;
            for u in 0..40u64 {
                for v in (u + 1)..40u64 {
                    let (u, v) = (VertexId(u), VertexId(v));
                    total += (store.jaccard(u, v).unwrap() - replica.jaccard(u, v).unwrap()).abs();
                    n += 1;
                }
            }
            total / f64::from(n)
        };
        assert!(
            mae(8) < mae(1),
            "b=8 ({}) should beat b=1 ({})",
            mae(8),
            mae(1)
        );
    }

    #[test]
    fn cn_estimate_works_from_replica() {
        let mut s = SketchStore::new(SketchConfig::with_slots(512).seed(2));
        for w in 0..20u64 {
            s.insert_edge(VertexId(0), VertexId(100 + w));
            s.insert_edge(VertexId(1), VertexId(100 + w));
        }
        let replica = CompressedStore::from_store(&s, 8);
        let cn = replica.common_neighbors(VertexId(0), VertexId(1)).unwrap();
        assert!((cn - 20.0).abs() < 2.0, "cn {cn}");
    }

    #[test]
    fn absent_vertices_give_none() {
        let replica = CompressedStore::from_store(&built_store(16), 4);
        assert_eq!(replica.jaccard(VertexId(0), VertexId(99_999)), None);
        assert!(!replica.contains(VertexId(99_999)));
    }

    #[test]
    fn serde_roundtrip() {
        let replica = CompressedStore::from_store(&built_store(16), 4);
        let json = serde_json::to_string(&replica).unwrap();
        assert_eq!(
            replica,
            serde_json::from_str::<CompressedStore>(&json).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_bits_rejected() {
        let _ = CompressedStore::from_store(&built_store(8), 0);
    }
}
