//! Open-loop load generation: deterministic workload synthesis and the
//! coordinated-omission-safe `streamlink.loadreport.v1` artifact.
//!
//! The serving north-star (ROADMAP item 2, the multi-core serve path)
//! needs *measurement before mechanism*: any rearchitecture must be
//! judged by a workload that does not lie about latency. Two classic
//! lies this module is built to avoid:
//!
//! 1. **Closed-loop back-pressure.** A generator that waits for each
//!    response before issuing the next request slows down exactly when
//!    the server does, silently thinning the arrival rate during the
//!    very stalls it should be measuring. The generator here is
//!    **open-loop**: every operation has an *intended start time* fixed
//!    by the offered rate alone ([`intended_start_ns`]), independent of
//!    how the server is coping.
//! 2. **Coordinated omission.** Measuring latency from the moment the
//!    request was *actually sent* (after queueing behind a stalled
//!    predecessor) hides the stall. Latency here is defined from the
//!    *intended* start time — if the server freezes for a second, every
//!    operation scheduled inside that second reports ≥ its share of the
//!    freeze, exactly as a real client arrival process would experience
//!    it (the HdrHistogram methodology).
//!
//! Everything is deterministic under a fixed seed: the PRNG is
//! [`SplitMix64`], vertex choice is Zipf-skewed ([`ZipfPicker`], hot
//! vertices get most of the traffic, as in real graph streams), and the
//! INSERT/JACCARD/DEGREE/EXPLAIN ratio is a [`MixSpec`]. Two
//! [`OpStream`]s built from the same [`WorkloadSpec`] and stream id
//! yield byte-identical command sequences, so a regression can be
//! replayed exactly.
//!
//! The run's verdict is a [`LoadReport`], rendered as
//! `streamlink.loadreport.v1` JSON — the artifact format CI uploads and
//! the golden-schema test pins. Percentiles come from the same
//! power-of-two [`HistogramSummary`] the rest of the registry uses, so
//! a load report and a `/metrics` scrape are directly comparable.

use crate::metrics::HistogramSummary;

/// Default operation mix: a write-heavy graph-stream workload with a
/// read tail (60% INSERT, 25% JACCARD, 10% DEGREE, 5% EXPLAIN).
pub const DEFAULT_MIX: MixSpec = MixSpec {
    insert: 60,
    jaccard: 25,
    degree: 10,
    explain: 5,
};

/// Default Zipf skew exponent (`s = 1.1`, mildly heavy-tailed — the
/// shape reported for follower graphs and web link streams).
pub const DEFAULT_ZIPF_S: f64 = 1.1;

/// A tiny, fast, seedable PRNG (Steele et al.'s SplitMix64).
///
/// Deterministic, allocation-free, and good enough for workload
/// synthesis; *not* cryptographic. Distinct streams should be derived
/// via [`SplitMix64::fork`] so per-connection sequences decorrelate.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, including 0).
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw from `[0, n)`; `n` must be non-zero.
    #[inline]
    pub fn gen_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "gen_below(0)");
        // Lemire's multiply-shift; the tiny modulo bias is irrelevant
        // for workload synthesis.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A decorrelated child generator for stream `id` — used to give
    /// every client connection its own deterministic sequence.
    #[must_use]
    pub fn fork(&self, id: u64) -> Self {
        let mut parent = SplitMix64::new(self.state ^ id.wrapping_mul(0xA076_1D64_78BD_642F));
        // Burn one output so forks of adjacent ids diverge immediately.
        let seed = parent.next_u64();
        SplitMix64::new(seed)
    }
}

/// Zipf-distributed rank picker over `0..n`: rank `r` is drawn with
/// probability proportional to `1 / (r+1)^s`.
///
/// Built once per stream from a cumulative table (`O(n)` memory,
/// `O(log n)` per draw) — exact, deterministic, and fast enough for the
/// vertex-universe sizes a load test uses.
#[derive(Debug, Clone)]
pub struct ZipfPicker {
    cdf: Vec<f64>,
}

impl ZipfPicker {
    /// A picker over `0..n` with exponent `s ≥ 0` (`s = 0` is uniform).
    /// `n` is clamped to at least 1.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        let n = usize::try_from(n.max(1)).unwrap_or(usize::MAX);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        ZipfPicker { cdf }
    }

    /// Number of ranks in the universe.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Whether the universe is empty (never true — `new` clamps to 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n` using `rng`.
    #[must_use]
    pub fn pick(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// The operation kinds a mixed workload issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `INSERT u v` — the write path (journal + sketch fold).
    Insert,
    /// `JACCARD u v` — the similarity read path.
    Jaccard,
    /// `DEGREE u` — the cheapest read (one counter lookup).
    Degree,
    /// `EXPLAIN JACCARD u v` — the estimator-provenance read path.
    Explain,
}

impl OpKind {
    /// Stable lowercase name, used as the mix key in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Insert => "insert",
            OpKind::Jaccard => "jaccard",
            OpKind::Degree => "degree",
            OpKind::Explain => "explain",
        }
    }
}

/// Integer weights for the four operation kinds, e.g. `60/25/10/5`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixSpec {
    /// Weight of `INSERT`.
    pub insert: u32,
    /// Weight of `JACCARD`.
    pub jaccard: u32,
    /// Weight of `DEGREE`.
    pub degree: u32,
    /// Weight of `EXPLAIN`.
    pub explain: u32,
}

impl MixSpec {
    /// Parses a `insert/jaccard/degree/explain` weight string like
    /// `"60/25/10/5"`. All four fields are required; the total must be
    /// non-zero.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let parts: Vec<&str> = raw.split('/').collect();
        if parts.len() != 4 {
            return Err(format!(
                "mix must be insert/jaccard/degree/explain (e.g. 60/25/10/5), got {raw:?}"
            ));
        }
        let mut w = [0u32; 4];
        for (slot, part) in w.iter_mut().zip(&parts) {
            *slot = part
                .parse::<u32>()
                .map_err(|_| format!("mix weight {part:?} is not a non-negative integer"))?;
        }
        let spec = MixSpec {
            insert: w[0],
            jaccard: w[1],
            degree: w[2],
            explain: w[3],
        };
        if spec.total() == 0 {
            return Err("mix weights must not all be zero".into());
        }
        Ok(spec)
    }

    /// Sum of all weights.
    #[must_use]
    pub fn total(self) -> u64 {
        u64::from(self.insert)
            + u64::from(self.jaccard)
            + u64::from(self.degree)
            + u64::from(self.explain)
    }

    /// Draws one [`OpKind`] according to the weights.
    #[must_use]
    pub fn pick(self, rng: &mut SplitMix64) -> OpKind {
        let mut roll = rng.gen_below(self.total());
        for (kind, weight) in [
            (OpKind::Insert, u64::from(self.insert)),
            (OpKind::Jaccard, u64::from(self.jaccard)),
            (OpKind::Degree, u64::from(self.degree)),
        ] {
            if roll < weight {
                return kind;
            }
            roll -= weight;
        }
        OpKind::Explain
    }
}

/// One generated operation, renderable as a protocol command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// What to do.
    pub kind: OpKind,
    /// First vertex (always used).
    pub u: u64,
    /// Second vertex (ignored by `DEGREE`).
    pub v: u64,
}

impl Op {
    /// The text-protocol command line for this operation (no newline).
    #[must_use]
    pub fn command_line(&self) -> String {
        match self.kind {
            OpKind::Insert => format!("INSERT {} {}", self.u, self.v),
            OpKind::Jaccard => format!("JACCARD {} {}", self.u, self.v),
            OpKind::Degree => format!("DEGREE {}", self.u),
            OpKind::Explain => format!("EXPLAIN JACCARD {} {}", self.u, self.v),
        }
    }
}

/// Everything that determines a workload, minus the transport: fix the
/// spec and a stream id, and the operation sequence is fixed.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Master seed; per-connection streams fork from it.
    pub seed: u64,
    /// Vertex-universe size (ids are `0..vertices`).
    pub vertices: u64,
    /// Zipf skew exponent for vertex choice (0 = uniform).
    pub zipf_s: f64,
    /// Operation-kind weights.
    pub mix: MixSpec,
}

impl WorkloadSpec {
    /// A spec with the default mix and skew over `vertices` ids.
    #[must_use]
    pub fn new(seed: u64, vertices: u64) -> Self {
        WorkloadSpec {
            seed,
            vertices: vertices.max(2),
            zipf_s: DEFAULT_ZIPF_S,
            mix: DEFAULT_MIX,
        }
    }
}

/// A deterministic, endless iterator of [`Op`]s for one client stream.
#[derive(Debug, Clone)]
pub struct OpStream {
    rng: SplitMix64,
    zipf: ZipfPicker,
    mix: MixSpec,
    vertices: u64,
}

impl OpStream {
    /// The operation stream for connection `stream_id` of `spec`.
    #[must_use]
    pub fn new(spec: &WorkloadSpec, stream_id: u64) -> Self {
        OpStream {
            rng: SplitMix64::new(spec.seed).fork(stream_id),
            zipf: ZipfPicker::new(spec.vertices, spec.zipf_s),
            mix: spec.mix,
            vertices: spec.vertices.max(2),
        }
    }
}

impl Iterator for OpStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let kind = self.mix.pick(&mut self.rng);
        let u = self.zipf.pick(&mut self.rng);
        let mut v = self.zipf.pick(&mut self.rng);
        if v == u {
            // Self-loops are rejected by the store; nudge to a neighbor
            // rank deterministically.
            v = (v + 1) % self.vertices;
        }
        Some(Op { kind, u, v })
    }
}

/// Nanosecond offset (from the run's start instant) at which operation
/// `index` of an open-loop schedule at `rate_per_sec` is *intended* to
/// start. This is the coordinated-omission anchor: latency is measured
/// from this instant, never from the actual (possibly delayed) send.
#[must_use]
pub fn intended_start_ns(index: u64, rate_per_sec: u64) -> u64 {
    let rate = rate_per_sec.max(1);
    u64::try_from(u128::from(index) * 1_000_000_000u128 / u128::from(rate)).unwrap_or(u64::MAX)
}

fn escape_json(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The machine-readable verdict of one load-generation run — schema
/// `streamlink.loadreport.v1`, the artifact CI uploads and dashboards
/// ingest. Rendering is hand-rolled with a stable field order so the
/// golden-schema test can pin it byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Version of the binary that produced the report (git describe or
    /// crate version).
    pub version: String,
    /// Master workload seed (reports are replayable).
    pub seed: u64,
    /// Client connections driven.
    pub conns: u64,
    /// Wall-clock run duration in milliseconds.
    pub duration_ms: u64,
    /// Offered (target) rate, operations per second across all
    /// connections.
    pub offered_ops_per_sec: u64,
    /// Achieved rate: completed operations over wall-clock duration.
    pub achieved_ops_per_sec: f64,
    /// Operations scheduled (attempted) by the open-loop pacer.
    pub ops_attempted: u64,
    /// Operations answered with a success response.
    pub ops_ok: u64,
    /// Operations answered with a non-shed `ERR`.
    pub ops_err: u64,
    /// Operations refused with `ERR busy` (server shed).
    pub ops_shed: u64,
    /// Completed `INSERT`s.
    pub mix_insert: u64,
    /// Completed `JACCARD`s.
    pub mix_jaccard: u64,
    /// Completed `DEGREE`s.
    pub mix_degree: u64,
    /// Completed `EXPLAIN`s.
    pub mix_explain: u64,
    /// Intended-start-time latency distribution (coordinated-omission
    /// safe), from the same power-of-two buckets as the registry.
    pub latency: HistogramSummary,
    /// The p99 SLO limit in milliseconds (0 = no SLO was set).
    pub slo_p99_ms: u64,
    /// Whether the run met the SLO (always true when no SLO was set).
    pub slo_pass: bool,
}

impl LoadReport {
    /// Evaluates the SLO verdict from the latency summary: passes when
    /// no SLO is set, or when `p99 ≤ slo_p99_ms`.
    #[must_use]
    pub fn slo_verdict(slo_p99_ms: u64, latency: &HistogramSummary) -> bool {
        slo_p99_ms == 0 || latency.p99_ns <= slo_p99_ms.saturating_mul(1_000_000)
    }

    /// Process exit code for scripts/CI: 0 on SLO pass, 1 on breach.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        u8::from(!self.slo_pass)
    }

    /// Renders the report as one `streamlink.loadreport.v1` JSON object
    /// (no trailing newline). Field order is stable and golden-pinned.
    #[must_use]
    pub fn render_json(&self) -> String {
        let l = &self.latency;
        format!(
            "{{\"schema\":\"streamlink.loadreport.v1\",\"version\":\"{}\",\"seed\":{},\
             \"conns\":{},\"duration_ms\":{},\"offered_ops_per_sec\":{},\
             \"achieved_ops_per_sec\":{:.3},\
             \"ops\":{{\"attempted\":{},\"ok\":{},\"err\":{},\"shed\":{}}},\
             \"mix\":{{\"insert\":{},\"jaccard\":{},\"degree\":{},\"explain\":{}}},\
             \"latency_ns\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\
             \"p99\":{},\"p999\":{}}},\
             \"slo\":{{\"p99_ms\":{},\"pass\":{}}}}}",
            escape_json(&self.version),
            self.seed,
            self.conns,
            self.duration_ms,
            self.offered_ops_per_sec,
            self.achieved_ops_per_sec,
            self.ops_attempted,
            self.ops_ok,
            self.ops_err,
            self.ops_shed,
            self.mix_insert,
            self.mix_jaccard,
            self.mix_degree,
            self.mix_explain,
            l.count,
            l.sum_ns,
            l.max_ns,
            l.p50_ns,
            l.p95_ns,
            l.p99_ns,
            l.p999_ns,
            self.slo_p99_ms,
            self.slo_pass,
        )
    }

    /// Parses a `streamlink.loadreport.v1` JSON object back into a
    /// report. Bucket counts are not part of the wire format, so the
    /// parsed `latency.buckets` array is zeroed.
    pub fn parse_json(raw: &str) -> Result<Self, String> {
        let v: serde_json::Value =
            serde_json::from_str(raw).map_err(|e| format!("invalid JSON: {e}"))?;
        if v.get("schema").and_then(serde_json::Value::as_str) != Some("streamlink.loadreport.v1") {
            return Err("not a streamlink.loadreport.v1 object".into());
        }
        let field = |obj: &serde_json::Value, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(serde_json::Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        };
        let section = |key: &str| -> Result<serde_json::Value, String> {
            v.get(key)
                .cloned()
                .ok_or_else(|| format!("missing section {key:?}"))
        };
        let ops = section("ops")?;
        let mix = section("mix")?;
        let lat = section("latency_ns")?;
        let slo = section("slo")?;
        let latency = HistogramSummary {
            count: field(&lat, "count")?,
            sum_ns: field(&lat, "sum")?,
            max_ns: field(&lat, "max")?,
            p50_ns: field(&lat, "p50")?,
            p95_ns: field(&lat, "p95")?,
            p99_ns: field(&lat, "p99")?,
            p999_ns: field(&lat, "p999")?,
            buckets: [0; crate::metrics::HISTOGRAM_BUCKETS],
        };
        Ok(LoadReport {
            version: v
                .get("version")
                .and_then(serde_json::Value::as_str)
                .ok_or("missing field \"version\"")?
                .to_string(),
            seed: field(&v, "seed")?,
            conns: field(&v, "conns")?,
            duration_ms: field(&v, "duration_ms")?,
            offered_ops_per_sec: field(&v, "offered_ops_per_sec")?,
            achieved_ops_per_sec: v
                .get("achieved_ops_per_sec")
                .and_then(serde_json::Value::as_f64)
                .ok_or("missing field \"achieved_ops_per_sec\"")?,
            ops_attempted: field(&ops, "attempted")?,
            ops_ok: field(&ops, "ok")?,
            ops_err: field(&ops, "err")?,
            ops_shed: field(&ops, "shed")?,
            mix_insert: field(&mix, "insert")?,
            mix_jaccard: field(&mix, "jaccard")?,
            mix_degree: field(&mix, "degree")?,
            mix_explain: field(&mix, "explain")?,
            latency,
            slo_p99_ms: field(&slo, "p99_ms")?,
            slo_pass: match slo.get("pass") {
                Some(serde_json::Value::Bool(b)) => *b,
                _ => return Err("missing field \"pass\"".into()),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_forks_decorrelate() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let root = SplitMix64::new(42);
        let mut f0 = root.fork(0);
        let mut f1 = root.fork(1);
        let same = (0..64).filter(|_| f0.next_u64() == f1.next_u64()).count();
        assert_eq!(same, 0, "adjacent forks must diverge immediately");
    }

    #[test]
    fn next_f64_stays_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_below_is_bounded() {
        let mut rng = SplitMix64::new(9);
        for n in [1u64, 2, 3, 10, 1_000_000] {
            for _ in 0..200 {
                assert!(rng.gen_below(n) < n);
            }
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let picker = ZipfPicker::new(1_000, 1.1);
        let mut rng = SplitMix64::new(0xDEAD);
        let mut head = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            if picker.pick(&mut rng) < 10 {
                head += 1;
            }
        }
        // Under s=1.1 the top-10 of 1000 ranks carry ~40% of mass; under
        // uniform they'd carry 1%. Assert well above uniform.
        assert!(
            head > draws / 5,
            "Zipf head too light: {head}/{draws} draws in the top 10 ranks"
        );
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let picker = ZipfPicker::new(100, 0.0);
        let mut rng = SplitMix64::new(3);
        let mut head = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            if picker.pick(&mut rng) < 10 {
                head += 1;
            }
        }
        let frac = head as f64 / draws as f64;
        assert!((0.05..0.15).contains(&frac), "uniform head fraction {frac}");
    }

    #[test]
    fn mix_parse_accepts_and_rejects() {
        assert_eq!(MixSpec::parse("60/25/10/5").unwrap(), DEFAULT_MIX);
        assert_eq!(
            MixSpec::parse("1/0/0/0").unwrap(),
            MixSpec {
                insert: 1,
                jaccard: 0,
                degree: 0,
                explain: 0
            }
        );
        assert!(MixSpec::parse("60/25/10").is_err());
        assert!(MixSpec::parse("a/b/c/d").is_err());
        assert!(MixSpec::parse("0/0/0/0").is_err());
        assert!(MixSpec::parse("-1/2/3/4").is_err());
    }

    #[test]
    fn mix_pick_respects_weights() {
        let mix = MixSpec::parse("50/50/0/0").unwrap();
        let mut rng = SplitMix64::new(11);
        let mut inserts = 0u64;
        for _ in 0..10_000 {
            match mix.pick(&mut rng) {
                OpKind::Insert => inserts += 1,
                OpKind::Jaccard => {}
                other => panic!("zero-weight kind drawn: {other:?}"),
            }
        }
        assert!((4_000..6_000).contains(&inserts), "{inserts}");
    }

    #[test]
    fn op_streams_are_deterministic_per_seed_and_stream() {
        let spec = WorkloadSpec::new(0x5EED, 10_000);
        let a: Vec<Op> = OpStream::new(&spec, 3).take(500).collect();
        let b: Vec<Op> = OpStream::new(&spec, 3).take(500).collect();
        assert_eq!(a, b, "same seed + stream id must replay identically");
        let c: Vec<Op> = OpStream::new(&spec, 4).take(500).collect();
        assert_ne!(a, c, "different stream ids must differ");
        let other = WorkloadSpec::new(0x5EED + 1, 10_000);
        let d: Vec<Op> = OpStream::new(&other, 3).take(500).collect();
        assert_ne!(a, d, "different seeds must differ");
    }

    #[test]
    fn ops_never_self_loop_and_stay_in_universe() {
        let spec = WorkloadSpec::new(1, 50);
        for op in OpStream::new(&spec, 0).take(5_000) {
            assert!(op.u < 50 && op.v < 50, "{op:?}");
            assert_ne!(op.u, op.v, "self-loop generated: {op:?}");
        }
    }

    #[test]
    fn command_lines_match_the_protocol_grammar() {
        let mk = |kind, u, v| Op { kind, u, v }.command_line();
        assert_eq!(mk(OpKind::Insert, 3, 9), "INSERT 3 9");
        assert_eq!(mk(OpKind::Jaccard, 3, 9), "JACCARD 3 9");
        assert_eq!(mk(OpKind::Degree, 3, 9), "DEGREE 3");
        assert_eq!(mk(OpKind::Explain, 3, 9), "EXPLAIN JACCARD 3 9");
    }

    #[test]
    fn intended_starts_pace_the_offered_rate() {
        assert_eq!(intended_start_ns(0, 1_000), 0);
        assert_eq!(intended_start_ns(1, 1_000), 1_000_000);
        assert_eq!(intended_start_ns(500, 1_000), 500_000_000);
        // Monotone, and independent of anything but index and rate.
        let mut prev = 0;
        for i in 0..1_000 {
            let t = intended_start_ns(i, 7_777);
            assert!(t >= prev);
            prev = t;
        }
        // Rate 0 is clamped rather than dividing by zero.
        assert_eq!(intended_start_ns(10, 0), 10_000_000_000);
    }

    fn sample_report() -> LoadReport {
        let mut latency = HistogramSummary {
            count: 9_000,
            sum_ns: 4_500_000_000,
            max_ns: 12_000_000,
            p50_ns: 262_144,
            p95_ns: 1_048_576,
            p99_ns: 4_194_304,
            p999_ns: 8_388_608,
            buckets: [0; crate::metrics::HISTOGRAM_BUCKETS],
        };
        latency.buckets[11] = 9_000; // ignored by the wire format
        latency.buckets = [0; crate::metrics::HISTOGRAM_BUCKETS];
        LoadReport {
            version: "0.1.0-test".into(),
            seed: 0x5EED,
            conns: 4,
            duration_ms: 10_000,
            offered_ops_per_sec: 1_000,
            achieved_ops_per_sec: 900.125,
            ops_attempted: 10_000,
            ops_ok: 9_000,
            ops_err: 700,
            ops_shed: 300,
            mix_insert: 5_400,
            mix_jaccard: 2_250,
            mix_degree: 900,
            mix_explain: 450,
            latency,
            slo_p99_ms: 250,
            slo_pass: true,
        }
    }

    #[test]
    fn report_json_round_trips() {
        let report = sample_report();
        let json = report.render_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(serde_json::Value::as_str),
            Some("streamlink.loadreport.v1")
        );
        let back = LoadReport::parse_json(&json).expect("round trip");
        assert_eq!(back, report);
    }

    #[test]
    fn report_parse_rejects_wrong_schema_and_missing_fields() {
        assert!(LoadReport::parse_json("{}").is_err());
        assert!(LoadReport::parse_json("not json").is_err());
        let mut json = sample_report().render_json();
        json = json.replace("loadreport.v1", "loadreport.v9");
        assert!(LoadReport::parse_json(&json).is_err());
    }

    #[test]
    fn slo_verdict_and_exit_code() {
        let summary = HistogramSummary {
            p99_ns: 3_000_000, // 3ms
            ..HistogramSummary::default()
        };
        assert!(LoadReport::slo_verdict(0, &summary), "no SLO always passes");
        assert!(LoadReport::slo_verdict(5, &summary), "3ms under a 5ms SLO");
        assert!(!LoadReport::slo_verdict(2, &summary), "3ms over a 2ms SLO");
        let mut report = sample_report();
        report.slo_pass = true;
        assert_eq!(report.exit_code(), 0);
        report.slo_pass = false;
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn report_escapes_version_strings() {
        let mut report = sample_report();
        report.version = "v1 \"quoted\"\nline".into();
        let json = report.render_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("escaped JSON parses");
        assert_eq!(
            parsed.get("version").and_then(serde_json::Value::as_str),
            Some("v1 \"quoted\"\nline")
        );
        let back = LoadReport::parse_json(&json).unwrap();
        assert_eq!(back.version, report.version);
    }
}
