//! Fault-injection helpers for durability testing.
//!
//! Production code must survive torn writes, partial files, and injected
//! IO errors; this module provides the tools the tests use to produce
//! those conditions deterministically:
//!
//! * [`ChaosWriter`] — a writer that fails with an injected error after a
//!   byte budget, leaving a genuine partial write behind;
//! * [`tear_file`] — chops bytes off a file's end, reproducing a write
//!   cut by a crash;
//! * [`append_garbage`] — appends non-protocol bytes, reproducing a
//!   corrupted tail.
//!
//! It ships in the library (not behind `cfg(test)`) so integration tests
//! and the bench harness can drive the same faults against real files;
//! nothing in the serving path calls it.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// A writer that emits an injected error once `budget` bytes have been
/// written, forwarding everything before that to the inner writer.
///
/// The partial prefix *is* written — exactly what a crash mid-write
/// leaves on disk.
#[derive(Debug)]
pub struct ChaosWriter<W: Write> {
    inner: W,
    budget: usize,
    written: usize,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner`, allowing `budget` bytes through before failing.
    #[must_use]
    pub fn new(inner: W, budget: usize) -> Self {
        ChaosWriter {
            inner,
            budget,
            written: 0,
        }
    }

    /// Total bytes actually forwarded to the inner writer.
    #[must_use]
    pub fn written(&self) -> usize {
        self.written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let remaining = self.budget.saturating_sub(self.written);
        if remaining == 0 {
            return Err(io::Error::other("injected fault: write budget exhausted"));
        }
        let n = self.inner.write(&buf[..buf.len().min(remaining)])?;
        self.written += n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Truncates the last `bytes` bytes off the file at `path`, simulating a
/// write torn by a crash. Truncating more than the file holds empties it.
///
/// # Errors
/// Fails if the file cannot be opened or resized.
pub fn tear_file(path: &Path, bytes: u64) -> io::Result<()> {
    let len = fs::metadata(path)?.len();
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len.saturating_sub(bytes))?;
    f.sync_all()
}

/// Appends `garbage` to the file at `path`, simulating a corrupted tail.
///
/// # Errors
/// Fails if the file cannot be opened or written.
pub fn append_garbage(path: &Path, garbage: &[u8]) -> io::Result<()> {
    let mut f = OpenOptions::new().append(true).open(path)?;
    f.write_all(garbage)?;
    f.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{self, FsyncPolicy, Journal, JournalEntry};
    use graphstream::VertexId;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("streamlink-chaos-{}-{tag}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn chaos_writer_fails_after_budget_with_partial_prefix() {
        let mut w = ChaosWriter::new(Vec::new(), 10);
        assert_eq!(w.write(b"hello ").unwrap(), 6);
        assert_eq!(w.write(b"world!!").unwrap(), 4); // clipped at budget
        let err = w.write(b"more").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(w.written(), 10);
        assert_eq!(w.into_inner(), b"hello worl");
    }

    #[test]
    fn chaos_writer_with_zero_budget_fails_immediately() {
        let mut w = ChaosWriter::new(Vec::new(), 0);
        assert!(w.write(b"x").is_err());
        assert!(w.into_inner().is_empty());
    }

    #[test]
    fn torn_journal_write_loses_only_the_unacked_tail() {
        // Drive a real journal through tear_file and confirm replay drops
        // exactly the torn entry.
        let dir = temp_dir("tear");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=4 {
            j.append(JournalEntry {
                seq,
                u: VertexId(seq),
                v: VertexId(seq + 10),
            })
            .unwrap();
        }
        drop(j);
        let (_, path) = journal::list_segments(&dir).unwrap()[0].clone();
        tear_file(&path, 3).unwrap(); // cut into entry 4's line

        let mut seen = Vec::new();
        let report = journal::replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert!(report.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_tail_is_ignored_by_replay() {
        let dir = temp_dir("garbage");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            j.append(JournalEntry {
                seq,
                u: VertexId(seq),
                v: VertexId(seq + 10),
            })
            .unwrap();
        }
        drop(j);
        let (_, path) = journal::list_segments(&dir).unwrap()[0].clone();
        append_garbage(&path, b"\x00\xffnot a journal line\x7f").unwrap();

        let mut seen = Vec::new();
        let report = journal::replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert!(report.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tear_beyond_length_empties_file() {
        let dir = temp_dir("empty");
        let path = dir.join("f");
        fs::write(&path, b"abc").unwrap();
        tear_file(&path, 100).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
