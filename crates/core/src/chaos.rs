//! Fault-injection helpers for durability testing.
//!
//! Production code must survive torn writes, partial files, and injected
//! IO errors; this module provides the tools the tests use to produce
//! those conditions deterministically:
//!
//! * [`FaultPlan`] — a scripted schedule of storage faults (ENOSPC,
//!   short writes, failed fsyncs) the journal and checkpoint paths
//!   consult when one is installed, so tests can make the *live* write
//!   path fail at exact operation counts;
//! * [`ChaosWriter`] — a writer that fails with an injected error after a
//!   byte budget, leaving a genuine partial write behind;
//! * [`tear_file`] — chops bytes off a file's end, reproducing a write
//!   cut by a crash;
//! * [`append_garbage`] — appends non-protocol bytes, reproducing a
//!   corrupted tail;
//! * [`flip_bit`] — flips one bit at an exact offset, reproducing silent
//!   media bit rot the CRC framing must catch.
//!
//! It ships in the library (not behind `cfg(test)`) so integration tests
//! and the bench harness can drive the same faults against real files;
//! nothing in the serving path *triggers* faults — production code only
//! ever checks an installed plan, and no plan is installed outside tests.

use std::fs::{self, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

/// One kind of injected storage failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write fails before any byte lands (`ENOSPC`-shaped).
    Enospc,
    /// The first `n` bytes of the record land on disk, then the write
    /// fails — a torn record a crashed `write(2)` leaves behind.
    ShortWrite(usize),
}

/// What the journal should do with the append it is about to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendDecision {
    /// No fault scheduled: write the whole record.
    Proceed,
    /// Fail without writing anything.
    Fail,
    /// Write exactly this many bytes of the record, then fail.
    ShortWrite(usize),
}

#[derive(Debug, Default)]
struct PlanState {
    appends_seen: u64,
    fsyncs_seen: u64,
    snapshots_seen: u64,
    /// `(fire_at_op_index, kind)`, one-shot, consumed when fired.
    append_faults: Vec<(u64, FaultKind)>,
    fsync_faults: Vec<u64>,
    snapshot_faults: Vec<u64>,
}

/// A scripted schedule of storage faults.
///
/// Install one via [`crate::journal::Journal::create_with_faults`] (the
/// serving layer threads it through `persistence::open`); every journal
/// append/fsync and every checkpoint snapshot write then consults the
/// plan. Faults are **one-shot**: after firing they are consumed, so a
/// server under test degrades on the scheduled operation and then heals
/// — exactly the "keep serving reads, ack-fail the write" contract the
/// fault-matrix tests pin.
///
/// All methods are `&self` (internally locked), so one plan can be
/// shared across the server threads of a test.
#[derive(Debug, Default)]
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// An empty plan: every operation proceeds.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Schedules the journal append with 0-based index `op` to fail.
    pub fn fail_append(&self, op: u64, kind: FaultKind) {
        self.lock().append_faults.push((op, kind));
    }

    /// Schedules the explicit fsync with 0-based index `op` to fail.
    pub fn fail_fsync(&self, op: u64) {
        self.lock().fsync_faults.push(op);
    }

    /// Schedules the checkpoint snapshot write with 0-based index `op`
    /// to fail before writing.
    pub fn fail_snapshot(&self, op: u64) {
        self.lock().snapshot_faults.push(op);
    }

    /// Consulted by the journal before each append; counts the
    /// operation and returns the scheduled decision.
    pub fn next_append(&self) -> AppendDecision {
        let mut s = self.lock();
        let op = s.appends_seen;
        s.appends_seen += 1;
        match take_fault(&mut s.append_faults, op) {
            None => AppendDecision::Proceed,
            Some(FaultKind::Enospc) => AppendDecision::Fail,
            Some(FaultKind::ShortWrite(n)) => AppendDecision::ShortWrite(n),
        }
    }

    /// Consulted before each explicit journal fsync.
    ///
    /// # Errors
    /// Returns the injected error when this fsync is scheduled to fail.
    pub fn next_fsync(&self) -> io::Result<()> {
        let mut s = self.lock();
        let op = s.fsyncs_seen;
        s.fsyncs_seen += 1;
        if take_at(&mut s.fsync_faults, op) {
            return Err(injected("fsync failed"));
        }
        Ok(())
    }

    /// Consulted before each checkpoint snapshot write.
    ///
    /// # Errors
    /// Returns the injected error when this snapshot write is scheduled
    /// to fail.
    pub fn next_snapshot(&self) -> io::Result<()> {
        let mut s = self.lock();
        let op = s.snapshots_seen;
        s.snapshots_seen += 1;
        if take_at(&mut s.snapshot_faults, op) {
            return Err(injected("snapshot write failed (no space)"));
        }
        Ok(())
    }

    /// The injected-error constructor, public so tests can compare
    /// messages.
    #[must_use]
    pub fn error(detail: &str) -> io::Error {
        injected(detail)
    }
}

fn take_fault(faults: &mut Vec<(u64, FaultKind)>, op: u64) -> Option<FaultKind> {
    let idx = faults.iter().position(|&(at, _)| at == op)?;
    Some(faults.swap_remove(idx).1)
}

fn take_at(faults: &mut Vec<u64>, op: u64) -> bool {
    match faults.iter().position(|&at| at == op) {
        Some(idx) => {
            faults.swap_remove(idx);
            true
        }
        None => false,
    }
}

fn injected(detail: &str) -> io::Error {
    io::Error::other(format!("injected fault: {detail}"))
}

/// A writer that emits an injected error once `budget` bytes have been
/// written, forwarding everything before that to the inner writer.
///
/// The partial prefix *is* written — exactly what a crash mid-write
/// leaves on disk.
#[derive(Debug)]
pub struct ChaosWriter<W: Write> {
    inner: W,
    budget: usize,
    written: usize,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner`, allowing `budget` bytes through before failing.
    #[must_use]
    pub fn new(inner: W, budget: usize) -> Self {
        ChaosWriter {
            inner,
            budget,
            written: 0,
        }
    }

    /// Total bytes actually forwarded to the inner writer.
    #[must_use]
    pub fn written(&self) -> usize {
        self.written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let remaining = self.budget.saturating_sub(self.written);
        if remaining == 0 {
            return Err(io::Error::other("injected fault: write budget exhausted"));
        }
        let n = self.inner.write(&buf[..buf.len().min(remaining)])?;
        self.written += n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Truncates the last `bytes` bytes off the file at `path`, simulating a
/// write torn by a crash. The cut is clamped to the file's length, so
/// tearing more than the file holds (including tearing a zero-length
/// file by any amount) empties it instead of underflowing.
///
/// # Errors
/// Fails if the file cannot be opened or resized.
pub fn tear_file(path: &Path, bytes: u64) -> io::Result<()> {
    let len = fs::metadata(path)?.len();
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len.saturating_sub(bytes))?;
    f.sync_all()
}

/// Flips bit `bit` (0 = least significant) of the byte at `offset` in
/// the file at `path`, simulating silent single-bit media rot at an
/// exact position.
///
/// # Errors
/// Fails if the file cannot be opened, `offset` is past the end, or the
/// write fails.
pub fn flip_bit(path: &Path, offset: u64, bit: u8) -> io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    let len = f.metadata()?.len();
    if offset >= len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("flip_bit offset {offset} past end of {len}-byte file"),
        ));
    }
    f.seek(SeekFrom::Start(offset))?;
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte)?;
    byte[0] ^= 1 << (bit % 8);
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&byte)?;
    f.sync_all()
}

/// Appends `garbage` to the file at `path`, simulating a corrupted tail.
///
/// # Errors
/// Fails if the file cannot be opened or written.
pub fn append_garbage(path: &Path, garbage: &[u8]) -> io::Result<()> {
    let mut f = OpenOptions::new().append(true).open(path)?;
    f.write_all(garbage)?;
    f.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{self, FsyncPolicy, Journal, JournalEntry};
    use graphstream::VertexId;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("streamlink-chaos-{}-{tag}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn chaos_writer_fails_after_budget_with_partial_prefix() {
        let mut w = ChaosWriter::new(Vec::new(), 10);
        assert_eq!(w.write(b"hello ").unwrap(), 6);
        assert_eq!(w.write(b"world!!").unwrap(), 4); // clipped at budget
        let err = w.write(b"more").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(w.written(), 10);
        assert_eq!(w.into_inner(), b"hello worl");
    }

    #[test]
    fn chaos_writer_with_zero_budget_fails_immediately() {
        let mut w = ChaosWriter::new(Vec::new(), 0);
        assert!(w.write(b"x").is_err());
        assert!(w.into_inner().is_empty());
    }

    #[test]
    fn torn_journal_write_loses_only_the_unacked_tail() {
        // Drive a real journal through tear_file and confirm replay drops
        // exactly the torn entry.
        let dir = temp_dir("tear");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=4 {
            j.append(JournalEntry {
                seq,
                u: VertexId(seq),
                v: VertexId(seq + 10),
            })
            .unwrap();
        }
        drop(j);
        let (_, path) = journal::list_segments(&dir).unwrap()[0].clone();
        tear_file(&path, 3).unwrap(); // cut into entry 4's line

        let mut seen = Vec::new();
        let report = journal::replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert!(report.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_tail_is_ignored_by_replay() {
        let dir = temp_dir("garbage");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            j.append(JournalEntry {
                seq,
                u: VertexId(seq),
                v: VertexId(seq + 10),
            })
            .unwrap();
        }
        drop(j);
        let (_, path) = journal::list_segments(&dir).unwrap()[0].clone();
        append_garbage(&path, b"\x00\xffnot a journal line\x7f").unwrap();

        let mut seen = Vec::new();
        let report = journal::replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert!(report.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tear_beyond_length_empties_file() {
        let dir = temp_dir("empty");
        let path = dir.join("f");
        fs::write(&path, b"abc").unwrap();
        tear_file(&path, 100).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tear_zero_length_file_is_a_clamped_no_op() {
        // Files shorter than the cut — including empty ones — must clamp
        // to zero, never underflow or error.
        let dir = temp_dir("zerolen");
        let path = dir.join("empty");
        fs::write(&path, b"").unwrap();
        tear_file(&path, 7).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        tear_file(&path, 0).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flip_bit_flips_exactly_one_bit_and_is_self_inverse() {
        let dir = temp_dir("flip");
        let path = dir.join("f");
        fs::write(&path, b"hello").unwrap();
        flip_bit(&path, 1, 0).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hdllo");
        flip_bit(&path, 1, 0).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        // Past-the-end offsets are a usage error, not silent no-ops.
        assert!(flip_bit(&path, 5, 0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_plan_schedules_one_shot_append_faults() {
        let plan = FaultPlan::new();
        plan.fail_append(1, FaultKind::Enospc);
        plan.fail_append(3, FaultKind::ShortWrite(4));
        assert_eq!(plan.next_append(), AppendDecision::Proceed);
        assert_eq!(plan.next_append(), AppendDecision::Fail);
        assert_eq!(plan.next_append(), AppendDecision::Proceed);
        assert_eq!(plan.next_append(), AppendDecision::ShortWrite(4));
        // Consumed: the same indices never fire twice.
        assert_eq!(plan.next_append(), AppendDecision::Proceed);
    }

    #[test]
    fn fault_plan_schedules_fsync_and_snapshot_faults() {
        let plan = FaultPlan::new();
        plan.fail_fsync(0);
        plan.fail_snapshot(1);
        let err = plan.next_fsync().unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(plan.next_fsync().is_ok());
        assert!(plan.next_snapshot().is_ok());
        assert!(plan.next_snapshot().is_err());
        assert!(plan.next_snapshot().is_ok());
    }
}
