//! Fault-injection helpers for durability testing.
//!
//! Production code must survive torn writes, partial files, and injected
//! IO errors; this module provides the tools the tests use to produce
//! those conditions deterministically:
//!
//! * [`FaultPlan`] — a scripted schedule of storage faults (ENOSPC,
//!   short writes, failed fsyncs) the journal and checkpoint paths
//!   consult when one is installed, so tests can make the *live* write
//!   path fail at exact operation counts;
//! * [`DeliveryPlan`] — a scripted schedule of *network delivery* faults
//!   (drop/duplicate/delay-reorder by message index) that perturbs a
//!   message sequence deterministically, so replication chaos schedules
//!   (E23) are reproducible the same way `FaultPlan` storage schedules
//!   are;
//! * [`ChaosWriter`] — a writer that fails with an injected error after a
//!   byte budget, leaving a genuine partial write behind;
//! * [`tear_file`] — chops bytes off a file's end, reproducing a write
//!   cut by a crash;
//! * [`append_garbage`] — appends non-protocol bytes, reproducing a
//!   corrupted tail;
//! * [`flip_bit`] — flips one bit at an exact offset, reproducing silent
//!   media bit rot the CRC framing must catch.
//!
//! It ships in the library (not behind `cfg(test)`) so integration tests
//! and the bench harness can drive the same faults against real files;
//! nothing in the serving path *triggers* faults — production code only
//! ever checks an installed plan, and no plan is installed outside tests.

use std::fs::{self, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

/// One kind of injected storage failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write fails before any byte lands (`ENOSPC`-shaped).
    Enospc,
    /// The first `n` bytes of the record land on disk, then the write
    /// fails — a torn record a crashed `write(2)` leaves behind.
    ShortWrite(usize),
}

/// What the journal should do with the append it is about to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendDecision {
    /// No fault scheduled: write the whole record.
    Proceed,
    /// Fail without writing anything.
    Fail,
    /// Write exactly this many bytes of the record, then fail.
    ShortWrite(usize),
}

#[derive(Debug, Default)]
struct PlanState {
    appends_seen: u64,
    fsyncs_seen: u64,
    snapshots_seen: u64,
    /// `(fire_at_op_index, kind)`, one-shot, consumed when fired.
    append_faults: Vec<(u64, FaultKind)>,
    fsync_faults: Vec<u64>,
    snapshot_faults: Vec<u64>,
}

/// A scripted schedule of storage faults.
///
/// Install one via [`crate::journal::Journal::create_with_faults`] (the
/// serving layer threads it through `persistence::open`); every journal
/// append/fsync and every checkpoint snapshot write then consults the
/// plan. Faults are **one-shot**: after firing they are consumed, so a
/// server under test degrades on the scheduled operation and then heals
/// — exactly the "keep serving reads, ack-fail the write" contract the
/// fault-matrix tests pin.
///
/// All methods are `&self` (internally locked), so one plan can be
/// shared across the server threads of a test.
#[derive(Debug, Default)]
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// An empty plan: every operation proceeds.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Schedules the journal append with 0-based index `op` to fail.
    pub fn fail_append(&self, op: u64, kind: FaultKind) {
        self.lock().append_faults.push((op, kind));
    }

    /// Schedules the explicit fsync with 0-based index `op` to fail.
    pub fn fail_fsync(&self, op: u64) {
        self.lock().fsync_faults.push(op);
    }

    /// Schedules the checkpoint snapshot write with 0-based index `op`
    /// to fail before writing.
    pub fn fail_snapshot(&self, op: u64) {
        self.lock().snapshot_faults.push(op);
    }

    /// Consulted by the journal before each append; counts the
    /// operation and returns the scheduled decision.
    pub fn next_append(&self) -> AppendDecision {
        let mut s = self.lock();
        let op = s.appends_seen;
        s.appends_seen += 1;
        match take_fault(&mut s.append_faults, op) {
            None => AppendDecision::Proceed,
            Some(FaultKind::Enospc) => AppendDecision::Fail,
            Some(FaultKind::ShortWrite(n)) => AppendDecision::ShortWrite(n),
        }
    }

    /// Consulted before each explicit journal fsync.
    ///
    /// # Errors
    /// Returns the injected error when this fsync is scheduled to fail.
    pub fn next_fsync(&self) -> io::Result<()> {
        let mut s = self.lock();
        let op = s.fsyncs_seen;
        s.fsyncs_seen += 1;
        if take_at(&mut s.fsync_faults, op) {
            return Err(injected("fsync failed"));
        }
        Ok(())
    }

    /// Consulted before each checkpoint snapshot write.
    ///
    /// # Errors
    /// Returns the injected error when this snapshot write is scheduled
    /// to fail.
    pub fn next_snapshot(&self) -> io::Result<()> {
        let mut s = self.lock();
        let op = s.snapshots_seen;
        s.snapshots_seen += 1;
        if take_at(&mut s.snapshot_faults, op) {
            return Err(injected("snapshot write failed (no space)"));
        }
        Ok(())
    }

    /// The injected-error constructor, public so tests can compare
    /// messages.
    #[must_use]
    pub fn error(detail: &str) -> io::Error {
        injected(detail)
    }
}

fn take_fault(faults: &mut Vec<(u64, FaultKind)>, op: u64) -> Option<FaultKind> {
    let idx = faults.iter().position(|&(at, _)| at == op)?;
    Some(faults.swap_remove(idx).1)
}

fn take_at(faults: &mut Vec<u64>, op: u64) -> bool {
    match faults.iter().position(|&at| at == op) {
        Some(idx) => {
            faults.swap_remove(idx);
            true
        }
        None => false,
    }
}

fn injected(detail: &str) -> io::Error {
    io::Error::other(format!("injected fault: {detail}"))
}

/// One kind of injected delivery fault, keyed by 0-based message index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFault {
    /// The message is lost in transit.
    Drop,
    /// The message arrives twice, back to back (the common
    /// retransmission duplicate).
    Duplicate,
    /// The message is held back and delivered strictly after the
    /// message `delay` positions later in the original sequence — a
    /// scripted reorder.
    Delay(usize),
}

/// A scripted, deterministic schedule of delivery faults.
///
/// Where [`FaultPlan`] perturbs the *storage* path of a live journal,
/// `DeliveryPlan` perturbs a *message sequence* — the WAL entries a
/// primary ships to a replica. [`DeliveryPlan::apply`] is a pure
/// transformation of the input sequence: the same plan applied to the
/// same messages always yields the same delivery order, so an E23 chaos
/// schedule is exactly reproducible from its seed.
///
/// At most one fault is honored per message index (the first one
/// scheduled wins); indices past the end of the sequence are ignored.
#[derive(Debug, Default, Clone)]
pub struct DeliveryPlan {
    /// `(message_index, fault)`, first scheduled per index wins.
    faults: Vec<(u64, DeliveryFault)>,
}

impl DeliveryPlan {
    /// An empty plan: every message is delivered once, in order.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the message with 0-based index `at` to be dropped.
    pub fn drop_at(&mut self, at: u64) {
        self.faults.push((at, DeliveryFault::Drop));
    }

    /// Schedules the message with 0-based index `at` to be delivered
    /// twice, back to back.
    pub fn duplicate_at(&mut self, at: u64) {
        self.faults.push((at, DeliveryFault::Duplicate));
    }

    /// Schedules the message with 0-based index `at` to be delayed past
    /// the message `by` positions later (a reorder). `by == 0` keeps the
    /// message in place.
    pub fn delay_at(&mut self, at: u64, by: usize) {
        self.faults.push((at, DeliveryFault::Delay(by)));
    }

    /// The fault scheduled for message index `at`, if any (first
    /// scheduled wins).
    #[must_use]
    pub fn fault_at(&self, at: u64) -> Option<DeliveryFault> {
        self.faults
            .iter()
            .find(|&&(idx, _)| idx == at)
            .map(|&(_, f)| f)
    }

    /// Number of scheduled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies the plan to a message sequence, returning the sequence a
    /// receiver would observe.
    ///
    /// Dropped messages are omitted; duplicated messages appear twice,
    /// adjacent; a message delayed by `by` is delivered strictly after
    /// the (undelayed) message at index `at + by`. The transformation is
    /// pure and deterministic.
    pub fn apply<T: Clone>(&self, messages: impl IntoIterator<Item = T>) -> Vec<T> {
        // Emission key: normal/duplicate copies sort at 2*index, a copy
        // delayed to target index t sorts at 2*t + 1 — strictly after
        // the undelayed message at t. The sort is stable, so equal keys
        // keep arrival order and the whole transform is deterministic.
        let mut keyed: Vec<(u64, T)> = Vec::new();
        for (i, msg) in messages.into_iter().enumerate() {
            let idx = i as u64;
            match self.fault_at(idx) {
                None => keyed.push((idx * 2, msg)),
                Some(DeliveryFault::Drop) => {}
                Some(DeliveryFault::Duplicate) => {
                    keyed.push((idx * 2, msg.clone()));
                    keyed.push((idx * 2, msg));
                }
                Some(DeliveryFault::Delay(by)) => {
                    keyed.push(((idx + by as u64) * 2 + 1, msg));
                }
            }
        }
        keyed.sort_by_key(|&(key, _)| key);
        keyed.into_iter().map(|(_, msg)| msg).collect()
    }
}

/// A writer that emits an injected error once `budget` bytes have been
/// written, forwarding everything before that to the inner writer.
///
/// The partial prefix *is* written — exactly what a crash mid-write
/// leaves on disk.
#[derive(Debug)]
pub struct ChaosWriter<W: Write> {
    inner: W,
    budget: usize,
    written: usize,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner`, allowing `budget` bytes through before failing.
    #[must_use]
    pub fn new(inner: W, budget: usize) -> Self {
        ChaosWriter {
            inner,
            budget,
            written: 0,
        }
    }

    /// Total bytes actually forwarded to the inner writer.
    #[must_use]
    pub fn written(&self) -> usize {
        self.written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let remaining = self.budget.saturating_sub(self.written);
        if remaining == 0 {
            return Err(io::Error::other("injected fault: write budget exhausted"));
        }
        let n = self.inner.write(&buf[..buf.len().min(remaining)])?;
        self.written += n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Truncates the last `bytes` bytes off the file at `path`, simulating a
/// write torn by a crash. The cut is clamped to the file's length, so
/// tearing more than the file holds (including tearing a zero-length
/// file by any amount) empties it instead of underflowing.
///
/// # Errors
/// Fails if the file cannot be opened or resized.
pub fn tear_file(path: &Path, bytes: u64) -> io::Result<()> {
    let len = fs::metadata(path)?.len();
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len.saturating_sub(bytes))?;
    f.sync_all()
}

/// Flips bit `bit` (0 = least significant) of the byte at `offset` in
/// the file at `path`, simulating silent single-bit media rot at an
/// exact position.
///
/// # Errors
/// Fails if the file cannot be opened, `offset` is past the end, or the
/// write fails.
pub fn flip_bit(path: &Path, offset: u64, bit: u8) -> io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    let len = f.metadata()?.len();
    if offset >= len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("flip_bit offset {offset} past end of {len}-byte file"),
        ));
    }
    f.seek(SeekFrom::Start(offset))?;
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte)?;
    byte[0] ^= 1 << (bit % 8);
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&byte)?;
    f.sync_all()
}

/// Appends `garbage` to the file at `path`, simulating a corrupted tail.
///
/// # Errors
/// Fails if the file cannot be opened or written.
pub fn append_garbage(path: &Path, garbage: &[u8]) -> io::Result<()> {
    let mut f = OpenOptions::new().append(true).open(path)?;
    f.write_all(garbage)?;
    f.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{self, FsyncPolicy, Journal, JournalEntry};
    use graphstream::VertexId;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("streamlink-chaos-{}-{tag}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn chaos_writer_fails_after_budget_with_partial_prefix() {
        let mut w = ChaosWriter::new(Vec::new(), 10);
        assert_eq!(w.write(b"hello ").unwrap(), 6);
        assert_eq!(w.write(b"world!!").unwrap(), 4); // clipped at budget
        let err = w.write(b"more").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(w.written(), 10);
        assert_eq!(w.into_inner(), b"hello worl");
    }

    #[test]
    fn chaos_writer_with_zero_budget_fails_immediately() {
        let mut w = ChaosWriter::new(Vec::new(), 0);
        assert!(w.write(b"x").is_err());
        assert!(w.into_inner().is_empty());
    }

    #[test]
    fn torn_journal_write_loses_only_the_unacked_tail() {
        // Drive a real journal through tear_file and confirm replay drops
        // exactly the torn entry.
        let dir = temp_dir("tear");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=4 {
            j.append(JournalEntry {
                seq,
                u: VertexId(seq),
                v: VertexId(seq + 10),
            })
            .unwrap();
        }
        drop(j);
        let (_, path) = journal::list_segments(&dir).unwrap()[0].clone();
        tear_file(&path, 3).unwrap(); // cut into entry 4's line

        let mut seen = Vec::new();
        let report = journal::replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert!(report.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_tail_is_ignored_by_replay() {
        let dir = temp_dir("garbage");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            j.append(JournalEntry {
                seq,
                u: VertexId(seq),
                v: VertexId(seq + 10),
            })
            .unwrap();
        }
        drop(j);
        let (_, path) = journal::list_segments(&dir).unwrap()[0].clone();
        append_garbage(&path, b"\x00\xffnot a journal line\x7f").unwrap();

        let mut seen = Vec::new();
        let report = journal::replay(&dir, 0, |e| seen.push(e.seq)).unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert!(report.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tear_beyond_length_empties_file() {
        let dir = temp_dir("empty");
        let path = dir.join("f");
        fs::write(&path, b"abc").unwrap();
        tear_file(&path, 100).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tear_zero_length_file_is_a_clamped_no_op() {
        // Files shorter than the cut — including empty ones — must clamp
        // to zero, never underflow or error.
        let dir = temp_dir("zerolen");
        let path = dir.join("empty");
        fs::write(&path, b"").unwrap();
        tear_file(&path, 7).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        tear_file(&path, 0).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flip_bit_flips_exactly_one_bit_and_is_self_inverse() {
        let dir = temp_dir("flip");
        let path = dir.join("f");
        fs::write(&path, b"hello").unwrap();
        flip_bit(&path, 1, 0).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hdllo");
        flip_bit(&path, 1, 0).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        // Past-the-end offsets are a usage error, not silent no-ops.
        assert!(flip_bit(&path, 5, 0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_plan_schedules_one_shot_append_faults() {
        let plan = FaultPlan::new();
        plan.fail_append(1, FaultKind::Enospc);
        plan.fail_append(3, FaultKind::ShortWrite(4));
        assert_eq!(plan.next_append(), AppendDecision::Proceed);
        assert_eq!(plan.next_append(), AppendDecision::Fail);
        assert_eq!(plan.next_append(), AppendDecision::Proceed);
        assert_eq!(plan.next_append(), AppendDecision::ShortWrite(4));
        // Consumed: the same indices never fire twice.
        assert_eq!(plan.next_append(), AppendDecision::Proceed);
    }

    #[test]
    fn delivery_plan_empty_is_identity() {
        let plan = DeliveryPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.apply(0..6), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn delivery_plan_drop_removes_exactly_that_index() {
        let mut plan = DeliveryPlan::new();
        plan.drop_at(2);
        assert_eq!(plan.apply(0..5), vec![0, 1, 3, 4]);
    }

    #[test]
    fn delivery_plan_duplicate_delivers_adjacent_copies() {
        let mut plan = DeliveryPlan::new();
        plan.duplicate_at(1);
        assert_eq!(plan.apply(0..4), vec![0, 1, 1, 2, 3]);
    }

    #[test]
    fn delivery_plan_delay_reorders_past_later_messages() {
        let mut plan = DeliveryPlan::new();
        plan.delay_at(0, 2);
        // Message 0 lands strictly after message 2.
        assert_eq!(plan.apply(0..5), vec![1, 2, 0, 3, 4]);
        // Delay past the end of the stream lands at the end.
        let mut tail = DeliveryPlan::new();
        tail.delay_at(1, 100);
        assert_eq!(tail.apply(0..4), vec![0, 2, 3, 1]);
        // A zero delay keeps the message in place (after index ties,
        // arrival order is preserved).
        let mut zero = DeliveryPlan::new();
        zero.delay_at(2, 0);
        assert_eq!(zero.apply(0..4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn delivery_plan_combined_faults_are_deterministic() {
        let mut plan = DeliveryPlan::new();
        plan.drop_at(0);
        plan.duplicate_at(3);
        plan.delay_at(1, 3);
        assert_eq!(plan.len(), 3);
        let once = plan.apply(0..7);
        let twice = plan.apply(0..7);
        assert_eq!(once, twice, "apply must be pure");
        assert_eq!(once, vec![2, 3, 3, 4, 1, 5, 6]);
    }

    #[test]
    fn delivery_plan_first_fault_per_index_wins_and_oob_ignored() {
        let mut plan = DeliveryPlan::new();
        plan.drop_at(1);
        plan.duplicate_at(1); // shadowed by the drop scheduled first
        plan.drop_at(99); // past the end: ignored
        assert_eq!(plan.fault_at(1), Some(DeliveryFault::Drop));
        assert_eq!(plan.fault_at(2), None);
        assert_eq!(plan.apply(0..3), vec![0, 2]);
    }

    #[test]
    fn fault_plan_schedules_fsync_and_snapshot_faults() {
        let plan = FaultPlan::new();
        plan.fail_fsync(0);
        plan.fail_snapshot(1);
        let err = plan.next_fsync().unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(plan.next_fsync().is_ok());
        assert!(plan.next_snapshot().is_ok());
        assert!(plan.next_snapshot().is_err());
        assert!(plan.next_snapshot().is_ok());
    }
}
