//! The pure estimation formulas, isolated from sketch plumbing so the
//! math is unit-testable with synthetic match statistics.
//!
//! These functions are deliberately free of instrumentation: tracing
//! attribution for estimator work happens one level up, where
//! [`crate::SketchStore`] wraps each query in an `estimate.*` child
//! span (see [`crate::trace`]), and accuracy auditing of the estimates
//! lives in [`crate::audit`].

/// Jaccard estimate from slot agreement: `matches / k`.
///
/// Each slot agrees with probability exactly `J` (the min-wise sampling
/// property), so the match fraction is an unbiased binomial-mean estimator.
///
/// # Panics
/// Panics if `k == 0` or `matches > k`.
#[inline]
#[must_use]
pub fn jaccard_from_matches(matches: usize, k: usize) -> f64 {
    assert!(k > 0, "zero-slot sketch");
    assert!(matches <= k, "more matches ({matches}) than slots ({k})");
    matches as f64 / k as f64
}

/// Common-neighbor estimate from a Jaccard estimate and exact degrees.
///
/// From `J = CN / (d_u + d_v − CN)`, solve for `CN`:
/// `CN = J · (d_u + d_v) / (1 + J)`.
///
/// The estimate is clamped to the feasible range
/// `[0, min(d_u, d_v)]` — the identity can overshoot when `Ĵ` is noisy.
#[inline]
#[must_use]
pub fn cn_from_jaccard(jaccard: f64, deg_u: u64, deg_v: u64) -> f64 {
    debug_assert!(
        (0.0..=1.0).contains(&jaccard),
        "jaccard {jaccard} out of range"
    );
    let raw = jaccard * (deg_u + deg_v) as f64 / (1.0 + jaccard);
    raw.clamp(0.0, deg_u.min(deg_v) as f64)
}

/// The Adamic–Adar weight of a common neighbor of degree `d`.
///
/// A common neighbor has degree ≥ 2 by definition; degrees below 2 can
/// still be *observed* mid-stream (the second incident edge has not
/// arrived yet), so the degree is floored at 2 to keep the weight finite.
#[inline]
#[must_use]
pub fn aa_weight(degree: u64) -> f64 {
    1.0 / (degree.max(2) as f64).ln()
}

/// Adamic–Adar estimate from a CN estimate and the degrees of the sampled
/// common neighbors (the matched-slot argmins, with repetition).
///
/// `AA = CN · E[1/ln d(W)]` for `W` uniform on the intersection; the
/// sample mean of `aa_weight` over the matched samples estimates the
/// expectation. With no samples the estimate is 0 (no evidence of any
/// common neighbor).
#[must_use]
pub fn aa_from_samples(cn_estimate: f64, sampled_degrees: &[u64]) -> f64 {
    if sampled_degrees.is_empty() {
        return 0.0;
    }
    let mean_weight: f64 =
        sampled_degrees.iter().map(|&d| aa_weight(d)).sum::<f64>() / sampled_degrees.len() as f64;
    cn_estimate * mean_weight
}

/// Estimated intersection size — an alias of [`cn_from_jaccard`] exposed
/// under set vocabulary for non-graph uses of the sketches (the
/// neighborhood intersection *is* the common-neighbor count).
#[inline]
#[must_use]
pub fn intersection_from_jaccard(jaccard: f64, size_a: u64, size_b: u64) -> f64 {
    cn_from_jaccard(jaccard, size_a, size_b)
}

/// Estimated union size `|A ∪ B| = (|A| + |B|) / (1 + J)`.
///
/// Clamped to the feasible range `[max(|A|, |B|), |A| + |B|]`.
#[inline]
#[must_use]
pub fn union_from_jaccard(jaccard: f64, size_a: u64, size_b: u64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&jaccard));
    let raw = (size_a + size_b) as f64 / (1.0 + jaccard);
    raw.clamp(size_a.max(size_b) as f64, (size_a + size_b) as f64)
}

/// Weighted-Jaccard inversion used by the vertex-biased AA estimator.
///
/// With per-vertex weights `c(w)`, define `W(x) = Σ_{w∈N(x)} c(w)`. The
/// weighted Jaccard `J_c = C∩ / C∪` satisfies
/// `C∩ = J_c · (W_u + W_v) / (1 + J_c)` by the same identity as the
/// unweighted case — and `C∩` *is* the Adamic–Adar score when
/// `c(w) = 1/ln d(w)`.
#[inline]
#[must_use]
pub fn weighted_intersection_from_jaccard(jaccard_w: f64, wsum_u: f64, wsum_v: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&jaccard_w));
    debug_assert!(wsum_u >= 0.0 && wsum_v >= 0.0);
    let raw = jaccard_w * (wsum_u + wsum_v) / (1.0 + jaccard_w);
    raw.clamp(0.0, wsum_u.min(wsum_v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_fraction() {
        assert_eq!(jaccard_from_matches(0, 10), 0.0);
        assert_eq!(jaccard_from_matches(10, 10), 1.0);
        assert!((jaccard_from_matches(3, 12) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "more matches")]
    fn excess_matches_rejected() {
        let _ = jaccard_from_matches(11, 10);
    }

    #[test]
    fn cn_inverts_jaccard_identity_exactly() {
        // Ground truth: d_u = 10, d_v = 8, CN = 4 → J = 4/14.
        let j = 4.0 / 14.0;
        let cn = cn_from_jaccard(j, 10, 8);
        assert!((cn - 4.0).abs() < 1e-12, "got {cn}");
    }

    #[test]
    fn cn_clamps_to_feasible_range() {
        // J = 1 with unequal degrees is infeasible; clamp to min degree.
        assert_eq!(cn_from_jaccard(1.0, 10, 4), 4.0);
        assert_eq!(cn_from_jaccard(0.0, 10, 4), 0.0);
    }

    #[test]
    fn cn_monotone_in_jaccard() {
        let mut last = -1.0;
        for i in 0..=100 {
            let j = f64::from(i) / 100.0;
            let cn = cn_from_jaccard(j, 20, 30);
            assert!(cn >= last);
            last = cn;
        }
    }

    #[test]
    fn aa_weight_floors_small_degrees() {
        assert_eq!(aa_weight(0), aa_weight(2));
        assert_eq!(aa_weight(1), aa_weight(2));
        assert!((aa_weight(2) - 1.0 / 2f64.ln()).abs() < 1e-12);
        assert!(aa_weight(100) < aa_weight(2));
        assert!(aa_weight(u64::MAX).is_finite());
    }

    #[test]
    fn aa_from_samples_exact_when_uniform() {
        // CN = 6, all sampled common neighbors have degree e² → weight ½.
        // AA = 6 · ½ = 3.
        let degrees = vec![8u64; 5]; // ln 8 ≈ 2.079
        let aa = aa_from_samples(6.0, &degrees);
        assert!((aa - 6.0 / 8f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn aa_from_no_samples_is_zero() {
        assert_eq!(aa_from_samples(5.0, &[]), 0.0);
    }

    #[test]
    fn aa_averages_mixed_degrees() {
        let aa = aa_from_samples(2.0, &[2, 4]);
        let expected = 2.0 * (1.0 / 2f64.ln() + 1.0 / 4f64.ln()) / 2.0;
        assert!((aa - expected).abs() < 1e-12);
    }

    #[test]
    fn union_and_intersection_are_consistent() {
        // |A| = 10, |B| = 8, |A∩B| = 4 → J = 4/14, |A∪B| = 14.
        let j = 4.0 / 14.0;
        let inter = intersection_from_jaccard(j, 10, 8);
        let union = union_from_jaccard(j, 10, 8);
        assert!((inter - 4.0).abs() < 1e-12);
        assert!((union - 14.0).abs() < 1e-12);
        // Inclusion–exclusion holds for the pair of estimates.
        assert!((inter + union - 18.0).abs() < 1e-12);
    }

    #[test]
    fn union_clamps_to_feasible_range() {
        assert_eq!(union_from_jaccard(1.0, 10, 4), 10.0);
        assert_eq!(union_from_jaccard(0.0, 10, 4), 14.0);
    }

    #[test]
    fn weighted_inversion_matches_ground_truth() {
        // C(u) = 3.0, C(v) = 2.0, C∩ = 1.0 → J_c = 1 / (3+2-1) = 0.25.
        let jc = 1.0 / 4.0;
        let c = weighted_intersection_from_jaccard(jc, 3.0, 2.0);
        assert!((c - 1.0).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn weighted_inversion_clamps() {
        assert_eq!(weighted_intersection_from_jaccard(1.0, 5.0, 1.0), 1.0);
        assert_eq!(weighted_intersection_from_jaccard(0.0, 5.0, 1.0), 0.0);
    }
}
