//! # streamlink-core
//!
//! The paper's primary contribution: **per-vertex MinHash sketches for
//! link prediction in graph streams**, with constant space per vertex and
//! constant time per edge.
//!
//! ## The model
//!
//! Edges `(u, v)` arrive one at a time. For every vertex we keep a sketch
//! of `k` slots; slot `i` holds the minimum of `h_i(·)` over the neighbors
//! seen so far, together with the vertex that achieved it. Per edge we
//! fold `h_i(v)` into `u`'s sketch and `h_i(u)` into `v`'s sketch — `O(k)`
//! work, no allocation, independent of the graph size.
//!
//! From two sketches we estimate the three neighborhood measures:
//!
//! * **Jaccard** — the fraction of agreeing slots is an unbiased estimator
//!   of `|N(u) ∩ N(v)| / |N(u) ∪ N(v)|`.
//! * **Common neighbors** — exact degree counters (one word per vertex)
//!   invert the Jaccard identity: `CN = J · (d(u)+d(v)) / (1+J)`.
//! * **Adamic–Adar** — the agreeing slots are min-wise samples of the
//!   *intersection*; averaging `1/ln d(w)` over the sampled common
//!   neighbors and scaling by `ĈN` estimates AA
//!   ([`SketchStore::adamic_adar`]). A second, *vertex-biased* estimator
//!   ([`biased::BiasedStore`]) weights the sampling itself by `1/ln d`
//!   via exponential ranks.
//!
//! ## Modules
//!
//! * [`config`] — [`SketchConfig`] builder (slots, seed, hasher backend).
//! * [`store`] — [`SketchStore`], the main API.
//! * [`sketch`] — the per-vertex [`sketch::VertexSketch`].
//! * [`estimators`] — the pure estimation formulas, testable in isolation.
//! * [`accuracy`] — the `(ε, δ)` guarantee calculator.
//! * [`bottomk`] — the bottom-k single-hash variant (ablation).
//! * [`biased`] — the vertex-biased (weighted) AA sketch (ablation).
//! * [`lsh`] — banded LSH index for sub-linear top-k similarity search.
//! * [`windowed`] — epoch-based sliding-window store (recent structure
//!   only).
//! * [`merge`] — sketch-store union for distributed ingestion.
//! * [`metrics`] — zero-dependency observability: atomic counters,
//!   gauges, and latency histograms behind one global registry, with
//!   Prometheus text exposition rendering.
//! * [`memory`] — live component-wise memory accounting
//!   ([`memory::MemoryReport`]): the "constant space per vertex" claim
//!   as a set of scrapeable `mem.*` gauges.
//! * [`trace`] — request tracing: span guards over a fixed-capacity
//!   ring buffer, sampled on the insert hot path, plus a rotating
//!   slow-op JSONL log and a live span-aggregated self-profile
//!   (`streamlink.profilez.v1`).
//! * [`loadgen`] — deterministic open-loop workload synthesis
//!   (Zipf-skewed mixed INSERT/read streams) and the
//!   coordinated-omission-safe `streamlink.loadreport.v1` artifact.
//! * [`events`] — the causally-ordered cluster event journal: typed
//!   control-plane events (elections, fences, handoffs) with
//!   `(node, epoch, seq, tick)` provenance, a bounded ring plus a
//!   rotating `events.jsonl`, and a deterministic cross-node merge
//!   that asserts at most one primary per epoch.
//! * [`audit`] — online sketch-health auditing: a bounded exact shadow
//!   adjacency over sampled vertices, scored against the live sketch
//!   estimates into rolling error gauges.
//! * [`concurrent`] — sharded `RwLock` store for live ingest + query
//!   serving.
//! * [`hll`] / [`robust`] — HyperLogLog distinct-degree estimation and
//!   the duplicate-robust store built on it.
//! * [`compressed`] — frozen b-bit replicas for serving/shipping
//!   (Li–König b-bit minwise hashing).
//! * [`parallel`] — sharded multi-threaded ingestion.
//! * [`codec`] — the storage/wire format layer: a [`codec::Codec`]
//!   trait with the readable text v2 formats and the checksummed binary
//!   v3 envelope (LEB128 varints, delta-encoded slot columns); every
//!   read path sniffs the format, so mixed directories stay readable.
//! * [`snapshot`] — serde snapshots for persistence: atomic
//!   (temp-file–fsync–rename) writes under a versioned, checksummed
//!   header, with transparent v1 read-compat.
//! * [`journal`] — append-only edge WAL with per-record CRC-32 framing:
//!   acked edges survive crashes, and corruption is detected, not
//!   replayed.
//! * [`durable`] — self-healing recovery (last-known-good snapshot
//!   chain + journal tail, quarantine of corrupt artifacts) and
//!   retention-aware checkpointing.
//! * [`chaos`] — fault injection (torn/partial writes, scripted
//!   [`chaos::FaultPlan`] ENOSPC/short-write/failed-fsync schedules,
//!   scripted [`chaos::DeliveryPlan`] drop/duplicate/reorder delivery
//!   schedules, bit flips) for durability and replication tests.
//! * [`repl`] — replication primitives: seq-deduplicated apply
//!   ([`repl::ReplicaApplier`]), the primary's bounded ship buffer
//!   ([`repl::ReplLog`]), and the byte-exact convergence check
//!   ([`repl::divergence`]).
//!
//! ## Quick example
//!
//! ```
//! use streamlink_core::{SketchConfig, SketchStore};
//! use graphstream::VertexId;
//!
//! let mut store = SketchStore::new(SketchConfig::with_slots(256));
//! // A tiny stream: 0 and 1 share neighbors 2, 3, 4.
//! for w in 2u64..5 {
//!     store.insert_edge(VertexId(0), VertexId(w));
//!     store.insert_edge(VertexId(1), VertexId(w));
//! }
//! let j = store.jaccard(VertexId(0), VertexId(1)).unwrap();
//! assert!(j > 0.5, "perfect overlap should estimate near 1.0, got {j}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod audit;
pub mod biased;
pub mod bottomk;
pub mod chaos;
pub mod codec;
pub mod compressed;
pub mod concurrent;
pub mod config;
pub mod durable;
pub mod estimators;
pub mod events;
pub mod failover;
pub mod hll;
pub mod journal;
pub mod loadgen;
pub mod lsh;
pub mod memory;
pub mod merge;
pub mod metrics;
pub mod parallel;
pub mod repl;
pub mod robust;
pub mod sketch;
pub mod snapshot;
pub mod store;
pub mod trace;
pub mod windowed;

pub use accuracy::AccuracyPlan;
pub use audit::{AccuracyAuditor, AuditConfig, AuditSnapshot};
pub use biased::BiasedStore;
pub use bottomk::BottomKStore;
pub use chaos::{DeliveryFault, DeliveryPlan, FaultKind, FaultPlan};
pub use codec::{BinaryV3, Codec, CodecError, TextV2, WireFormat};
pub use compressed::CompressedStore;
pub use concurrent::ConcurrentSketchStore;
pub use config::{HasherBackend, SketchConfig};
pub use durable::{checkpoint, recover, Recovery, DEFAULT_SNAPSHOT_KEEP};
pub use events::{ClusterEvent, EventJournal, EventKind};
pub use hll::HyperLogLog;
pub use journal::{FsyncPolicy, Journal, JournalEntry, LineCheck, ReplayReport};
pub use loadgen::{LoadReport, MixSpec, OpKind, OpStream, WorkloadSpec};
pub use lsh::LshIndex;
pub use memory::{MemoryComponent, MemoryReport};
pub use metrics::{Metrics, MetricsSnapshot};
pub use repl::{ApplyOutcome, PullOutcome, ReplLog, ReplicaApplier};
pub use robust::RobustStore;
pub use store::SketchStore;
pub use windowed::WindowedStore;
