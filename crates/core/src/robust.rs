//! The duplicate-robust store: MinHash slots + HyperLogLog degrees.
//!
//! [`crate::SketchStore`]'s raw degree counters assume each edge is
//! delivered once; under re-delivery they inflate, dragging the CN and
//! AA estimates up with them (the Jaccard estimate is immune — slots are
//! idempotent). [`RobustStore`] swaps the counters for per-vertex
//! [`HyperLogLog`] sketches of the *distinct* neighbor set, making every
//! estimate duplicate-insensitive at the cost of `2^p` extra bytes per
//! vertex and HLL noise (σ ≈ `1.04/√2^p`) in the degree factor.
//!
//! Use it when the feed can repeat edges (at-least-once delivery,
//! multi-source union streams); use the plain store on deduplicated
//! feeds where exact counters are free.

use std::collections::HashMap;

use graphstream::{Edge, VertexId};

use crate::config::{HasherBank, SketchConfig};
use crate::estimators;
use crate::hll::HyperLogLog;
use crate::sketch::VertexSketch;

/// A sketch store whose degree factors are HLL distinct counts.
#[derive(Debug, Clone)]
pub struct RobustStore {
    config: SketchConfig,
    hll_precision: u8,
    bank: HasherBank,
    sketches: HashMap<VertexId, VertexSketch>,
    degrees: HashMap<VertexId, HyperLogLog>,
    edges_processed: u64,
    scratch_u: Vec<u64>,
    scratch_v: Vec<u64>,
}

impl RobustStore {
    /// A robust store with `config` sketch slots and `2^hll_precision`
    /// HLL registers per vertex.
    ///
    /// # Panics
    /// Panics if `hll_precision` is outside `4..=16` (HLL invariant).
    #[must_use]
    pub fn new(config: SketchConfig, hll_precision: u8) -> Self {
        assert!(
            (4..=16).contains(&hll_precision),
            "hll precision {hll_precision} outside 4..=16"
        );
        let bank = config.build_bank();
        let k = config.slots();
        Self {
            config,
            hll_precision,
            bank,
            sketches: HashMap::new(),
            degrees: HashMap::new(),
            edges_processed: 0,
            scratch_u: vec![0; k],
            scratch_v: vec![0; k],
        }
    }

    /// Processes one stream edge (duplicates and self-loops harmless).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges_processed += 1;
        if u == v {
            return;
        }
        let k = self.config.slots();
        self.bank.hash_all_into(u.0, &mut self.scratch_u);
        self.bank.hash_all_into(v.0, &mut self.scratch_v);

        self.sketches
            .entry(u)
            .or_insert_with(|| VertexSketch::new(k))
            .fold_neighbor(&self.scratch_v, v);
        self.sketches
            .entry(v)
            .or_insert_with(|| VertexSketch::new(k))
            .fold_neighbor(&self.scratch_u, u);

        // HLL of the neighbor set: feed the already-computed first slot
        // hash (a uniform word per neighbor id).
        let p = self.hll_precision;
        self.degrees
            .entry(u)
            .or_insert_with(|| HyperLogLog::new(p))
            .insert_hash(self.scratch_v[0]);
        self.degrees
            .entry(v)
            .or_insert_with(|| HyperLogLog::new(p))
            .insert_hash(self.scratch_u[0]);
    }

    /// Processes a whole stream.
    pub fn insert_stream(&mut self, edges: impl IntoIterator<Item = Edge>) {
        for e in edges {
            self.insert_edge(e.src, e.dst);
        }
    }

    /// Estimated distinct degree of `v` (0.0 for unseen vertices).
    #[must_use]
    pub fn degree_estimate(&self, v: VertexId) -> f64 {
        self.degrees.get(&v).map_or(0.0, HyperLogLog::estimate)
    }

    /// Estimated Jaccard coefficient (identical to the plain store's —
    /// duplicate-immune by construction).
    #[must_use]
    pub fn jaccard(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (su, sv) = (self.sketches.get(&u)?, self.sketches.get(&v)?);
        Some(estimators::jaccard_from_matches(
            su.match_count(sv),
            self.config.slots(),
        ))
    }

    /// Estimated common-neighbor count using HLL degrees.
    #[must_use]
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let j = self.jaccard(u, v)?;
        let (du, dv) = (self.degree_estimate(u), self.degree_estimate(v));
        let raw = j * (du + dv) / (1.0 + j);
        Some(raw.clamp(0.0, du.min(dv)))
    }

    /// Estimated Adamic–Adar using HLL degrees for both the CN factor
    /// and the sampled common neighbors' weights.
    #[must_use]
    pub fn adamic_adar(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (su, sv) = (self.sketches.get(&u)?, self.sketches.get(&v)?);
        let cn = self.common_neighbors(u, v)?;
        let samples: Vec<f64> = su
            .matched_samples(sv)
            .map(|w| self.degree_estimate(w))
            .collect();
        if samples.is_empty() {
            return Some(0.0);
        }
        let mean_weight: f64 =
            samples.iter().map(|&d| 1.0 / d.max(2.0).ln()).sum::<f64>() / samples.len() as f64;
        Some(cn * mean_weight)
    }

    /// Number of distinct vertices observed.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.sketches.len()
    }

    /// Total edges processed (including duplicates and self-loops).
    #[must_use]
    pub fn edges_processed(&self) -> u64 {
        self.edges_processed
    }

    /// The sketch configuration.
    #[must_use]
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// HLL precision used for the per-vertex degree sketches.
    #[must_use]
    pub fn hll_precision(&self) -> u8 {
        self.hll_precision
    }

    /// Read access to the persistable innards, for snapshotting.
    pub(crate) fn parts(
        &self,
    ) -> (
        &HashMap<VertexId, VertexSketch>,
        &HashMap<VertexId, HyperLogLog>,
        u64,
    ) {
        (&self.sketches, &self.degrees, self.edges_processed)
    }

    /// Write access to the persistable innards, for restoring.
    pub(crate) fn parts_mut(
        &mut self,
    ) -> (
        &mut HashMap<VertexId, VertexSketch>,
        &mut HashMap<VertexId, HyperLogLog>,
        &mut u64,
    ) {
        (
            &mut self.sketches,
            &mut self.degrees,
            &mut self.edges_processed,
        )
    }

    /// Approximate resident bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let sketch_bytes: usize = self.sketches.values().map(VertexSketch::memory_bytes).sum();
        let hll_bytes: usize = self.degrees.values().map(HyperLogLog::memory_bytes).sum();
        sketch_bytes
            + hll_bytes
            + self.sketches.capacity() * (size_of::<(VertexId, VertexSketch)>() + size_of::<u64>())
            + self.degrees.capacity() * (size_of::<(VertexId, HyperLogLog)>() + size_of::<u64>())
            + size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SketchStore;
    use graphstream::adapters::NoiseInjector;
    use graphstream::{BarabasiAlbert, EdgeStream};

    fn cfg() -> SketchConfig {
        SketchConfig::with_slots(256).seed(5)
    }

    #[test]
    fn clean_stream_matches_plain_store_closely() {
        let stream = BarabasiAlbert::new(300, 3, 11);
        let mut robust = RobustStore::new(cfg(), 10);
        let mut plain = SketchStore::new(cfg());
        robust.insert_stream(stream.edges());
        plain.insert_stream(stream.edges());

        for u in 0..40u64 {
            let v = VertexId(u);
            // Jaccard identical (same slots, same hashes).
            for w in (u + 1)..40u64 {
                assert_eq!(
                    robust.jaccard(v, VertexId(w)),
                    plain.jaccard(v, VertexId(w))
                );
            }
            // HLL degree within its error band of the exact counter.
            let exact = plain.degree(v) as f64;
            let est = robust.degree_estimate(v);
            assert!(
                (est - exact).abs() <= 2.0 + exact * 0.15,
                "degree at {v}: hll {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn cn_immune_to_duplicates() {
        // Deliver every edge 1 + Binomial noise times: plain CN inflates,
        // robust CN stays near the truth.
        let clean = BarabasiAlbert::new(300, 3, 13);
        let injector = NoiseInjector {
            duplicate_prob: 1.0,
            ..NoiseInjector::clean(3)
        }; // every edge twice
        let noisy = injector.apply(&clean);

        let mut robust = RobustStore::new(cfg(), 10);
        robust.insert_stream(noisy.as_slice().iter().copied());
        let mut plain_noisy = SketchStore::new(cfg());
        plain_noisy.insert_stream(noisy.as_slice().iter().copied());
        let mut plain_clean = SketchStore::new(cfg());
        plain_clean.insert_stream(clean.edges());

        let mut robust_err = 0.0;
        let mut plain_err = 0.0;
        let mut n = 0;
        for u in 0..50u64 {
            for v in (u + 1)..50u64 {
                let (u, v) = (VertexId(u), VertexId(v));
                let truth = plain_clean.common_neighbors(u, v).unwrap_or(0.0);
                robust_err += (robust.common_neighbors(u, v).unwrap_or(0.0) - truth).abs();
                plain_err += (plain_noisy.common_neighbors(u, v).unwrap_or(0.0) - truth).abs();
                n += 1;
            }
        }
        let (robust_mae, plain_mae) = (robust_err / f64::from(n), plain_err / f64::from(n));
        assert!(
            robust_mae < plain_mae * 0.6,
            "robust CN MAE {robust_mae} should beat duplicate-inflated {plain_mae}"
        );
    }

    #[test]
    fn degree_estimate_counts_distinct_neighbors() {
        let mut s = RobustStore::new(SketchConfig::with_slots(16).seed(1), 10);
        for _ in 0..20 {
            for w in 0..30u64 {
                s.insert_edge(VertexId(0), VertexId(100 + w));
            }
        }
        let est = s.degree_estimate(VertexId(0));
        assert!((est - 30.0).abs() < 5.0, "distinct degree estimate {est}");
    }

    #[test]
    fn unseen_vertices_give_none_or_zero() {
        let s = RobustStore::new(cfg(), 8);
        assert_eq!(s.jaccard(VertexId(1), VertexId(2)), None);
        assert_eq!(s.degree_estimate(VertexId(1)), 0.0);
    }

    #[test]
    fn memory_includes_hll() {
        let mut small = RobustStore::new(SketchConfig::with_slots(16), 4);
        let mut big = RobustStore::new(SketchConfig::with_slots(16), 12);
        for e in BarabasiAlbert::new(100, 2, 1).edges() {
            small.insert_edge(e.src, e.dst);
            big.insert_edge(e.src, e.dst);
        }
        assert!(big.memory_bytes() > small.memory_bytes() + 100 * 200);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_hll_precision_rejected() {
        let _ = RobustStore::new(cfg(), 3);
    }
}
