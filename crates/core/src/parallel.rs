//! Sharded multi-threaded ingestion.
//!
//! The stream is split into edge-disjoint contiguous chunks; each worker
//! thread folds its chunk into a private [`SketchStore`] (no locks on the
//! hot path), and the shards are merged at the end. Because sketch merge
//! is exact ([`crate::merge`]), the result is bit-identical to a
//! sequential pass — verified by the tests.

use graphstream::Edge;

use crate::config::SketchConfig;
use crate::merge::merge_into;
use crate::store::SketchStore;

/// Ingests `edges` using `threads` worker threads and returns the merged
/// store. `threads == 1` degenerates to a sequential pass.
///
/// # Panics
/// Panics if `threads == 0`.
#[must_use]
pub fn ingest_parallel(config: SketchConfig, edges: &[Edge], threads: usize) -> SketchStore {
    assert!(threads > 0, "need at least one ingestion thread");
    let metrics = crate::metrics::global();
    metrics.parallel_ingests.incr();
    if threads == 1 || edges.len() < 2 * threads {
        let start = std::time::Instant::now();
        let mut store = SketchStore::new(config);
        store.insert_stream(edges.iter().copied());
        metrics.shard_latency.observe(start);
        return store;
    }

    let chunk = edges.len().div_ceil(threads);
    let shards: Vec<SketchStore> = crossbeam::scope(|scope| {
        let handles: Vec<_> = edges
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move |_| {
                    let start = std::time::Instant::now();
                    let mut store = SketchStore::new(config);
                    store.insert_stream(part.iter().copied());
                    crate::metrics::global().shard_latency.observe(start);
                    store
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingestion worker panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");

    let mut iter = shards.into_iter();
    let mut merged = iter.next().expect("at least one shard");
    for shard in iter {
        merge_into(&mut merged, &shard).expect("shards share one config; merge cannot fail");
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstream::{BarabasiAlbert, EdgeStream, VertexId};

    fn cfg() -> SketchConfig {
        SketchConfig::with_slots(64).seed(3)
    }

    #[test]
    fn parallel_equals_sequential() {
        let edges: Vec<Edge> = BarabasiAlbert::new(500, 3, 9).edges().collect();
        let seq = ingest_parallel(cfg(), &edges, 1);
        for threads in [2, 4, 7] {
            let par = ingest_parallel(cfg(), &edges, threads);
            assert_eq!(par.vertex_count(), seq.vertex_count(), "{threads} threads");
            assert_eq!(par.edges_processed(), seq.edges_processed());
            for v in seq.vertices() {
                assert_eq!(
                    par.degree(v),
                    seq.degree(v),
                    "degree at {v}, {threads} threads"
                );
                assert_eq!(
                    par.sketch(v),
                    seq.sketch(v),
                    "sketch at {v}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn estimates_identical_across_thread_counts() {
        let edges: Vec<Edge> = BarabasiAlbert::new(300, 2, 4).edges().collect();
        let a = ingest_parallel(cfg(), &edges, 1);
        let b = ingest_parallel(cfg(), &edges, 8);
        for u in 0..40u64 {
            for v in (u + 1)..40u64 {
                assert_eq!(
                    a.jaccard(VertexId(u), VertexId(v)),
                    b.jaccard(VertexId(u), VertexId(v))
                );
            }
        }
    }

    #[test]
    fn tiny_input_fewer_edges_than_threads() {
        let edges = vec![Edge::new(0u64, 1u64, 0), Edge::new(1u64, 2u64, 1)];
        let s = ingest_parallel(cfg(), &edges, 16);
        assert_eq!(s.vertex_count(), 3);
        assert_eq!(s.edges_processed(), 2);
    }

    #[test]
    fn empty_input_gives_empty_store() {
        let s = ingest_parallel(cfg(), &[], 4);
        assert_eq!(s.vertex_count(), 0);
        assert_eq!(s.edges_processed(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threads_rejected() {
        let _ = ingest_parallel(cfg(), &[], 0);
    }
}
