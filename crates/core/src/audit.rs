//! Online sketch-health auditing: exact-vs-estimate error tracking on a
//! live store.
//!
//! The offline experiments (E2 `exp_accuracy`) prove the `(ε, δ)`
//! guarantee on a frozen dataset; this module makes estimator accuracy a
//! *continuously observed* signal on a deployment, following gSketch's
//! observation that graph-stream estimation error is workload-dependent.
//!
//! ## How exactness is possible in constant-ish space
//!
//! The [`crate::SketchStore`] deliberately keeps no adjacency lists —
//! that is the paper's whole point. The auditor therefore maintains a
//! bounded **shadow adjacency** for a hash-sampled subset of vertices
//! (default 1-in-32, [`AuditConfig::vertex_sample_shift`]). A vertex is
//! eligible only if the auditor saw its *entire* history: it must be
//! first observed with a pre-insert degree of 0. Vertices that appear
//! mid-stream (e.g. after snapshot recovery, where the sketch exists but
//! the edges are gone) are *burned* — permanently ineligible — so the
//! "exact" side is never silently wrong. Saturated vertices (shadow set
//! past [`AuditConfig::max_neighbors`]) are evicted and burned too.
//!
//! ## The cycle
//!
//! [`AccuracyAuditor::run_cycle`] draws up to K random pairs of tracked
//! vertices, computes exact Jaccard / common-neighbors / Adamic–Adar
//! from the shadow sets (AA degrees come from the store's exact degree
//! counters — the same source the estimator scales by), computes the
//! sketch estimates side by side, and pushes the errors into rolling
//! windows. It then publishes:
//!
//! * `audit.jaccard_mae_ppm` — mean absolute Jaccard error × 10⁶
//! * `audit.cn_rel_err_p95_ppm` — p95 relative CN error × 10⁶
//! * `audit.aa_mae_ppm` — mean absolute AA error × 10⁶
//! * `audit.tracked_vertices`, `audit.cycles`, `audit.pairs`
//!
//! Gauges are fixed-point parts-per-million because the metrics registry
//! is integer-only; the `HEALTH` protocol command renders them back as
//! floats. On a stationary stream the rolling Jaccard MAE should sit
//! within the offline Hoeffding envelope for the deployed `k`
//! ([`crate::AccuracyPlan`]); a sustained excursion past ~2× is the
//! alert condition (OPERATIONS.md §9).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

use graphstream::VertexId;
use hashkit::mix64;

use crate::store::SketchStore;

/// Tuning knobs for the [`AccuracyAuditor`].
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Sample 1-in-2^shift vertices into the shadow adjacency
    /// (default 5 → 1/32, which keeps the audited-ingest overhead
    /// inside the E21 budget). Shift 0 tracks every vertex (tests).
    pub vertex_sample_shift: u32,
    /// Hard cap on simultaneously tracked vertices (default 4096).
    pub max_tracked: usize,
    /// Shadow neighbor-set size past which a vertex is evicted and
    /// burned (default 4096) — bounds worst-case memory at
    /// `max_tracked × max_neighbors` words.
    pub max_neighbors: usize,
    /// Rolling error-window length in samples (default 1024).
    pub window: usize,
    /// Seed for the sampling hash and the pair-drawing RNG.
    pub seed: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            vertex_sample_shift: 5,
            max_tracked: 4096,
            max_neighbors: 4096,
            window: 1024,
            seed: 0x000A_0D17,
        }
    }
}

/// Rolling audit state, published after each [`AccuracyAuditor::run_cycle`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AuditSnapshot {
    /// Completed audit cycles.
    pub cycles: u64,
    /// Vertex pairs evaluated in total.
    pub pairs_evaluated: u64,
    /// Currently tracked (fully-observed) vertices.
    pub tracked: usize,
    /// Vertices permanently excluded (incomplete history or evicted).
    pub burned: usize,
    /// Rolling mean absolute Jaccard error.
    pub jaccard_mae: f64,
    /// Rolling p95 relative common-neighbors error.
    pub cn_rel_err_p95: f64,
    /// Rolling mean absolute Adamic–Adar error.
    pub aa_mae: f64,
}

struct Windows {
    jaccard_abs: VecDeque<f64>,
    cn_rel: VecDeque<f64>,
    aa_abs: VecDeque<f64>,
}

struct Inner {
    tracked: HashMap<u64, HashSet<u64>>,
    burned: HashSet<u64>,
    windows: Windows,
    rng_state: u64,
    cycles: u64,
    pairs_evaluated: u64,
}

/// Background accuracy auditor: a bounded shadow adjacency over a
/// hash-sampled vertex subset plus rolling exact-vs-estimate error
/// windows. Shared by the ingest path (`observe_edge`) and the audit
/// thread (`run_cycle`); one short mutex holds the shadow state.
pub struct AccuracyAuditor {
    config: AuditConfig,
    mask: u64,
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl AccuracyAuditor {
    /// Creates an auditor with the given knobs.
    #[must_use]
    pub fn new(config: AuditConfig) -> Self {
        let mask = (1u64 << config.vertex_sample_shift.min(63)) - 1;
        Self {
            config,
            mask,
            enabled: AtomicBool::new(true),
            inner: Mutex::new(Inner {
                tracked: HashMap::new(),
                burned: HashSet::new(),
                windows: Windows {
                    jaccard_abs: VecDeque::new(),
                    cn_rel: VecDeque::new(),
                    aa_abs: VecDeque::new(),
                },
                rng_state: config.seed ^ 0x5EED_CAFE,
                cycles: 0,
                pairs_evaluated: 0,
            }),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// Turns edge observation and cycles on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Lock-free sampling hint: whether `v` falls in the audited hash
    /// slice. The ingest path checks this *before* paying for degree
    /// lookups or the shadow-state lock.
    #[inline]
    #[must_use]
    pub fn wants(&self, v: VertexId) -> bool {
        self.enabled.load(Ordering::Relaxed) && mix64(v.0 ^ self.config.seed) & self.mask == 0
    }

    /// Feeds one accepted edge into the shadow adjacency. Callers pass
    /// the *pre-insert* store degrees of both endpoints; an endpoint is
    /// only ever tracked if its first observation has degree 0, which
    /// guarantees the shadow set is its complete neighborhood.
    ///
    /// Call only when [`Self::wants`] is true for at least one
    /// endpoint; the other endpoint is ignored unless it is also
    /// sampled.
    pub fn observe_edge(&self, u: VertexId, v: VertexId, du_before: u64, dv_before: u64) {
        if !self.enabled.load(Ordering::Relaxed) || u == v {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if self.wants(u) {
            Self::observe_endpoint(&self.config, &mut inner, u.0, v.0, du_before);
        }
        if self.wants(v) {
            Self::observe_endpoint(&self.config, &mut inner, v.0, u.0, dv_before);
        }
    }

    fn observe_endpoint(
        config: &AuditConfig,
        inner: &mut Inner,
        vertex: u64,
        neighbor: u64,
        degree_before: u64,
    ) {
        if inner.burned.contains(&vertex) {
            return;
        }
        if let Some(set) = inner.tracked.get_mut(&vertex) {
            set.insert(neighbor);
            if set.len() > config.max_neighbors {
                inner.tracked.remove(&vertex);
                inner.burned.insert(vertex);
            }
            return;
        }
        if degree_before == 0 && inner.tracked.len() < config.max_tracked {
            let mut set = HashSet::new();
            set.insert(neighbor);
            inner.tracked.insert(vertex, set);
        } else {
            // Joined mid-stream (or no room): the shadow set could
            // never be complete, so exact values would be wrong.
            inner.burned.insert(vertex);
        }
    }

    /// Draws up to `pairs` random tracked-vertex pairs, scores exact vs
    /// sketch estimates, updates the rolling windows, publishes gauges
    /// into the global metrics registry, and returns the new snapshot.
    ///
    /// Cheap no-op (returns the current snapshot) with fewer than two
    /// tracked vertices.
    pub fn run_cycle(&self, store: &SketchStore, pairs: usize) -> AuditSnapshot {
        let m = crate::metrics::global();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let keys: Vec<u64> = inner.tracked.keys().copied().collect();
        if keys.len() >= 2 && self.enabled.load(Ordering::Relaxed) {
            let window = self.config.window.max(1);
            for _ in 0..pairs {
                let a = keys[Self::next_index(&mut inner.rng_state, keys.len())];
                let b = keys[Self::next_index(&mut inner.rng_state, keys.len())];
                if a == b {
                    continue;
                }
                let Some(scored) = Self::score_pair(store, &inner.tracked, a, b) else {
                    continue;
                };
                let w = &mut inner.windows;
                push_capped(&mut w.jaccard_abs, scored.jaccard_abs, window);
                push_capped(&mut w.cn_rel, scored.cn_rel, window);
                push_capped(&mut w.aa_abs, scored.aa_abs, window);
                inner.pairs_evaluated += 1;
                m.audit_pairs.incr();
            }
            inner.cycles += 1;
            m.audit_cycles.incr();
        }
        let snap = AuditSnapshot {
            cycles: inner.cycles,
            pairs_evaluated: inner.pairs_evaluated,
            tracked: inner.tracked.len(),
            burned: inner.burned.len(),
            jaccard_mae: mean(&inner.windows.jaccard_abs),
            cn_rel_err_p95: p95(&inner.windows.cn_rel),
            aa_mae: mean(&inner.windows.aa_abs),
        };
        drop(inner);
        m.audit_tracked_vertices.set(snap.tracked as u64);
        m.audit_jaccard_mae_ppm.set(to_ppm(snap.jaccard_mae));
        m.audit_cn_rel_err_p95_ppm.set(to_ppm(snap.cn_rel_err_p95));
        m.audit_aa_mae_ppm.set(to_ppm(snap.aa_mae));
        snap
    }

    /// The current rolling state without drawing new pairs.
    #[must_use]
    pub fn snapshot(&self) -> AuditSnapshot {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        AuditSnapshot {
            cycles: inner.cycles,
            pairs_evaluated: inner.pairs_evaluated,
            tracked: inner.tracked.len(),
            burned: inner.burned.len(),
            jaccard_mae: mean(&inner.windows.jaccard_abs),
            cn_rel_err_p95: p95(&inner.windows.cn_rel),
            aa_mae: mean(&inner.windows.aa_abs),
        }
    }

    /// Whether the shadow adjacency currently holds a complete
    /// neighborhood for `v` — i.e. an `EXPLAIN`/audit exact value for a
    /// pair touching `v` is available. Burned or never-sampled vertices
    /// report false.
    #[must_use]
    pub fn covers(&self, v: VertexId) -> bool {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tracked.contains_key(&v.0)
    }

    /// Approximate resident bytes of the shadow state: tracked map and
    /// neighbor sets, burned set, and the rolling error windows. A
    /// deterministic capacity model matching the store's accounting
    /// style; bounded by `max_tracked × max_neighbors` words.
    #[must_use]
    pub fn shadow_memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let set_entry = size_of::<u64>() * 2; // element + control/overhead word
        let neighbor_bytes: usize = inner
            .tracked
            .values()
            .map(|set| set.capacity() * set_entry)
            .sum();
        let tracked_map =
            inner.tracked.capacity() * (size_of::<(u64, HashSet<u64>)>() + size_of::<u64>());
        let burned = inner.burned.capacity() * set_entry;
        let windows = (inner.windows.jaccard_abs.capacity()
            + inner.windows.cn_rel.capacity()
            + inner.windows.aa_abs.capacity())
            * size_of::<f64>();
        neighbor_bytes + tracked_map + burned + windows + size_of::<Self>()
    }

    fn score_pair(
        store: &SketchStore,
        tracked: &HashMap<u64, HashSet<u64>>,
        a: u64,
        b: u64,
    ) -> Option<PairErrors> {
        let (na, nb) = (tracked.get(&a)?, tracked.get(&b)?);
        let inter: Vec<u64> = na.intersection(nb).copied().collect();
        let union = na.len() + nb.len() - inter.len();
        let exact_j = if union == 0 {
            0.0
        } else {
            inter.len() as f64 / union as f64
        };
        let exact_cn = inter.len() as f64;
        // Exact AA uses the store's exact degree counters — the same
        // degree source the sketch estimator scales by, so the audit
        // isolates *sampling* error rather than degree-model error.
        let exact_aa: f64 = inter
            .iter()
            .map(|&w| 1.0 / (store.degree(VertexId(w)).max(2) as f64).ln())
            .sum();
        let (ua, ub) = (VertexId(a), VertexId(b));
        let est_j = store.jaccard(ua, ub)?;
        let est_cn = store.common_neighbors(ua, ub)?;
        let est_aa = store.adamic_adar(ua, ub)?;
        Some(PairErrors {
            jaccard_abs: (est_j - exact_j).abs(),
            cn_rel: (est_cn - exact_cn).abs() / exact_cn.max(1.0),
            aa_abs: (est_aa - exact_aa).abs(),
        })
    }

    /// SplitMix64 step → uniform index in `[0, len)`. In-repo RNG; the
    /// core crate takes no `rand` dependency.
    fn next_index(state: &mut u64, len: usize) -> usize {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (mix64(*state) % len as u64) as usize
    }
}

struct PairErrors {
    jaccard_abs: f64,
    cn_rel: f64,
    aa_abs: f64,
}

fn push_capped(window: &mut VecDeque<f64>, value: f64, cap: usize) {
    if window.len() == cap {
        window.pop_front();
    }
    window.push_back(value);
}

fn mean(window: &VecDeque<f64>) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    window.iter().sum::<f64>() / window.len() as f64
}

fn p95(window: &VecDeque<f64>) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = window.iter().copied().collect();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() as f64) * 0.95).ceil() as usize;
    sorted[idx.saturating_sub(1).min(sorted.len() - 1)]
}

/// Converts a non-negative error to fixed-point parts-per-million for
/// the integer-only gauge registry (saturating; NaN → 0).
#[must_use]
pub fn to_ppm(x: f64) -> u64 {
    if !x.is_finite() || x <= 0.0 {
        return 0;
    }
    let scaled = x * 1e6;
    if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        scaled as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SketchConfig;

    fn track_all() -> AuditConfig {
        AuditConfig {
            vertex_sample_shift: 0,
            ..AuditConfig::default()
        }
    }

    /// Mirrors the server ingest path: degrees before, store insert,
    /// then observe.
    fn insert(store: &mut SketchStore, auditor: &AccuracyAuditor, u: u64, v: u64) {
        let (u, v) = (VertexId(u), VertexId(v));
        let need = auditor.wants(u) || auditor.wants(v);
        let (du, dv) = if need {
            (store.degree(u), store.degree(v))
        } else {
            (0, 0)
        };
        store.insert_edge(u, v);
        if need {
            auditor.observe_edge(u, v, du, dv);
        }
    }

    #[test]
    fn audit_errors_small_on_stationary_overlap() {
        let mut store = SketchStore::new(SketchConfig::with_slots(256));
        let auditor = AccuracyAuditor::new(track_all());
        // Vertices 0 and 1 share neighbors 10..40; each also has 10
        // private neighbors. True J = 30 / 50 = 0.6.
        for w in 10u64..40 {
            insert(&mut store, &auditor, 0, w);
            insert(&mut store, &auditor, 1, w);
        }
        for w in 100u64..110 {
            insert(&mut store, &auditor, 0, w);
        }
        for w in 200u64..210 {
            insert(&mut store, &auditor, 1, w);
        }
        let snap = auditor.run_cycle(&store, 256);
        assert!(snap.cycles == 1);
        assert!(snap.pairs_evaluated > 0);
        assert!(snap.tracked > 2);
        // k=256 Hoeffding bound at δ=0.01 is ~0.116; the rolling MAE
        // across many pairs should be comfortably below it.
        assert!(
            snap.jaccard_mae < 0.12,
            "jaccard MAE {} out of envelope",
            snap.jaccard_mae
        );
        assert!(snap.aa_mae.is_finite());
        assert!(snap.cn_rel_err_p95 >= 0.0);
    }

    #[test]
    fn exact_side_matches_ground_truth() {
        let mut store = SketchStore::new(SketchConfig::with_slots(256));
        let auditor = AccuracyAuditor::new(track_all());
        for w in 10u64..14 {
            insert(&mut store, &auditor, 0, w);
            insert(&mut store, &auditor, 1, w);
        }
        insert(&mut store, &auditor, 0, 99);
        let inner = auditor.inner.lock().unwrap();
        let n0 = inner.tracked.get(&0).expect("0 tracked");
        let n1 = inner.tracked.get(&1).expect("1 tracked");
        assert_eq!(n0.len(), 5);
        assert_eq!(n1.len(), 4);
        assert_eq!(n0.intersection(n1).count(), 4);
    }

    #[test]
    fn covers_reflects_tracked_shadow_sets() {
        let mut store = SketchStore::new(SketchConfig::with_slots(64));
        let auditor = AccuracyAuditor::new(track_all());
        assert!(!auditor.covers(VertexId(0)));
        insert(&mut store, &auditor, 0, 1);
        assert!(auditor.covers(VertexId(0)));
        assert!(auditor.covers(VertexId(1)));
        assert!(!auditor.covers(VertexId(42)));
    }

    #[test]
    fn shadow_memory_grows_with_tracked_population() {
        let mut store = SketchStore::new(SketchConfig::with_slots(64));
        let auditor = AccuracyAuditor::new(track_all());
        let empty = auditor.shadow_memory_bytes();
        assert!(empty >= std::mem::size_of::<AccuracyAuditor>());
        for v in 0u64..200 {
            insert(&mut store, &auditor, v, v + 10_000);
        }
        assert!(
            auditor.shadow_memory_bytes() > empty,
            "shadow accounting did not grow with 400 tracked vertices"
        );
    }

    #[test]
    fn mid_stream_vertices_are_burned_not_mistracked() {
        let mut store = SketchStore::new(SketchConfig::with_slots(64));
        // First build degree outside the auditor's sight (simulates
        // snapshot recovery: sketches exist, history lost).
        store.insert_edge(VertexId(7), VertexId(8));
        let auditor = AccuracyAuditor::new(track_all());
        insert(&mut store, &auditor, 7, 9);
        let snap = auditor.snapshot();
        let inner = auditor.inner.lock().unwrap();
        assert!(!inner.tracked.contains_key(&7), "incomplete history");
        assert!(inner.burned.contains(&7));
        drop(inner);
        assert!(snap.tracked <= 2); // 8 was never observed post-create; 9 tracked
    }

    #[test]
    fn duplicate_edges_do_not_inflate_shadow_sets() {
        let mut store = SketchStore::new(SketchConfig::with_slots(64));
        let auditor = AccuracyAuditor::new(track_all());
        for _ in 0..5 {
            insert(&mut store, &auditor, 3, 4);
        }
        let inner = auditor.inner.lock().unwrap();
        assert_eq!(inner.tracked.get(&3).unwrap().len(), 1);
    }

    #[test]
    fn saturated_vertices_are_evicted_and_burned() {
        let mut store = SketchStore::new(SketchConfig::with_slots(64));
        let config = AuditConfig {
            vertex_sample_shift: 0,
            max_neighbors: 8,
            ..AuditConfig::default()
        };
        let auditor = AccuracyAuditor::new(config);
        for w in 100u64..120 {
            insert(&mut store, &auditor, 1, w);
        }
        let inner = auditor.inner.lock().unwrap();
        assert!(!inner.tracked.contains_key(&1));
        assert!(inner.burned.contains(&1));
    }

    #[test]
    fn sampling_shift_reduces_tracked_population() {
        let mut store = SketchStore::new(SketchConfig::with_slots(64));
        let config = AuditConfig {
            vertex_sample_shift: 4,
            ..AuditConfig::default()
        };
        let auditor = AccuracyAuditor::new(config);
        for v in 0u64..2000 {
            insert(&mut store, &auditor, v, v + 10_000);
        }
        let snap = auditor.snapshot();
        // 4000 distinct vertices at 1/16 ≈ 250 expected; allow wide slack.
        assert!(snap.tracked > 60, "tracked {}", snap.tracked);
        assert!(snap.tracked < 1000, "tracked {}", snap.tracked);
    }

    #[test]
    fn disabled_auditor_ignores_everything() {
        let mut store = SketchStore::new(SketchConfig::with_slots(64));
        let auditor = AccuracyAuditor::new(track_all());
        auditor.set_enabled(false);
        assert!(!auditor.wants(VertexId(0)));
        insert(&mut store, &auditor, 0, 1);
        auditor.observe_edge(VertexId(0), VertexId(1), 0, 0);
        assert_eq!(auditor.snapshot().tracked, 0);
    }

    #[test]
    fn ppm_conversion_saturates_and_handles_nan() {
        assert_eq!(to_ppm(0.5), 500_000);
        assert_eq!(to_ppm(0.0), 0);
        assert_eq!(to_ppm(f64::NAN), 0);
        assert_eq!(to_ppm(f64::INFINITY), 0);
        assert_eq!(to_ppm(1e300), u64::MAX);
    }

    #[test]
    fn p95_picks_upper_tail() {
        let mut w = VecDeque::new();
        for i in 1..=100 {
            w.push_back(f64::from(i));
        }
        assert!((p95(&w) - 95.0).abs() < 1e-9);
        assert_eq!(p95(&VecDeque::new()), 0.0);
    }
}
