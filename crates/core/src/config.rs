//! Sketch configuration and the hasher-bank abstraction.

use hashkit::{HashFamily, TabulationHash};
use serde::{Deserialize, Serialize};

/// Which hash family backs the sketch slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum HasherBackend {
    /// SplitMix64-style seeded mixers: two multiplies per evaluation, the
    /// fast default.
    #[default]
    Mixer,
    /// Simple tabulation hashing: 3-independent with strong theoretical
    /// backing, eight table lookups per evaluation, ~16 KiB tables per
    /// slot. The "paranoid" backend for validating the accuracy theorems.
    Tabulation,
}

/// Configuration for a [`crate::SketchStore`].
///
/// Built with a fluent builder:
///
/// ```
/// use streamlink_core::{HasherBackend, SketchConfig};
/// let cfg = SketchConfig::with_slots(128)
///     .seed(0xFEED)
///     .backend(HasherBackend::Tabulation);
/// assert_eq!(cfg.slots(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchConfig {
    slots: usize,
    seed: u64,
    backend: HasherBackend,
}

impl SketchConfig {
    /// A config with `slots` sketch slots per vertex and defaults for the
    /// rest (seed 0, mixer backend).
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    #[must_use]
    pub fn with_slots(slots: usize) -> Self {
        assert!(slots > 0, "a sketch needs at least one slot");
        Self {
            slots,
            seed: 0,
            backend: HasherBackend::Mixer,
        }
    }

    /// Sets the base seed; all hash functions derive from it.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the hasher backend.
    #[must_use]
    pub fn backend(mut self, backend: HasherBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Number of slots per vertex sketch.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The base seed.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// The selected backend.
    #[must_use]
    pub fn hasher_backend(&self) -> HasherBackend {
        self.backend
    }

    /// Instantiates the hasher bank for this config.
    #[must_use]
    pub fn build_bank(&self) -> HasherBank {
        match self.backend {
            HasherBackend::Mixer => HasherBank::Mixer(HashFamily::new(self.slots, self.seed)),
            HasherBackend::Tabulation => HasherBank::Tabulation(
                (0..self.slots as u64)
                    .map(|i| TabulationHash::new(self.seed ^ i.wrapping_mul(0x9E37_79B9)))
                    .collect(),
            ),
        }
    }
}

/// A bank of `k` hash functions, one per sketch slot.
#[derive(Debug, Clone)]
pub enum HasherBank {
    /// Mixer-family bank.
    Mixer(HashFamily),
    /// Tabulation bank.
    Tabulation(Vec<TabulationHash>),
}

impl HasherBank {
    /// Number of functions in the bank.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            HasherBank::Mixer(f) => f.len(),
            HasherBank::Tabulation(t) => t.len(),
        }
    }

    /// Whether the bank is empty (never true for built banks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates all functions on `key` into the caller's scratch buffer
    /// (the per-edge hot path — no allocation).
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    #[inline]
    pub fn hash_all_into(&self, key: u64, out: &mut [u64]) {
        match self {
            HasherBank::Mixer(f) => f.hash_all_into(key, out),
            HasherBank::Tabulation(t) => {
                assert_eq!(out.len(), t.len(), "scratch buffer size mismatch");
                for (slot, h) in out.iter_mut().zip(t) {
                    *slot = h.hash(key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let cfg = SketchConfig::with_slots(64)
            .seed(9)
            .backend(HasherBackend::Tabulation);
        assert_eq!(cfg.slots(), 64);
        assert_eq!(cfg.base_seed(), 9);
        assert_eq!(cfg.hasher_backend(), HasherBackend::Tabulation);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = SketchConfig::with_slots(0);
    }

    #[test]
    fn banks_have_config_size() {
        for backend in [HasherBackend::Mixer, HasherBackend::Tabulation] {
            let bank = SketchConfig::with_slots(17).backend(backend).build_bank();
            assert_eq!(bank.len(), 17);
            assert!(!bank.is_empty());
        }
    }

    #[test]
    fn banks_are_deterministic() {
        for backend in [HasherBackend::Mixer, HasherBackend::Tabulation] {
            let cfg = SketchConfig::with_slots(8).seed(3).backend(backend);
            let (a, b) = (cfg.build_bank(), cfg.build_bank());
            let mut oa = vec![0u64; 8];
            let mut ob = vec![0u64; 8];
            a.hash_all_into(42, &mut oa);
            b.hash_all_into(42, &mut ob);
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn bank_members_are_independent() {
        let bank = SketchConfig::with_slots(16).build_bank();
        let mut out = vec![0u64; 16];
        bank.hash_all_into(7, &mut out);
        let distinct: std::collections::HashSet<_> = out.iter().collect();
        assert_eq!(distinct.len(), 16, "slot functions alias each other");
    }

    #[test]
    fn backends_disagree() {
        let mut a = vec![0u64; 4];
        let mut b = vec![0u64; 4];
        SketchConfig::with_slots(4)
            .build_bank()
            .hash_all_into(5, &mut a);
        SketchConfig::with_slots(4)
            .backend(HasherBackend::Tabulation)
            .build_bank()
            .hash_all_into(5, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = SketchConfig::with_slots(32)
            .seed(1)
            .backend(HasherBackend::Tabulation);
        let json = serde_json::to_string(&cfg).unwrap();
        assert_eq!(cfg, serde_json::from_str(&json).unwrap());
    }
}
