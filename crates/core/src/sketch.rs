//! The per-vertex MinHash sketch.

use serde::{Deserialize, Serialize};

use graphstream::VertexId;

/// One sketch slot: the minimum hash seen under this slot's function, and
/// the neighbor that achieved it (the *argmin*).
///
/// The argmin is what turns the sketch from a similarity estimator into a
/// *sampler*: on a slot match between two sketches, the shared argmin is a
/// min-wise sample of the neighborhood intersection, which the Adamic–Adar
/// estimator looks up by current degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slot {
    /// Minimum hash value over neighbors, `u64::MAX` while empty.
    pub hash: u64,
    /// The neighbor achieving the minimum (undefined while empty).
    pub argmin: VertexId,
}

impl Slot {
    /// The empty slot.
    pub const EMPTY: Slot = Slot {
        hash: u64::MAX,
        argmin: VertexId(u64::MAX),
    };

    /// Whether any neighbor has been folded in.
    ///
    /// (`u64::MAX` as a live minimum has probability `k·2⁻⁶⁴` over a whole
    /// store — treated as impossible, like any hash-collision event.)
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hash == u64::MAX
    }

    /// Folds one hashed neighbor into the slot.
    #[inline]
    pub fn fold(&mut self, hash: u64, neighbor: VertexId) {
        if hash < self.hash {
            self.hash = hash;
            self.argmin = neighbor;
        }
    }
}

/// A fixed-width MinHash sketch of one vertex's neighborhood.
///
/// Exactly `k` slots, allocated once at first sight of the vertex — the
/// "constant space per vertex" in the paper's claim.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexSketch {
    slots: Box<[Slot]>,
}

impl VertexSketch {
    /// An empty sketch with `k` slots.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            slots: vec![Slot::EMPTY; k].into_boxed_slice(),
        }
    }

    /// Builds a sketch directly from slot state (the binary codec's
    /// decode path; validation happens in the codec).
    #[must_use]
    pub(crate) fn from_slots(slots: Box<[Slot]>) -> Self {
        Self { slots }
    }

    /// Number of slots.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the sketch has zero slots (only via a zero-k constructor,
    /// which configs forbid).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slots.
    #[inline]
    #[must_use]
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Folds a neighbor into every slot. `hashes[i]` must be `h_i(neighbor)`.
    ///
    /// This is the per-edge hot path: one branch and at most one 16-byte
    /// write per slot.
    ///
    /// # Panics
    /// Panics if `hashes.len() != self.len()`.
    #[inline]
    pub fn fold_neighbor(&mut self, hashes: &[u64], neighbor: VertexId) {
        assert_eq!(hashes.len(), self.slots.len(), "hash count != slot count");
        for (slot, &h) in self.slots.iter_mut().zip(hashes) {
            slot.fold(h, neighbor);
        }
    }

    /// Number of slots where the two sketches hold the same minimum.
    ///
    /// Because each slot function is injective, hash equality is argmin
    /// equality; empty slots never match a non-empty one, and two empty
    /// slots match (both neighborhoods empty — vacuous agreement, callers
    /// guard on unseen vertices anyway).
    ///
    /// # Panics
    /// Panics if the sketches have different widths.
    #[must_use]
    pub fn match_count(&self, other: &VertexSketch) -> usize {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot compare sketches of different width"
        );
        self.slots
            .iter()
            .zip(other.slots.iter())
            .filter(|(a, b)| a.hash == b.hash)
            .count()
    }

    /// Iterates the argmin vertices of slots where both sketches agree
    /// and are non-empty — min-wise samples of the neighborhood
    /// intersection (with repetition across slots).
    pub fn matched_samples<'a>(
        &'a self,
        other: &'a VertexSketch,
    ) -> impl Iterator<Item = VertexId> + 'a {
        self.slots
            .iter()
            .zip(other.slots.iter())
            .filter(|(a, b)| !a.is_empty() && a.hash == b.hash)
            .map(|(a, _)| a.argmin)
    }

    /// Component-wise minimum with another sketch (neighborhood union).
    ///
    /// After `a.merge(&b)`, `a` is exactly the sketch that would have been
    /// produced by folding both neighbor sets — the property that makes
    /// sharded ingestion exact.
    ///
    /// # Panics
    /// Panics if widths differ.
    pub fn merge(&mut self, other: &VertexSketch) {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot merge sketches of different width"
        );
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            if b.hash < a.hash {
                *a = *b;
            }
        }
    }

    /// Resident bytes of this sketch (slots only; the store-level
    /// [`crate::store::SketchStore::memory_bytes`] adds map overhead on
    /// top of the per-sketch sums).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>()
    }

    /// Number of slots that have absorbed at least one neighbor hash.
    ///
    /// A freshly created sketch reports 0; once the neighborhood is at
    /// least as large as the slot count, every slot is filled with
    /// probability 1 (each slot folds every neighbor). Surfaced by the
    /// `EXPLAIN` protocol command as a cheap saturation diagnostic.
    #[must_use]
    pub fn filled_slots(&self) -> usize {
        self.slots.iter().filter(|s| !s.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashkit::HashFamily;

    fn hashes(fam: &HashFamily, key: u64) -> Vec<u64> {
        let mut out = vec![0u64; fam.len()];
        fam.hash_all_into(key, &mut out);
        out
    }

    #[test]
    fn empty_slot_properties() {
        assert!(Slot::EMPTY.is_empty());
        let mut s = Slot::EMPTY;
        s.fold(5, VertexId(1));
        assert!(!s.is_empty());
        assert_eq!(s.hash, 5);
        assert_eq!(s.argmin, VertexId(1));
    }

    #[test]
    fn fold_keeps_minimum_and_argmin() {
        let mut s = Slot::EMPTY;
        s.fold(10, VertexId(1));
        s.fold(20, VertexId(2)); // larger: ignored
        assert_eq!((s.hash, s.argmin), (10, VertexId(1)));
        s.fold(3, VertexId(3)); // smaller: replaces
        assert_eq!((s.hash, s.argmin), (3, VertexId(3)));
    }

    #[test]
    fn fold_neighbor_is_idempotent() {
        let fam = HashFamily::new(32, 1);
        let mut a = VertexSketch::new(32);
        let h = hashes(&fam, 99);
        a.fold_neighbor(&h, VertexId(99));
        let snapshot = a.clone();
        a.fold_neighbor(&h, VertexId(99)); // duplicate edge delivery
        assert_eq!(a, snapshot);
    }

    #[test]
    fn identical_neighborhoods_match_fully() {
        let fam = HashFamily::new(64, 2);
        let mut a = VertexSketch::new(64);
        let mut b = VertexSketch::new(64);
        for w in 100..120u64 {
            let h = hashes(&fam, w);
            a.fold_neighbor(&h, VertexId(w));
            b.fold_neighbor(&h, VertexId(w));
        }
        assert_eq!(a.match_count(&b), 64);
    }

    #[test]
    fn disjoint_neighborhoods_rarely_match() {
        let fam = HashFamily::new(64, 3);
        let mut a = VertexSketch::new(64);
        let mut b = VertexSketch::new(64);
        for w in 0..50u64 {
            a.fold_neighbor(&hashes(&fam, w), VertexId(w));
            b.fold_neighbor(&hashes(&fam, w + 1000), VertexId(w + 1000));
        }
        assert_eq!(a.match_count(&b), 0, "disjoint sets matched");
    }

    #[test]
    fn matched_samples_lie_in_intersection() {
        let fam = HashFamily::new(128, 4);
        let mut a = VertexSketch::new(128);
        let mut b = VertexSketch::new(128);
        // N(a) = 0..30, N(b) = 20..50; intersection = 20..30.
        for w in 0..30u64 {
            a.fold_neighbor(&hashes(&fam, w), VertexId(w));
        }
        for w in 20..50u64 {
            b.fold_neighbor(&hashes(&fam, w), VertexId(w));
        }
        let samples: Vec<_> = a.matched_samples(&b).collect();
        assert!(!samples.is_empty(), "overlap produced no samples");
        for v in samples {
            assert!((20..30).contains(&v.0), "sample {v} outside intersection");
        }
    }

    #[test]
    fn merge_equals_union_fold() {
        let fam = HashFamily::new(32, 5);
        let mut a = VertexSketch::new(32);
        let mut b = VertexSketch::new(32);
        let mut union = VertexSketch::new(32);
        for w in 0..20u64 {
            a.fold_neighbor(&hashes(&fam, w), VertexId(w));
            union.fold_neighbor(&hashes(&fam, w), VertexId(w));
        }
        for w in 15..40u64 {
            b.fold_neighbor(&hashes(&fam, w), VertexId(w));
            union.fold_neighbor(&hashes(&fam, w), VertexId(w));
        }
        a.merge(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let fam = HashFamily::new(16, 6);
        let mut a = VertexSketch::new(16);
        for w in 0..5u64 {
            a.fold_neighbor(&hashes(&fam, w), VertexId(w));
        }
        let before = a.clone();
        a.merge(&VertexSketch::new(16));
        assert_eq!(a, before);
    }

    #[test]
    fn memory_is_slot_proportional() {
        assert_eq!(
            VertexSketch::new(10).memory_bytes(),
            10 * std::mem::size_of::<Slot>()
        );
        assert!(VertexSketch::new(100).memory_bytes() > VertexSketch::new(10).memory_bytes());
    }

    #[test]
    #[should_panic(expected = "different width")]
    fn width_mismatch_rejected() {
        let _ = VertexSketch::new(4).match_count(&VertexSketch::new(8));
    }

    #[test]
    fn serde_roundtrip() {
        let fam = HashFamily::new(8, 7);
        let mut a = VertexSketch::new(8);
        a.fold_neighbor(&hashes(&fam, 9), VertexId(9));
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(a, serde_json::from_str::<VertexSketch>(&json).unwrap());
    }
}
