//! HyperLogLog cardinality sketches for distinct-degree estimation.
//!
//! The main store's degree counters assume each undirected edge arrives
//! once; real feeds re-deliver. MinHash slots shrug (idempotent), but
//! degree counters inflate, and CN/AA estimates scale with degrees. A
//! per-vertex [`HyperLogLog`] counts *distinct* neighbors in 2^p bytes,
//! which [`crate::robust::RobustStore`] uses in place of raw counters.
//!
//! Standard construction: hash each neighbor to 64 bits; the low `p`
//! bits select a register, the position of the first set bit in the
//! remaining `64 − p` bits (counted from 1) is the rank; each register
//! keeps its maximum rank. The estimate is the bias-corrected harmonic
//! mean with linear-counting fallback for small cardinalities.

use serde::{Deserialize, Serialize};

/// A HyperLogLog sketch over pre-hashed 64-bit items.
///
/// Precision `p` gives `m = 2^p` one-byte registers and a relative
/// standard error of `1.04/√m` (p = 6 → 13%, p = 10 → 3.3%).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// A sketch with `2^precision` registers.
    ///
    /// # Panics
    /// Panics unless `4 <= precision <= 16`.
    #[must_use]
    pub fn new(precision: u8) -> Self {
        assert!(
            (4..=16).contains(&precision),
            "precision {precision} outside 4..=16"
        );
        Self {
            precision,
            registers: vec![0; 1 << precision],
        }
    }

    /// Folds one pre-hashed item in. The argument must already be a
    /// uniform hash word (e.g. `SeededHash::hash(id)`), not a raw id.
    #[inline]
    pub fn insert_hash(&mut self, word: u64) {
        let p = self.precision;
        let index = (word & ((1 << p) - 1)) as usize;
        // Rank of the remaining bits: leading position of first 1 when
        // scanning from the LSB side of the suffix, 1-based; an all-zero
        // suffix gets the maximum rank 64 − p + 1.
        let suffix = word >> p;
        let rank = if suffix == 0 {
            64 - u32::from(p) + 1
        } else {
            suffix.trailing_zeros() + 1
        };
        let rank = rank as u8;
        if rank > self.registers[index] {
            self.registers[index] = rank;
        }
    }

    /// The cardinality estimate (bias-corrected, with linear counting
    /// for the small range).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-i32::from(r)))
            .sum();
        let raw = alpha * m * m / sum;

        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                // Linear counting: m · ln(m / V).
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merges another sketch (register-wise max — exact set union).
    ///
    /// # Panics
    /// Panics if precisions differ.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// The precision parameter `p`.
    #[must_use]
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// The raw registers (the binary codec's encode path).
    #[must_use]
    pub(crate) fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Rebuilds a sketch from raw parts, or `None` if the precision is
    /// outside `4..=16` or the register count is not `2^precision` (the
    /// binary codec's decode path — corrupt inputs must not panic).
    #[must_use]
    pub(crate) fn from_parts(precision: u8, registers: Vec<u8>) -> Option<Self> {
        if !(4..=16).contains(&precision) || registers.len() != 1usize << precision {
            return None;
        }
        Some(Self {
            precision,
            registers,
        })
    }

    /// Resident bytes (registers only).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashkit::SeededHash;

    fn estimate_of(n: u64, p: u8, seed: u64) -> f64 {
        let h = SeededHash::new(seed);
        let mut hll = HyperLogLog::new(p);
        for i in 0..n {
            hll.insert_hash(h.hash(i));
        }
        hll.estimate()
    }

    #[test]
    fn empty_estimates_zero() {
        assert_eq!(HyperLogLog::new(6).estimate(), 0.0);
    }

    #[test]
    fn small_cardinalities_are_near_exact() {
        // Linear-counting regime: tiny sets should be within ±1.
        for n in [1u64, 2, 5, 10, 20] {
            let est = estimate_of(n, 8, 3);
            assert!(
                (est - n as f64).abs() <= 1.0 + n as f64 * 0.1,
                "n = {n}: estimate {est}"
            );
        }
    }

    #[test]
    fn large_cardinalities_within_error_bound() {
        // p = 10 → σ ≈ 3.3%; allow 4σ.
        for n in [1_000u64, 10_000, 100_000] {
            let est = estimate_of(n, 10, 7);
            let rel = (est - n as f64).abs() / n as f64;
            assert!(rel < 0.14, "n = {n}: estimate {est} ({rel:.3} rel err)");
        }
    }

    #[test]
    fn error_shrinks_with_precision() {
        let n = 50_000u64;
        let rel = |p: u8| {
            // Average over seeds to damp noise.
            let mut total = 0.0;
            for seed in 0..5 {
                total += (estimate_of(n, p, seed) - n as f64).abs() / n as f64;
            }
            total / 5.0
        };
        assert!(
            rel(12) < rel(6),
            "p=12 ({}) should beat p=6 ({})",
            rel(12),
            rel(6)
        );
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let h = SeededHash::new(1);
        let mut hll = HyperLogLog::new(8);
        for _ in 0..100 {
            for i in 0..50u64 {
                hll.insert_hash(h.hash(i));
            }
        }
        let est = hll.estimate();
        assert!((est - 50.0).abs() < 10.0, "duplicates inflated: {est}");
    }

    #[test]
    fn merge_equals_union() {
        let h = SeededHash::new(5);
        let mut a = HyperLogLog::new(8);
        let mut b = HyperLogLog::new(8);
        let mut u = HyperLogLog::new(8);
        for i in 0..500u64 {
            a.insert_hash(h.hash(i));
            u.insert_hash(h.hash(i));
        }
        for i in 300..900u64 {
            b.insert_hash(h.hash(i));
            u.insert_hash(h.hash(i));
        }
        a.merge(&b);
        assert_eq!(a, u, "register-wise max must equal the union sketch");
    }

    #[test]
    fn memory_is_register_count() {
        assert_eq!(HyperLogLog::new(6).memory_bytes(), 64);
        assert_eq!(HyperLogLog::new(10).memory_bytes(), 1024);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_precision_rejected() {
        let _ = HyperLogLog::new(3);
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_precision_mismatch_rejected() {
        let mut a = HyperLogLog::new(6);
        a.merge(&HyperLogLog::new(8));
    }

    #[test]
    fn serde_roundtrip() {
        let h = SeededHash::new(9);
        let mut hll = HyperLogLog::new(6);
        for i in 0..100u64 {
            hll.insert_hash(h.hash(i));
        }
        let json = serde_json::to_string(&hll).unwrap();
        assert_eq!(hll, serde_json::from_str::<HyperLogLog>(&json).unwrap());
    }
}
