//! LSH banding over sketch slots: sub-linear top-k similar-vertex search.
//!
//! A pairwise query answers "how similar are u and v?" — but the
//! applications in the paper's introduction (friend recommendation,
//! similarity search) ask "*which* vertices are most similar to u?", and
//! scanning all n vertices per query defeats the point of sketching.
//!
//! The classic MinHash-LSH construction solves this with the *banding*
//! trick: split the first `bands × rows` sketch slots into `bands` groups
//! of `rows` slots, hash each group to a signature, and bucket vertices
//! by signature. Two vertices with Jaccard similarity `j` share a given
//! band with probability `j^rows`, hence collide in at least one band
//! with probability
//!
//! ```text
//! P(candidate) = 1 − (1 − j^rows)^bands
//! ```
//!
//! an S-curve with threshold `≈ (1/bands)^(1/rows)`. Candidates are then
//! ranked by the full sketch estimate.

use std::collections::HashMap;

use hashkit::mix64;

use graphstream::VertexId;

use crate::store::SketchStore;

/// Errors constructing an LSH index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LshError {
    /// `bands × rows` exceeds the store's slot count.
    NotEnoughSlots {
        /// Slots required (`bands × rows`).
        required: usize,
        /// Slots available in the store.
        available: usize,
    },
    /// `bands` or `rows` was zero.
    ZeroParameter,
}

impl std::fmt::Display for LshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LshError::NotEnoughSlots {
                required,
                available,
            } => write!(
                f,
                "LSH banding needs {required} slots but the store has {available}"
            ),
            LshError::ZeroParameter => write!(f, "bands and rows must be positive"),
        }
    }
}

impl std::error::Error for LshError {}

/// An immutable LSH index over a populated [`SketchStore`].
///
/// The index is a snapshot: vertices ingested after [`LshIndex::build`]
/// are not in the buckets (rebuild to include them). Querying never
/// misses vertices that were present at build time.
///
/// ```
/// use graphstream::VertexId;
/// use streamlink_core::{LshIndex, SketchConfig, SketchStore};
///
/// let mut store = SketchStore::new(SketchConfig::with_slots(64).seed(1));
/// for w in 100u64..120 {
///     store.insert_edge(VertexId(0), VertexId(w));
///     store.insert_edge(VertexId(1), VertexId(w)); // twin of vertex 0
/// }
/// let index = LshIndex::build(&store, 16, 4).unwrap();
/// let top = index.top_k(&store, VertexId(0), 3);
/// assert_eq!(top[0].0, VertexId(1));
/// ```
#[derive(Debug, Clone)]
pub struct LshIndex {
    bands: usize,
    rows: usize,
    /// One bucket table per band: signature → vertices.
    tables: Vec<HashMap<u64, Vec<VertexId>>>,
}

impl LshIndex {
    /// Builds the index from every vertex currently in `store`.
    ///
    /// # Errors
    /// [`LshError::NotEnoughSlots`] if `bands × rows` exceeds the store's
    /// slot count, [`LshError::ZeroParameter`] for zero parameters.
    pub fn build(store: &SketchStore, bands: usize, rows: usize) -> Result<Self, LshError> {
        if bands == 0 || rows == 0 {
            return Err(LshError::ZeroParameter);
        }
        let required = bands * rows;
        let available = store.config().slots();
        if required > available {
            return Err(LshError::NotEnoughSlots {
                required,
                available,
            });
        }
        let mut tables: Vec<HashMap<u64, Vec<VertexId>>> = vec![HashMap::new(); bands];
        let mut vertices: Vec<VertexId> = store.vertices().collect();
        vertices.sort_unstable(); // deterministic bucket order
        for v in vertices {
            let sketch = store.sketch(v).expect("vertex listed by the store");
            for (band, table) in tables.iter_mut().enumerate() {
                let sig = band_signature(sketch.slots(), band, rows);
                table.entry(sig).or_default().push(v);
            }
        }
        Ok(Self {
            bands,
            rows,
            tables,
        })
    }

    /// Number of bands.
    #[must_use]
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Rows (slots) per band.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The probability that a pair with Jaccard similarity `j` becomes a
    /// candidate: `1 − (1 − j^rows)^bands`.
    #[must_use]
    pub fn collision_probability(j: f64, bands: usize, rows: usize) -> f64 {
        debug_assert!((0.0..=1.0).contains(&j));
        1.0 - (1.0 - j.powi(rows as i32)).powi(bands as i32)
    }

    /// The similarity threshold where the S-curve is steepest:
    /// `(1/bands)^(1/rows)`.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows as f64)
    }

    /// All distinct vertices sharing at least one band with `u`
    /// (excluding `u` itself), in deterministic order. Empty if `u` was
    /// not indexed.
    #[must_use]
    pub fn candidates(&self, store: &SketchStore, u: VertexId) -> Vec<VertexId> {
        let Some(sketch) = store.sketch(u) else {
            return Vec::new();
        };
        let mut out: Vec<VertexId> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (band, table) in self.tables.iter().enumerate() {
            let sig = band_signature(sketch.slots(), band, self.rows);
            if let Some(bucket) = table.get(&sig) {
                for &v in bucket {
                    if v != u && seen.insert(v) {
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    /// The top `k` most similar vertices to `u` by estimated Jaccard,
    /// retrieved through the bands and ranked by the full sketch.
    /// Ties break toward the smaller vertex id.
    #[must_use]
    pub fn top_k(&self, store: &SketchStore, u: VertexId, k: usize) -> Vec<(VertexId, f64)> {
        let mut scored: Vec<(VertexId, f64)> = self
            .candidates(store, u)
            .into_iter()
            .filter_map(|v| store.jaccard(u, v).map(|j| (v, j)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    /// Total bucket entries across all bands (diagnostics / memory).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.tables
            .iter()
            .flat_map(HashMap::values)
            .map(Vec::len)
            .sum()
    }
}

/// Hashes `rows` consecutive slot minima starting at `band × rows` into a
/// 64-bit band signature.
fn band_signature(slots: &[crate::sketch::Slot], band: usize, rows: usize) -> u64 {
    let start = band * rows;
    let mut acc = 0x5BD1_E995u64 ^ (band as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for slot in &slots[start..start + rows] {
        acc = mix64(acc ^ slot.hash);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SketchConfig;
    use graphstream::{BarabasiAlbert, EdgeStream};

    /// Builds a store where vertices 0 and 1 overlap heavily, 2 is
    /// disjoint from both.
    fn clustered_store() -> SketchStore {
        let mut s = SketchStore::new(SketchConfig::with_slots(64).seed(3));
        for w in 100..130u64 {
            s.insert_edge(VertexId(0), VertexId(w));
            s.insert_edge(VertexId(1), VertexId(w));
        }
        for w in 500..530u64 {
            s.insert_edge(VertexId(2), VertexId(w));
        }
        s
    }

    #[test]
    fn high_overlap_pairs_are_candidates() {
        let store = clustered_store();
        let index = LshIndex::build(&store, 16, 4).unwrap();
        let cands = index.candidates(&store, VertexId(0));
        assert!(
            cands.contains(&VertexId(1)),
            "twin vertex missed: {cands:?}"
        );
    }

    #[test]
    fn disjoint_vertices_rarely_collide() {
        let store = clustered_store();
        let index = LshIndex::build(&store, 8, 8).unwrap();
        let cands = index.candidates(&store, VertexId(2));
        assert!(
            !cands.contains(&VertexId(0)) && !cands.contains(&VertexId(1)),
            "disjoint vertices collided: {cands:?}"
        );
    }

    #[test]
    fn top_k_ranks_twin_first() {
        let store = clustered_store();
        let index = LshIndex::build(&store, 16, 4).unwrap();
        let top = index.top_k(&store, VertexId(0), 3);
        assert_eq!(top.first().map(|&(v, _)| v), Some(VertexId(1)));
        assert!(top[0].1 > 0.9, "twin similarity {} too low", top[0].1);
    }

    #[test]
    fn unindexed_vertex_yields_empty() {
        let store = clustered_store();
        let index = LshIndex::build(&store, 4, 4).unwrap();
        assert!(index.candidates(&store, VertexId(9999)).is_empty());
        assert!(index.top_k(&store, VertexId(9999), 5).is_empty());
    }

    #[test]
    fn collision_probability_is_s_curve() {
        let (b, r) = (16usize, 4usize);
        // Monotone increasing in j.
        let mut last = -1.0;
        for i in 0..=10 {
            let j = f64::from(i) / 10.0;
            let p = LshIndex::collision_probability(j, b, r);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= last);
            last = p;
        }
        // Endpoints.
        assert_eq!(LshIndex::collision_probability(0.0, b, r), 0.0);
        assert_eq!(LshIndex::collision_probability(1.0, b, r), 1.0);
        // Steep around the threshold.
        let index = LshIndex::build(&SketchStore::new(SketchConfig::with_slots(64)), b, r).unwrap();
        let t = index.threshold();
        let below = LshIndex::collision_probability(t * 0.5, b, r);
        let above = LshIndex::collision_probability((t * 1.5).min(1.0), b, r);
        assert!(
            above - below > 0.5,
            "S-curve too shallow: {below} .. {above}"
        );
    }

    #[test]
    fn recall_of_true_top1_on_real_stream() {
        // For a sample of query vertices, the LSH top-k must contain the
        // vertex with the true highest sketch-estimated Jaccard.
        let stream = BarabasiAlbert::new(500, 4, 9);
        let mut store = SketchStore::new(SketchConfig::with_slots(128).seed(1));
        store.insert_stream(stream.edges());
        let index = LshIndex::build(&store, 32, 2).unwrap();

        let mut recalled = 0;
        let mut total = 0;
        for q in (0..100u64).step_by(10) {
            let q = VertexId(q);
            // Brute-force best neighbor by estimated jaccard.
            let best = store
                .vertices()
                .filter(|&v| v != q)
                .filter_map(|v| store.jaccard(q, v).map(|j| (v, j)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)));
            let Some((best_v, best_j)) = best else {
                continue;
            };
            if best_j == 0.0 {
                continue;
            }
            total += 1;
            let top = index.top_k(&store, q, 10);
            if top.iter().any(|&(v, j)| v == best_v || j >= best_j) {
                recalled += 1;
            }
        }
        assert!(total > 0);
        assert!(
            recalled * 10 >= total * 7,
            "LSH recall too low: {recalled}/{total}"
        );
    }

    #[test]
    fn errors_on_bad_parameters() {
        let store = SketchStore::new(SketchConfig::with_slots(16));
        match LshIndex::build(&store, 8, 4) {
            Err(LshError::NotEnoughSlots {
                required: 32,
                available: 16,
            }) => {}
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(
            LshIndex::build(&store, 0, 4).unwrap_err(),
            LshError::ZeroParameter
        );
    }

    #[test]
    fn deterministic_across_builds() {
        let store = clustered_store();
        let a = LshIndex::build(&store, 8, 4).unwrap();
        let b = LshIndex::build(&store, 8, 4).unwrap();
        assert_eq!(
            a.candidates(&store, VertexId(0)),
            b.candidates(&store, VertexId(0))
        );
        assert_eq!(a.entry_count(), b.entry_count());
    }
}
