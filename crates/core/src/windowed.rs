//! Sliding-window sketches: link prediction over *recent* structure.
//!
//! Long-running streams drift — a collaboration from a decade ago should
//! not dominate today's predictions. The abstract's "dynamically
//! evolving" setting naturally extends to sliding windows, and sketch
//! mergeability makes an epoch-based window cheap:
//!
//! * the window of the last `W` edges is partitioned into `E` epochs of
//!   `W/E` edges, each with its own [`SketchStore`];
//! * inserts go to the newest epoch only (same O(k) hot path);
//! * when an epoch fills, the oldest one is dropped — forgetting its
//!   edges wholesale;
//! * queries fold the ≤ `E` per-epoch sketches of each endpoint with the
//!   (exact) merge operator, so a query sees precisely the union of the
//!   window's edges.
//!
//! Because epoch merge is exact, a windowed query returns *the same
//! answer* a fresh store fed only the window's edges would return (up to
//! degree counters when the same edge appears in several epochs — see
//! [`WindowedStore::insert_edge`]). The tests verify that equivalence.

use std::collections::VecDeque;

use graphstream::{Edge, VertexId};

use crate::config::SketchConfig;
use crate::estimators;
use crate::sketch::VertexSketch;
use crate::store::SketchStore;

/// A sliding-window sketch store over the last `epochs × epoch_edges`
/// stream edges.
///
/// ```
/// use graphstream::VertexId;
/// use streamlink_core::{SketchConfig, WindowedStore};
///
/// // Window of 2 epochs x 4 edges = the last ~8 edges.
/// let mut w = WindowedStore::new(SketchConfig::with_slots(16), 4, 2);
/// w.insert_edge(VertexId(1), VertexId(2));
/// assert!(w.jaccard(VertexId(1), VertexId(2)).is_some());
/// // Flood the window with unrelated edges; the old pair ages out.
/// for i in 0..8u64 {
///     w.insert_edge(VertexId(100 + i), VertexId(200 + i));
/// }
/// assert_eq!(w.jaccard(VertexId(1), VertexId(2)), None);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedStore {
    config: SketchConfig,
    epoch_edges: u64,
    max_epochs: usize,
    /// Oldest epoch first, newest last; never empty.
    epochs: VecDeque<SketchStore>,
    edges_processed: u64,
}

impl WindowedStore {
    /// A window of `epochs` epochs of `epoch_edges` edges each.
    ///
    /// The effective window length slides between
    /// `(epochs − 1) × epoch_edges` and `epochs × epoch_edges` edges —
    /// the standard epoch-granularity approximation.
    ///
    /// # Panics
    /// Panics if `epoch_edges == 0` or `epochs == 0`.
    #[must_use]
    pub fn new(config: SketchConfig, epoch_edges: u64, epochs: usize) -> Self {
        assert!(epoch_edges > 0, "epochs must hold at least one edge");
        assert!(epochs > 0, "need at least one epoch");
        let mut queue = VecDeque::with_capacity(epochs + 1);
        queue.push_back(SketchStore::new(config));
        Self {
            config,
            epoch_edges,
            max_epochs: epochs,
            epochs: queue,
            edges_processed: 0,
        }
    }

    /// Processes one stream edge.
    ///
    /// ## Degree semantics and the exact over-count bound
    ///
    /// A vertex's window degree is summed across live epochs, so an edge
    /// re-delivered in several epochs contributes once *per epoch that
    /// witnessed it* (the sketches themselves stay exact — min-folding
    /// is idempotent). This is a deliberate pinned behavior, not an
    /// accident; deduplicating at fold time is impossible without
    /// storing per-epoch neighbor sets, which would break the constant
    /// space-per-vertex contract.
    ///
    /// The error is therefore exactly characterized: for a vertex `v`,
    ///
    /// ```text
    /// degree(v) = true_window_degree(v) + Σ_e (epochs_live(e, v) − 1)
    /// ```
    ///
    /// summed over `v`'s distinct window edges `e`, where
    /// `epochs_live(e, v)` is the number of *live* epochs that received
    /// a delivery of `e`. A window whose feed delivers each edge once
    /// (the simple-graph stream contract) has zero error; an
    /// at-least-once feed over-counts each duplicated edge by at most
    /// `epochs − 1`. Degrees feed the CN/AA scale factors linearly, so
    /// estimates inflate by the same ratio; feeds with heavy
    /// re-delivery should dedup upstream or use
    /// [`crate::robust::RobustStore`] semantics per epoch.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        let newest = self.epochs.back_mut().expect("queue never empty");
        newest.insert_edge(u, v);
        self.edges_processed += 1;
        if newest.edges_processed() >= self.epoch_edges {
            self.epochs.push_back(SketchStore::new(self.config));
            while self.epochs.len() > self.max_epochs {
                self.epochs.pop_front();
            }
        }
    }

    /// Processes a whole stream (or prefix).
    pub fn insert_stream(&mut self, edges: impl IntoIterator<Item = Edge>) {
        for e in edges {
            self.insert_edge(e.src, e.dst);
        }
    }

    /// The merged window sketch of `v`, or `None` if `v` is absent from
    /// every live epoch.
    #[must_use]
    pub fn window_sketch(&self, v: VertexId) -> Option<VertexSketch> {
        let mut merged: Option<VertexSketch> = None;
        for epoch in &self.epochs {
            if let Some(s) = epoch.sketch(v) {
                match &mut merged {
                    Some(m) => m.merge(s),
                    None => merged = Some(s.clone()),
                }
            }
        }
        merged
    }

    /// The window degree of `v` (sum across epochs; 0 if absent).
    ///
    /// An edge delivered to several live epochs counts once per epoch —
    /// see [`WindowedStore::insert_edge`] for the exact bound.
    #[must_use]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.epochs.iter().map(|e| e.degree(v)).sum()
    }

    /// Estimated Jaccard over the window.
    #[must_use]
    pub fn jaccard(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (su, sv) = (self.window_sketch(u)?, self.window_sketch(v)?);
        Some(estimators::jaccard_from_matches(
            su.match_count(&sv),
            self.config.slots(),
        ))
    }

    /// Estimated common-neighbor count over the window.
    #[must_use]
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let j = self.jaccard(u, v)?;
        Some(estimators::cn_from_jaccard(
            j,
            self.degree(u),
            self.degree(v),
        ))
    }

    /// Estimated Adamic–Adar over the window (match-sampling, window
    /// degrees).
    #[must_use]
    pub fn adamic_adar(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (su, sv) = (self.window_sketch(u)?, self.window_sketch(v)?);
        let matches = su.match_count(&sv);
        let j = estimators::jaccard_from_matches(matches, self.config.slots());
        let cn = estimators::cn_from_jaccard(j, self.degree(u), self.degree(v));
        let sampled: Vec<u64> = su.matched_samples(&sv).map(|w| self.degree(w)).collect();
        Some(estimators::aa_from_samples(cn, &sampled))
    }

    /// Number of live epochs.
    #[must_use]
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Edges processed over the store's lifetime (not just the window).
    #[must_use]
    pub fn edges_processed(&self) -> u64 {
        self.edges_processed
    }

    /// Approximate resident bytes (sum of live epochs).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.epochs.iter().map(SketchStore::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstream::{BarabasiAlbert, EdgeStream};

    fn cfg() -> SketchConfig {
        SketchConfig::with_slots(64).seed(5)
    }

    #[test]
    fn window_matches_fresh_store_over_window_edges() {
        // Feed 5 epochs of 100 edges into a 3-epoch window; compare
        // against a plain store fed only the last 3 epochs' edges.
        let edges: Vec<Edge> = BarabasiAlbert::new(300, 2, 7).edges().take(500).collect();
        let mut windowed = WindowedStore::new(cfg(), 100, 3);
        windowed.insert_stream(edges.iter().copied());

        // Live epochs hold edges [300..500) plus the fresh empty epoch.
        let window_edges = &edges[300..500];
        let mut fresh = SketchStore::new(cfg());
        fresh.insert_stream(window_edges.iter().copied());

        for v in fresh.vertices() {
            assert_eq!(
                windowed.window_sketch(v).as_ref(),
                fresh.sketch(v),
                "window sketch diverged at {v}"
            );
            assert_eq!(
                windowed.degree(v),
                fresh.degree(v),
                "degree diverged at {v}"
            );
        }
        // And therefore identical query answers.
        let mut verts: Vec<VertexId> = fresh.vertices().collect();
        verts.sort_unstable();
        for w in verts.windows(2).take(50) {
            assert_eq!(windowed.jaccard(w[0], w[1]), fresh.jaccard(w[0], w[1]));
        }
    }

    #[test]
    fn old_edges_are_forgotten() {
        let mut windowed = WindowedStore::new(cfg(), 10, 2);
        // Vertex 1's only activity is in the first epoch.
        for w in 0..10u64 {
            windowed.insert_edge(VertexId(1), VertexId(100 + w));
        }
        assert!(windowed.window_sketch(VertexId(1)).is_some());
        // Flood two more epochs of unrelated traffic.
        for i in 0..20u64 {
            windowed.insert_edge(VertexId(5000 + i), VertexId(6000 + i));
        }
        assert!(
            windowed.window_sketch(VertexId(1)).is_none(),
            "vertex 1 should have aged out"
        );
        assert_eq!(windowed.degree(VertexId(1)), 0);
        assert_eq!(windowed.jaccard(VertexId(1), VertexId(5000)), None);
    }

    #[test]
    fn duplicate_edge_across_epochs_pins_documented_degree_bound() {
        // Pin the documented behavior: an edge delivered in two live
        // epochs contributes one degree per epoch, while the merged
        // window sketch stays identical to a dedup'd store's.
        let mut windowed = WindowedStore::new(cfg(), 4, 3);
        windowed.insert_edge(VertexId(1), VertexId(2));
        // Fill the rest of epoch 0 and roll into epoch 1.
        for i in 0..3u64 {
            windowed.insert_edge(VertexId(100 + i), VertexId(200 + i));
        }
        assert_eq!(windowed.epoch_count(), 2);
        // Same edge again, now landing in the second live epoch.
        windowed.insert_edge(VertexId(1), VertexId(2));

        // degree = true_window_degree (1) + (epochs_live − 1) (1) = 2.
        assert_eq!(windowed.degree(VertexId(1)), 2);
        assert_eq!(windowed.degree(VertexId(2)), 2);

        // Sketches are idempotent: the merged window sketch equals a
        // fresh store's that saw the edge once.
        let mut dedup = SketchStore::new(cfg());
        dedup.insert_edge(VertexId(1), VertexId(2));
        assert_eq!(
            windowed.window_sketch(VertexId(1)).as_ref(),
            dedup.sketch(VertexId(1))
        );
        // Jaccard (sketch-only) is unaffected by the duplicate...
        assert_eq!(
            windowed.jaccard(VertexId(1), VertexId(2)),
            dedup.jaccard(VertexId(1), VertexId(2))
        );
        // ...while CN inflates through the degree scale factor, exactly
        // as documented (degrees 2/2 instead of 1/1 double the d(u)+d(v)
        // term).
        let windowed_cn = windowed.common_neighbors(VertexId(1), VertexId(2)).unwrap();
        let dedup_cn = dedup.common_neighbors(VertexId(1), VertexId(2)).unwrap();
        assert!(
            (windowed_cn - 2.0 * dedup_cn).abs() < 1e-12,
            "CN inflation should track the degree ratio: {windowed_cn} vs {dedup_cn}"
        );
    }

    #[test]
    fn epoch_count_is_bounded() {
        let mut windowed = WindowedStore::new(cfg(), 5, 4);
        for i in 0..200u64 {
            windowed.insert_edge(VertexId(i), VertexId(i + 1));
        }
        assert!(windowed.epoch_count() <= 4);
        assert_eq!(windowed.edges_processed(), 200);
    }

    #[test]
    fn memory_is_window_bounded_not_stream_bounded() {
        // A long stream over a *fixed* recent vertex set: memory must
        // plateau once the window is full.
        let mut windowed = WindowedStore::new(cfg(), 50, 2);
        let mut peak_after_warmup = 0usize;
        for i in 0..2_000u64 {
            // Rotating vertex ids confined to a window-sized range.
            let base = (i / 50) * 10;
            windowed.insert_edge(VertexId(base), VertexId(base + 1 + i % 9));
            if i == 200 {
                peak_after_warmup = windowed.memory_bytes();
            }
        }
        assert!(peak_after_warmup > 0);
        assert!(
            windowed.memory_bytes() < peak_after_warmup * 4,
            "window memory drifted: {} vs {}",
            windowed.memory_bytes(),
            peak_after_warmup
        );
    }

    #[test]
    fn single_epoch_window_equals_plain_store_until_rotation() {
        let mut windowed = WindowedStore::new(cfg(), 1_000, 1);
        let mut plain = SketchStore::new(cfg());
        for i in 0..500u64 {
            windowed.insert_edge(VertexId(i % 50), VertexId(50 + i % 70));
            plain.insert_edge(VertexId(i % 50), VertexId(50 + i % 70));
        }
        for v in plain.vertices() {
            assert_eq!(windowed.window_sketch(v).as_ref(), plain.sketch(v));
        }
    }

    #[test]
    fn recent_overlap_is_detected() {
        let mut windowed = WindowedStore::new(cfg(), 100, 2);
        for w in 0..30u64 {
            windowed.insert_edge(VertexId(1), VertexId(100 + w));
            windowed.insert_edge(VertexId(2), VertexId(100 + w));
        }
        let j = windowed.jaccard(VertexId(1), VertexId(2)).unwrap();
        assert!(j > 0.9, "recent twin similarity {j}");
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_epoch_size_rejected() {
        let _ = WindowedStore::new(cfg(), 0, 2);
    }
}
