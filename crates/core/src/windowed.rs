//! Sliding-window sketches: link prediction over *recent* structure.
//!
//! Long-running streams drift — a collaboration from a decade ago should
//! not dominate today's predictions. The abstract's "dynamically
//! evolving" setting naturally extends to sliding windows, and sketch
//! mergeability makes an epoch-based window cheap:
//!
//! * the window of the last `W` edges is partitioned into `E` epochs of
//!   `W/E` edges, each with its own [`SketchStore`];
//! * inserts go to the newest epoch only (same O(k) hot path);
//! * when an epoch fills, the oldest one is dropped — forgetting its
//!   edges wholesale;
//! * queries fold the ≤ `E` per-epoch sketches of each endpoint with the
//!   (exact) merge operator, so a query sees precisely the union of the
//!   window's edges.
//!
//! Because epoch merge is exact, a windowed query returns *the same
//! answer* a fresh store fed only the window's edges would return — and
//! since the store dedups re-delivered edges across live epochs (see
//! [`WindowedStore::insert_edge`]), that holds for degrees too, even
//! under at-least-once delivery. The tests verify that equivalence.

use std::collections::{HashSet, VecDeque};

use graphstream::{Edge, VertexId};

use crate::config::SketchConfig;
use crate::estimators;
use crate::sketch::VertexSketch;
use crate::store::SketchStore;

/// A sliding-window sketch store over the last `epochs × epoch_edges`
/// stream edges.
///
/// ```
/// use graphstream::VertexId;
/// use streamlink_core::{SketchConfig, WindowedStore};
///
/// // Window of 2 epochs x 4 edges = the last ~8 edges.
/// let mut w = WindowedStore::new(SketchConfig::with_slots(16), 4, 2);
/// w.insert_edge(VertexId(1), VertexId(2));
/// assert!(w.jaccard(VertexId(1), VertexId(2)).is_some());
/// // Flood the window with unrelated edges; the old pair ages out.
/// for i in 0..8u64 {
///     w.insert_edge(VertexId(100 + i), VertexId(200 + i));
/// }
/// assert_eq!(w.jaccard(VertexId(1), VertexId(2)), None);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedStore {
    config: SketchConfig,
    epoch_edges: u64,
    max_epochs: usize,
    /// Oldest epoch first, newest last; never empty.
    epochs: VecDeque<Epoch>,
    edges_processed: u64,
}

/// One window epoch: its sketch store plus the set of edges it applied,
/// which gates cross-epoch re-deliveries (see
/// [`WindowedStore::insert_edge`]).
#[derive(Debug, Clone)]
struct Epoch {
    store: SketchStore,
    /// Normalized `(min, max)` endpoint pairs of every edge this epoch
    /// applied. One 16-byte key per distinct window edge — bounded by
    /// the window length, independent of the stream length.
    seen: HashSet<(u64, u64)>,
}

impl Epoch {
    fn new(config: SketchConfig) -> Self {
        Self {
            store: SketchStore::new(config),
            seen: HashSet::new(),
        }
    }

    fn memory_bytes(&self) -> usize {
        self.store.memory_bytes() + self.seen.capacity() * std::mem::size_of::<(u64, u64)>()
    }
}

/// The undirected dedup key of an edge.
fn edge_key(u: VertexId, v: VertexId) -> (u64, u64) {
    if u.0 <= v.0 {
        (u.0, v.0)
    } else {
        (v.0, u.0)
    }
}

impl WindowedStore {
    /// A window of `epochs` epochs of `epoch_edges` edges each.
    ///
    /// The effective window length slides between
    /// `(epochs − 1) × epoch_edges` and `epochs × epoch_edges` edges —
    /// the standard epoch-granularity approximation.
    ///
    /// # Panics
    /// Panics if `epoch_edges == 0` or `epochs == 0`.
    #[must_use]
    pub fn new(config: SketchConfig, epoch_edges: u64, epochs: usize) -> Self {
        assert!(epoch_edges > 0, "epochs must hold at least one edge");
        assert!(epochs > 0, "need at least one epoch");
        let mut queue = VecDeque::with_capacity(epochs + 1);
        queue.push_back(Epoch::new(config));
        Self {
            config,
            epoch_edges,
            max_epochs: epochs,
            epochs: queue,
            edges_processed: 0,
        }
    }

    /// Processes one stream edge.
    ///
    /// ## Degree semantics under re-delivery
    ///
    /// A vertex's window degree is summed across live epochs, so it
    /// would over-count if the same edge landed in several epochs. To
    /// keep degrees *exact* under at-least-once delivery, each epoch
    /// remembers the (normalized) edges it applied, and an insert whose
    /// edge is already present in **any** live epoch is a no-op — the
    /// re-delivery is anchored at the edge's first (most recent live)
    /// delivery rather than refreshing it. Once the edge ages out with
    /// its epoch, a new delivery is a genuinely new window edge again.
    ///
    /// Two consequences, both deliberate:
    ///
    /// * the window spans the last `W` *distinct* edges — duplicate
    ///   deliveries do not advance epoch rotation;
    /// * the seen-sets cost one 16-byte key per live window edge —
    ///   `O(W)` total, independent of the stream length (the per-vertex
    ///   sketch space contract is untouched).
    ///
    /// The dedup probe is `O(epochs)` hash lookups per insert, in front
    /// of the `O(k)` fold hot path.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges_processed += 1;
        let key = edge_key(u, v);
        if self.epochs.iter().any(|e| e.seen.contains(&key)) {
            return; // re-delivery of a live edge: exact no-op
        }
        let newest = self.epochs.back_mut().expect("queue never empty");
        newest.seen.insert(key);
        newest.store.insert_edge(u, v);
        if newest.store.edges_processed() >= self.epoch_edges {
            self.epochs.push_back(Epoch::new(self.config));
            while self.epochs.len() > self.max_epochs {
                self.epochs.pop_front();
            }
        }
    }

    /// Processes a whole stream (or prefix).
    pub fn insert_stream(&mut self, edges: impl IntoIterator<Item = Edge>) {
        for e in edges {
            self.insert_edge(e.src, e.dst);
        }
    }

    /// The merged window sketch of `v`, or `None` if `v` is absent from
    /// every live epoch.
    #[must_use]
    pub fn window_sketch(&self, v: VertexId) -> Option<VertexSketch> {
        let mut merged: Option<VertexSketch> = None;
        for epoch in &self.epochs {
            if let Some(s) = epoch.store.sketch(v) {
                match &mut merged {
                    Some(m) => m.merge(s),
                    None => merged = Some(s.clone()),
                }
            }
        }
        merged
    }

    /// The window degree of `v` (sum across epochs; 0 if absent).
    ///
    /// Exact over the window's distinct edges, even under at-least-once
    /// delivery — cross-epoch re-deliveries are no-ops (see
    /// [`WindowedStore::insert_edge`]).
    #[must_use]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.epochs.iter().map(|e| e.store.degree(v)).sum()
    }

    /// Estimated Jaccard over the window.
    #[must_use]
    pub fn jaccard(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (su, sv) = (self.window_sketch(u)?, self.window_sketch(v)?);
        Some(estimators::jaccard_from_matches(
            su.match_count(&sv),
            self.config.slots(),
        ))
    }

    /// Estimated common-neighbor count over the window.
    #[must_use]
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let j = self.jaccard(u, v)?;
        Some(estimators::cn_from_jaccard(
            j,
            self.degree(u),
            self.degree(v),
        ))
    }

    /// Estimated Adamic–Adar over the window (match-sampling, window
    /// degrees).
    #[must_use]
    pub fn adamic_adar(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let (su, sv) = (self.window_sketch(u)?, self.window_sketch(v)?);
        let matches = su.match_count(&sv);
        let j = estimators::jaccard_from_matches(matches, self.config.slots());
        let cn = estimators::cn_from_jaccard(j, self.degree(u), self.degree(v));
        let sampled: Vec<u64> = su.matched_samples(&sv).map(|w| self.degree(w)).collect();
        Some(estimators::aa_from_samples(cn, &sampled))
    }

    /// Number of live epochs.
    #[must_use]
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Edges processed over the store's lifetime (not just the window).
    #[must_use]
    pub fn edges_processed(&self) -> u64 {
        self.edges_processed
    }

    /// Approximate resident bytes (sum of live epochs, sketch stores
    /// plus the per-epoch dedup sets).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.epochs.iter().map(Epoch::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstream::{BarabasiAlbert, EdgeStream};

    fn cfg() -> SketchConfig {
        SketchConfig::with_slots(64).seed(5)
    }

    #[test]
    fn window_matches_fresh_store_over_window_edges() {
        // Feed 5 epochs of 100 edges into a 3-epoch window; compare
        // against a plain store fed only the last 3 epochs' edges.
        let edges: Vec<Edge> = BarabasiAlbert::new(300, 2, 7).edges().take(500).collect();
        let mut windowed = WindowedStore::new(cfg(), 100, 3);
        windowed.insert_stream(edges.iter().copied());

        // Live epochs hold edges [300..500) plus the fresh empty epoch.
        let window_edges = &edges[300..500];
        let mut fresh = SketchStore::new(cfg());
        fresh.insert_stream(window_edges.iter().copied());

        for v in fresh.vertices() {
            assert_eq!(
                windowed.window_sketch(v).as_ref(),
                fresh.sketch(v),
                "window sketch diverged at {v}"
            );
            assert_eq!(
                windowed.degree(v),
                fresh.degree(v),
                "degree diverged at {v}"
            );
        }
        // And therefore identical query answers.
        let mut verts: Vec<VertexId> = fresh.vertices().collect();
        verts.sort_unstable();
        for w in verts.windows(2).take(50) {
            assert_eq!(windowed.jaccard(w[0], w[1]), fresh.jaccard(w[0], w[1]));
        }
    }

    #[test]
    fn old_edges_are_forgotten() {
        let mut windowed = WindowedStore::new(cfg(), 10, 2);
        // Vertex 1's only activity is in the first epoch.
        for w in 0..10u64 {
            windowed.insert_edge(VertexId(1), VertexId(100 + w));
        }
        assert!(windowed.window_sketch(VertexId(1)).is_some());
        // Flood two more epochs of unrelated traffic.
        for i in 0..20u64 {
            windowed.insert_edge(VertexId(5000 + i), VertexId(6000 + i));
        }
        assert!(
            windowed.window_sketch(VertexId(1)).is_none(),
            "vertex 1 should have aged out"
        );
        assert_eq!(windowed.degree(VertexId(1)), 0);
        assert_eq!(windowed.jaccard(VertexId(1), VertexId(5000)), None);
    }

    #[test]
    fn duplicate_edge_across_epochs_does_not_overcount_degrees() {
        // An edge re-delivered while still live in an older epoch is a
        // no-op: degrees stay exact and every estimator matches a
        // dedup'd store's answer.
        let mut windowed = WindowedStore::new(cfg(), 4, 3);
        windowed.insert_edge(VertexId(1), VertexId(2));
        // Fill the rest of epoch 0 and roll into epoch 1.
        for i in 0..3u64 {
            windowed.insert_edge(VertexId(100 + i), VertexId(200 + i));
        }
        assert_eq!(windowed.epoch_count(), 2);
        // Same edge again (both orientations), landing while epoch 0 is
        // still live: both are exact no-ops.
        windowed.insert_edge(VertexId(1), VertexId(2));
        windowed.insert_edge(VertexId(2), VertexId(1));

        // Exact window degrees: the edge counts once.
        assert_eq!(windowed.degree(VertexId(1)), 1);
        assert_eq!(windowed.degree(VertexId(2)), 1);
        // The lifetime delivery counter still counts every delivery.
        assert_eq!(windowed.edges_processed(), 6);

        // Every estimator now matches a store that saw the edge once.
        let mut dedup = SketchStore::new(cfg());
        dedup.insert_edge(VertexId(1), VertexId(2));
        assert_eq!(
            windowed.window_sketch(VertexId(1)).as_ref(),
            dedup.sketch(VertexId(1))
        );
        assert_eq!(
            windowed.jaccard(VertexId(1), VertexId(2)),
            dedup.jaccard(VertexId(1), VertexId(2))
        );
        assert_eq!(
            windowed.common_neighbors(VertexId(1), VertexId(2)),
            dedup.common_neighbors(VertexId(1), VertexId(2))
        );
        assert_eq!(
            windowed.adamic_adar(VertexId(1), VertexId(2)),
            dedup.adamic_adar(VertexId(1), VertexId(2))
        );
    }

    #[test]
    fn forgotten_edge_recounts_after_aging_out() {
        // Once an edge's epoch is evicted, a new delivery is a genuine
        // window edge again — dedup gates only *live* epochs.
        let mut windowed = WindowedStore::new(cfg(), 4, 2);
        windowed.insert_edge(VertexId(1), VertexId(2));
        // Two full epochs of unrelated traffic evict epoch 0.
        for i in 0..8u64 {
            windowed.insert_edge(VertexId(100 + i), VertexId(200 + i));
        }
        assert_eq!(windowed.degree(VertexId(1)), 0);
        windowed.insert_edge(VertexId(1), VertexId(2));
        assert_eq!(windowed.degree(VertexId(1)), 1);
        assert_eq!(windowed.degree(VertexId(2)), 1);
    }

    #[test]
    fn epoch_count_is_bounded() {
        let mut windowed = WindowedStore::new(cfg(), 5, 4);
        for i in 0..200u64 {
            windowed.insert_edge(VertexId(i), VertexId(i + 1));
        }
        assert!(windowed.epoch_count() <= 4);
        assert_eq!(windowed.edges_processed(), 200);
    }

    #[test]
    fn memory_is_window_bounded_not_stream_bounded() {
        // A long stream over a *fixed* recent vertex set: memory must
        // plateau once the window is full.
        let mut windowed = WindowedStore::new(cfg(), 50, 2);
        let mut peak_after_warmup = 0usize;
        for i in 0..2_000u64 {
            // Rotating vertex ids confined to a window-sized range.
            let base = (i / 50) * 10;
            windowed.insert_edge(VertexId(base), VertexId(base + 1 + i % 9));
            if i == 200 {
                peak_after_warmup = windowed.memory_bytes();
            }
        }
        assert!(peak_after_warmup > 0);
        assert!(
            windowed.memory_bytes() < peak_after_warmup * 4,
            "window memory drifted: {} vs {}",
            windowed.memory_bytes(),
            peak_after_warmup
        );
    }

    #[test]
    fn single_epoch_window_equals_plain_store_until_rotation() {
        let mut windowed = WindowedStore::new(cfg(), 1_000, 1);
        let mut plain = SketchStore::new(cfg());
        for i in 0..500u64 {
            windowed.insert_edge(VertexId(i % 50), VertexId(50 + i % 70));
            plain.insert_edge(VertexId(i % 50), VertexId(50 + i % 70));
        }
        for v in plain.vertices() {
            assert_eq!(windowed.window_sketch(v).as_ref(), plain.sketch(v));
        }
    }

    #[test]
    fn recent_overlap_is_detected() {
        let mut windowed = WindowedStore::new(cfg(), 100, 2);
        for w in 0..30u64 {
            windowed.insert_edge(VertexId(1), VertexId(100 + w));
            windowed.insert_edge(VertexId(2), VertexId(100 + w));
        }
        let j = windowed.jaccard(VertexId(1), VertexId(2)).unwrap();
        assert!(j > 0.9, "recent twin similarity {j}");
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_epoch_size_rejected() {
        let _ = WindowedStore::new(cfg(), 0, 2);
    }
}
