//! Cross-crate integration tests for the extension features: compressed
//! replicas, robust degrees, windows, LSH and ensembles composed over
//! the dataset suite through the public facade.

use streamlink::data::{Scale, SimulatedDataset};
use streamlink::predict::evaluate::sample_overlap_pairs;
use streamlink::predict::{EnsembleScorer, ExactScorer, Measure, Scorer, SketchScorer};
use streamlink::prelude::*;
use streamlink::sketch::{CompressedStore, LshIndex, RobustStore, WindowedStore};
use streamlink::stream::adapters::NoiseInjector;
use streamlink::stream::EdgeStream;

/// Full replication pipeline: ingest → compress at several b → ship as
/// JSON → restore → query; accuracy must degrade gracefully with b.
#[test]
fn compressed_replica_pipeline() {
    let stream = SimulatedDataset::DblpLike.stream(Scale::Small);
    let mut builder = SketchStore::new(SketchConfig::with_slots(256).seed(3));
    builder.insert_stream(stream.edges());
    let exact = ExactScorer::from_edges(stream.edges());
    let pairs = sample_overlap_pairs(exact.graph(), 150, 5);

    let mut last_mae = f64::INFINITY;
    for b in [2u8, 8] {
        let replica = CompressedStore::from_store(&builder, b);
        // Ship through serialization, as a replica deployment would.
        let bytes = serde_json::to_vec(&replica).unwrap();
        let restored: CompressedStore = serde_json::from_slice(&bytes).unwrap();

        let mut err = 0.0;
        for &(u, v) in &pairs {
            let truth = exact.score(Measure::Jaccard, u, v).unwrap();
            err += (restored.jaccard(u, v).unwrap() - truth).abs();
        }
        let mae = err / pairs.len() as f64;
        assert!(
            mae < last_mae + 0.005,
            "b = {b} worse than smaller b: {mae}"
        );
        assert!(mae < 0.06, "b = {b}: MAE {mae} too high");
        last_mae = mae;
    }
}

/// Robust store under a fully duplicated dataset stream: CN tracks the
/// clean-stream plain store.
#[test]
fn robust_store_on_duplicated_dataset() {
    let clean = SimulatedDataset::YoutubeLike.stream(Scale::Small);
    let injector = NoiseInjector {
        duplicate_prob: 1.0,
        ..NoiseInjector::clean(11)
    };
    let noisy = injector.apply(&clean);

    let cfg = SketchConfig::with_slots(256).seed(2);
    let mut truth = SketchStore::new(cfg);
    truth.insert_stream(clean.edges());
    let mut robust = RobustStore::new(cfg, 10);
    robust.insert_stream(noisy.as_slice().iter().copied());

    let mut err = 0.0;
    let mut n = 0;
    for u in 0..60u64 {
        for v in (u + 1)..60u64 {
            let (u, v) = (VertexId(u), VertexId(v));
            if let (Some(t), Some(r)) =
                (truth.common_neighbors(u, v), robust.common_neighbors(u, v))
            {
                err += (t - r).abs();
                n += 1;
            }
        }
    }
    assert!(n > 100);
    assert!(
        err / f64::from(n) < 0.5,
        "robust CN drifted: {}",
        err / f64::from(n)
    );
}

/// Windowed store over a dataset stream answers exactly like a fresh
/// store over the live window (public-API version of the core test).
#[test]
fn windowed_equivalence_on_dataset() {
    let stream = SimulatedDataset::WikiTalkLike.stream(Scale::Small);
    let edges = stream.as_slice();
    let cfg = SketchConfig::with_slots(64).seed(9);
    let epoch = 200u64;
    let mut windowed = WindowedStore::new(cfg, epoch, 3);
    for e in edges {
        windowed.insert_edge(e.src, e.dst);
    }
    let n = edges.len() as u64;
    let kept = (2 * epoch).min((n / epoch) * epoch) + n % epoch;
    let suffix = &edges[(n - kept) as usize..];
    let mut fresh = SketchStore::new(cfg);
    fresh.insert_stream(suffix.iter().copied());
    for v in fresh.vertices().take(100) {
        let ws = windowed.window_sketch(v);
        assert_eq!(ws.as_ref(), fresh.sketch(v), "window mismatch at {v}");
    }
}

/// LSH + ensemble compose: retrieve candidates by similarity, re-rank
/// with a calibrated multi-measure ensemble.
#[test]
fn lsh_retrieval_with_ensemble_reranking() {
    let stream = SimulatedDataset::DblpLike.stream(Scale::Small);
    let mut store = SketchStore::new(SketchConfig::with_slots(128).seed(7));
    store.insert_stream(stream.edges());
    let index = LshIndex::build(&store, 48, 2).unwrap();
    let sketch = SketchScorer::new(store.clone());
    let calibration = {
        let exact = ExactScorer::from_edges(stream.edges());
        sample_overlap_pairs(exact.graph(), 200, 1)
    };
    let ensemble = EnsembleScorer::calibrated(
        &sketch,
        &[Measure::Jaccard, Measure::AdamicAdar],
        &calibration,
    );

    let mut reranked_any = false;
    for q in store.vertices().take(20) {
        let candidates = index.candidates(&store, q);
        let mut scored: Vec<(VertexId, f64)> = candidates
            .into_iter()
            .filter_map(|c| ensemble.score(Measure::Jaccard, q, c).map(|s| (c, s)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        if scored.len() >= 2 {
            reranked_any = true;
            assert!(scored[0].1 >= scored[1].1);
            assert!(scored.iter().all(|(_, s)| s.is_finite()));
        }
    }
    assert!(reranked_any, "no query produced multiple candidates");
}
