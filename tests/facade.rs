//! The facade crate's prelude must stay sufficient for the README
//! quickstart — this test is the compile-time contract for the public
//! entry path a new user takes.

use streamlink::prelude::*;

#[test]
fn readme_quickstart_compiles_and_runs() {
    let mut store = SketchStore::new(SketchConfig::with_slots(64).seed(7));
    for edge in BarabasiAlbert::new(500, 3, 42).edges() {
        store.insert_edge(edge.src, edge.dst);
    }
    let (u, v) = (VertexId(1), VertexId(2));
    assert!(store.jaccard(u, v).is_some());
    assert!(store.common_neighbors(u, v).is_some());
    assert!(store.adamic_adar(u, v).is_some());
}

#[test]
fn prelude_covers_the_evaluation_path() {
    let stream = ErdosRenyi::new(100, 300, 1);
    let exact = ExactScorer::from_edges(stream.edges());
    for m in Measure::PAPER_TARGETS {
        assert!(exact.score(m, VertexId(0), VertexId(1)).is_some());
    }
    let edges: Vec<Edge> = stream.edges().collect();
    assert_eq!(edges.len(), 300);
    let g = AdjacencyGraph::from_edges(edges);
    assert_eq!(g.edge_count(), 300);
}

#[test]
fn module_aliases_resolve() {
    // The five documented module aliases of the facade.
    let _ = streamlink::hash::mix64(1);
    let _ = streamlink::stream::VertexId(1);
    let _ = streamlink::sketch::SketchConfig::with_slots(4);
    let _ = streamlink::predict::Measure::Jaccard;
    let _ = streamlink::data::SimulatedDataset::ALL;
}

#[test]
fn all_datasets_reachable_from_facade() {
    use streamlink::data::{Scale, SimulatedDataset};
    assert_eq!(SimulatedDataset::ALL.len(), 5);
    for d in SimulatedDataset::ALL {
        assert!(!d.stream(Scale::Small).is_empty(), "{d} produced no edges");
    }
}
