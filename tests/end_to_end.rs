//! Cross-crate integration tests: full pipelines from stream generation
//! through sketching to evaluation, exercising the public API the way the
//! examples and experiment harness do.

use streamlink::data::{Scale, SimulatedDataset};
use streamlink::predict::evaluate::{estimation_report, sample_overlap_pairs};
use streamlink::predict::{Evaluator, ExactScorer, Measure, ReservoirScorer, Scorer, SketchScorer};
use streamlink::prelude::*;
use streamlink::sketch::parallel::ingest_parallel;
use streamlink::sketch::snapshot::StoreSnapshot;
use streamlink::stream::{EdgeStream, WattsStrogatz};

/// The full paper pipeline on every dataset: generate → sketch → compare
/// against exact ground truth. Jaccard MAE must be small at k = 256.
#[test]
fn sketch_tracks_exact_on_every_dataset() {
    for dataset in SimulatedDataset::ALL {
        let stream = dataset.stream(Scale::Small);
        let exact = ExactScorer::from_edges(stream.edges());
        let mut store = SketchStore::new(SketchConfig::with_slots(256).seed(1));
        store.insert_stream(stream.edges());
        let sketch = SketchScorer::new(store);

        let pairs = sample_overlap_pairs(exact.graph(), 200, 7);
        assert!(!pairs.is_empty(), "{dataset}: no overlap pairs");
        let report = estimation_report(&sketch, &exact, Measure::Jaccard, &pairs);
        assert!(
            report.mae < 0.06,
            "{dataset}: Jaccard MAE {} too high at k = 256",
            report.mae
        );
        assert!(
            report.kendall_tau.unwrap_or(0.0) > 0.2,
            "{dataset}: rank correlation lost ({:?})",
            report.kendall_tau
        );
    }
}

/// Temporal prediction: the sketch scorer's AUC must track the exact
/// scorer's AUC on a clustered stream for all three paper measures.
#[test]
fn sketch_auc_tracks_exact_auc() {
    let stream = WattsStrogatz::new(500, 8, 0.1, 3);
    let evaluator = Evaluator::new(&stream, 0.8, 3, 5);
    assert!(evaluator.positives().len() > 30);

    let exact = ExactScorer::from_edges(evaluator.train().edges());
    let mut store = SketchStore::new(SketchConfig::with_slots(256).seed(2));
    store.insert_stream(evaluator.train().edges());
    let sketch = SketchScorer::new(store);

    for measure in Measure::PAPER_TARGETS {
        let e = evaluator.evaluate(&exact, measure, &[]).auc.unwrap();
        let s = evaluator.evaluate(&sketch, measure, &[]).auc.unwrap();
        assert!(e > 0.55, "{measure}: exact AUC {e} has no signal");
        assert!(
            (e - s).abs() < 0.1,
            "{measure}: sketch AUC {s} vs exact {e}"
        );
    }
}

/// Snapshot round-trip in the middle of a stream, then continued
/// ingestion, must equal uninterrupted ingestion — the crash-recovery
/// story.
#[test]
fn snapshot_recovery_mid_stream() {
    let stream = SimulatedDataset::DblpLike.stream(Scale::Small);
    let edges = stream.as_slice();
    let cut = edges.len() / 2;

    let mut first_half = SketchStore::new(SketchConfig::with_slots(64).seed(9));
    first_half.insert_stream(edges[..cut].iter().copied());

    // Serialize through actual JSON bytes, as the CLI does.
    let json = serde_json::to_vec(&StoreSnapshot::capture(&first_half)).unwrap();
    let snap: StoreSnapshot = serde_json::from_slice(&json).unwrap();
    let mut recovered = snap.restore();
    recovered.insert_stream(edges[cut..].iter().copied());

    let mut uninterrupted = SketchStore::new(SketchConfig::with_slots(64).seed(9));
    uninterrupted.insert_stream(edges.iter().copied());

    assert_eq!(recovered.vertex_count(), uninterrupted.vertex_count());
    for v in uninterrupted.vertices() {
        assert_eq!(
            recovered.sketch(v),
            uninterrupted.sketch(v),
            "divergence at {v}"
        );
    }
}

/// Parallel sharded ingestion produces answers identical to sequential
/// for every measure on real dataset streams.
#[test]
fn parallel_ingestion_identical_answers() {
    let stream = SimulatedDataset::YoutubeLike.stream(Scale::Small);
    let edges: Vec<Edge> = stream.as_slice().to_vec();
    let cfg = SketchConfig::with_slots(64).seed(4);
    let seq = ingest_parallel(cfg, &edges, 1);
    let par = ingest_parallel(cfg, &edges, 4);
    for u in 0..50u64 {
        for v in (u + 1)..50u64 {
            let (u, v) = (VertexId(u), VertexId(v));
            assert_eq!(seq.jaccard(u, v), par.jaccard(u, v));
            assert_eq!(seq.adamic_adar(u, v), par.adamic_adar(u, v));
        }
    }
}

/// The reservoir baseline loses vertices at tight budgets while the
/// sketch keeps answering — the coverage contrast of experiment E10.
#[test]
fn sketch_coverage_beats_reservoir_at_tight_memory() {
    let stream = SimulatedDataset::WikiTalkLike.stream(Scale::Small);
    let mut store = SketchStore::new(SketchConfig::with_slots(8).seed(1));
    store.insert_stream(stream.edges());
    let sketch = SketchScorer::new(store);
    let reservoir = ReservoirScorer::from_edges(stream.edges(), 32, 1);

    let exact = ExactScorer::from_edges(stream.edges());
    let pairs = sample_overlap_pairs(exact.graph(), 100, 3);
    let coverage = |s: &dyn Scorer| {
        pairs
            .iter()
            .filter(|&&(u, v)| s.score(Measure::Jaccard, u, v).is_some())
            .count()
    };
    let (sk, rs) = (coverage(&sketch), coverage(&reservoir));
    assert_eq!(sk, pairs.len(), "sketch must cover every seen vertex");
    assert!(
        rs < sk,
        "reservoir should have forgotten vertices: {rs} vs {sk}"
    );
}

/// File formats round-trip through the graphstream codecs at dataset
/// scale.
#[test]
fn dataset_roundtrips_through_codecs() {
    use streamlink::stream::io;
    let stream = SimulatedDataset::FlickrLike.stream(Scale::Small);
    let bin = io::decode_binary(io::encode_binary(stream.as_slice())).unwrap();
    assert_eq!(bin, stream);
    let mut csv = Vec::new();
    io::write_csv(stream.as_slice(), &mut csv).unwrap();
    assert_eq!(io::read_csv(csv.as_slice()).unwrap(), stream);
}

/// The accuracy planner's promises hold on real dataset streams, not just
/// synthetic neighborhoods: at least 90% of pairs are within ε(δ = 0.05).
#[test]
fn accuracy_plan_holds_on_real_streams() {
    use streamlink::sketch::AccuracyPlan;
    let k = 128;
    let eps = AccuracyPlan::error_bound(k, 0.05);
    let stream = SimulatedDataset::DblpLike.stream(Scale::Small);
    let exact = ExactScorer::from_edges(stream.edges());
    let mut store = SketchStore::new(SketchConfig::with_slots(k).seed(11));
    store.insert_stream(stream.edges());

    let pairs = sample_overlap_pairs(exact.graph(), 300, 13);
    let mut violations = 0usize;
    for &(u, v) in &pairs {
        let est = store.jaccard(u, v).unwrap();
        let truth = exact.score(Measure::Jaccard, u, v).unwrap();
        if (est - truth).abs() > eps {
            violations += 1;
        }
    }
    let rate = violations as f64 / pairs.len() as f64;
    assert!(
        rate < 0.10,
        "violation rate {rate} vs promised 0.05 (plus slack)"
    );
}

/// Different measures produce genuinely different rankings (no accidental
/// aliasing between estimator code paths).
#[test]
fn measures_are_distinct() {
    let stream = SimulatedDataset::DblpLike.stream(Scale::Small);
    let mut store = SketchStore::new(SketchConfig::with_slots(256).seed(1));
    store.insert_stream(stream.edges());
    let exact = ExactScorer::from_edges(stream.edges());
    let pairs = sample_overlap_pairs(exact.graph(), 50, 17);

    let collect = |m: Measure| -> Vec<f64> {
        pairs
            .iter()
            .map(|&(u, v)| {
                SketchScorer::new(store.clone())
                    .score(m, u, v)
                    .unwrap_or(0.0)
            })
            .collect()
    };
    let j = collect(Measure::Jaccard);
    let cn = collect(Measure::CommonNeighbors);
    let aa = collect(Measure::AdamicAdar);
    assert_ne!(j, cn);
    assert_ne!(cn, aa);
}
