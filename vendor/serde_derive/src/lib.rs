//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! built directly on `proc_macro` (the environment has no crates.io, so
//! no `syn`/`quote`). Supports exactly the container shapes this
//! workspace uses:
//!
//! * structs with named fields
//! * tuple structs (serialized as arrays, or forwarded when
//!   `#[serde(transparent)]`)
//! * enums with unit variants only, optionally
//!   `#[serde(rename_all = "snake_case")]`
//!
//! Anything else (generics, payload-carrying variants, other serde
//! attributes) produces a compile error naming the limitation, so a
//! future session extending the workspace gets a clear signal instead of
//! silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Container {
    name: String,
    transparent: bool,
    rename_all_snake: bool,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Enum of unit variants.
    Enum(Vec<String>),
}

/// Derives the stand-in `serde::Serialize` (Value-rendering) impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

/// Derives the stand-in `serde::Deserialize` (Value-reading) impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let container = match parse(input) {
        Ok(c) => c,
        Err(msg) => return compile_error(&msg),
    };
    let code = generate(&container, mode);
    code.parse()
        .unwrap_or_else(|e| compile_error(&format!("serde stub derive produced invalid code: {e}")))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal")
}

// ---------------------------------------------------------------- parse

fn parse(input: TokenStream) -> Result<Container, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    let mut transparent = false;
    let mut rename_all_snake = false;

    // Container attributes.
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            inspect_serde_attr(g.stream(), &mut transparent, &mut rename_all_snake)?;
        }
        i += 2;
    }

    // Visibility.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected a type name, found {other:?}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive: generic type `{name}` is not supported"
        ));
    }

    let kind = match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Struct(parse_named_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Tuple(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Enum(parse_unit_variants(g.stream())?)
        }
        _ => return Err(format!("serde stub derive: unsupported shape for `{name}`")),
    };

    Ok(Container {
        name,
        transparent,
        rename_all_snake,
        kind,
    })
}

fn inspect_serde_attr(
    attr: TokenStream,
    transparent: &mut bool,
    rename_all_snake: &mut bool,
) -> Result<(), String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    let is_serde =
        matches!(tokens.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return Ok(()); // doc comments, #[derive(...)], #[default], ...
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return Ok(());
    };
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "transparent" => *transparent = true,
                "rename_all" => {
                    let lit = inner.get(j + 2).map(|t| t.to_string()).unwrap_or_default();
                    if lit != "\"snake_case\"" {
                        return Err(format!(
                            "serde stub derive: only rename_all = \"snake_case\" is supported, got {lit}"
                        ));
                    }
                    *rename_all_snake = true;
                    j += 2;
                }
                other => {
                    return Err(format!(
                        "serde stub derive: unsupported serde attribute `{other}`"
                    ))
                }
            },
            TokenTree::Punct(_) => {}
            other => {
                return Err(format!(
                    "serde stub derive: unexpected token {other} in #[serde(...)]"
                ))
            }
        }
        j += 1;
    }
    Ok(())
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Field attributes and doc comments.
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        // Visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break; // trailing comma
        };
        fields.push(id.to_string());
        i += 1;
        if !matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!(
                "expected `:` after field `{}`",
                fields.last().unwrap()
            ));
        }
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut any = false;
    let mut count = 0usize;
    for tok in body {
        any = true;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // N-1 commas for N fields (tolerating a trailing comma is harmless
    // here: `u64,` still means one field because the trailing comma is
    // followed by nothing).
    if any {
        count + 1
    } else {
        0
    }
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        variants.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                "serde stub derive: variant `{}` carries data; only unit variants are supported",
                variants.last().unwrap()
            ))
            }
            Some(other) => {
                return Err(format!(
                    "serde stub derive: unexpected token {other} after variant"
                ))
            }
        }
    }
    Ok(variants)
}

fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

// ------------------------------------------------------------- generate

fn generate(c: &Container, mode: Mode) -> String {
    match (&c.kind, mode) {
        (Kind::Struct(fields), Mode::Ser) => gen_struct_ser(c, fields),
        (Kind::Struct(fields), Mode::De) => gen_struct_de(c, fields),
        (Kind::Tuple(n), Mode::Ser) => gen_tuple_ser(c, *n),
        (Kind::Tuple(n), Mode::De) => gen_tuple_de(c, *n),
        (Kind::Enum(variants), Mode::Ser) => gen_enum_ser(c, variants),
        (Kind::Enum(variants), Mode::De) => gen_enum_de(c, variants),
    }
}

fn variant_string(c: &Container, variant: &str) -> String {
    if c.rename_all_snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn gen_struct_ser(c: &Container, fields: &[String]) -> String {
    let name = &c.name;
    if c.transparent && fields.len() == 1 {
        let f = &fields[0];
        return format!(
            "impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::value::Value {{
                    ::serde::Serialize::to_value(&self.{f})
                }}
            }}"
        );
    }
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "__obj.push((::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})));"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{
            fn to_value(&self) -> ::serde::value::Value {{
                let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> =
                    ::std::vec::Vec::with_capacity({len});
                {pushes}
                ::serde::value::Value::Object(__obj)
            }}
        }}",
        len = fields.len(),
    )
}

fn gen_struct_de(c: &Container, fields: &[String]) -> String {
    let name = &c.name;
    if c.transparent && fields.len() == 1 {
        let f = &fields[0];
        return format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_value(__v: &::serde::value::Value)
                    -> ::std::result::Result<Self, ::serde::Error> {{
                    ::std::result::Result::Ok({name} {{
                        {f}: ::serde::Deserialize::from_value(__v)?,
                    }})
                }}
            }}"
        );
    }
    let inits: String = fields
        .iter()
        .map(|f| format!("{f}: ::serde::__private::field(__v, {f:?})?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{
            fn from_value(__v: &::serde::value::Value)
                -> ::std::result::Result<Self, ::serde::Error> {{
                ::std::result::Result::Ok({name} {{ {inits} }})
            }}
        }}"
    )
}

fn gen_tuple_ser(c: &Container, n: usize) -> String {
    let name = &c.name;
    if c.transparent || n == 1 {
        return format!(
            "impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::value::Value {{
                    ::serde::Serialize::to_value(&self.0)
                }}
            }}"
        );
    }
    let items: String = (0..n)
        .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{
            fn to_value(&self) -> ::serde::value::Value {{
                ::serde::value::Value::Array(::std::vec![{items}])
            }}
        }}"
    )
}

fn gen_tuple_de(c: &Container, n: usize) -> String {
    let name = &c.name;
    if c.transparent || n == 1 {
        return format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_value(__v: &::serde::value::Value)
                    -> ::std::result::Result<Self, ::serde::Error> {{
                    ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))
                }}
            }}"
        );
    }
    let items: String = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{
            fn from_value(__v: &::serde::value::Value)
                -> ::std::result::Result<Self, ::serde::Error> {{
                match __v {{
                    ::serde::value::Value::Array(__items) if __items.len() == {n} => {{
                        ::std::result::Result::Ok({name}({items}))
                    }}
                    _ => ::std::result::Result::Err(::serde::Error::custom(
                        concat!(\"expected array of length \", {n}, \" for \", {name:?}),
                    )),
                }}
            }}
        }}"
    )
}

fn gen_enum_ser(c: &Container, variants: &[String]) -> String {
    let name = &c.name;
    let arms: String = variants
        .iter()
        .map(|v| {
            let s = variant_string(c, v);
            format!("{name}::{v} => {s:?},")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{
            fn to_value(&self) -> ::serde::value::Value {{
                ::serde::value::Value::String(::std::string::String::from(match self {{
                    {arms}
                }}))
            }}
        }}"
    )
}

fn gen_enum_de(c: &Container, variants: &[String]) -> String {
    let name = &c.name;
    let arms: String = variants
        .iter()
        .map(|v| {
            let s = variant_string(c, v);
            format!("{s:?} => ::std::result::Result::Ok({name}::{v}),")
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{
            fn from_value(__v: &::serde::value::Value)
                -> ::std::result::Result<Self, ::serde::Error> {{
                match __v {{
                    ::serde::value::Value::String(__s) => match __s.as_str() {{
                        {arms}
                        __other => ::std::result::Result::Err(::serde::Error::custom(
                            format!(\"unknown {name} variant {{__other:?}}\"),
                        )),
                    }},
                    _ => ::std::result::Result::Err(::serde::Error::custom(
                        concat!(\"expected string for enum \", {name:?}),
                    )),
                }}
            }}
        }}"
    )
}
