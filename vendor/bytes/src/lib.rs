//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace's codecs use: the [`Buf`] cursor
//! trait over `&[u8]` and [`Bytes`], the [`BufMut`] writer trait over
//! [`BytesMut`] and `Vec<u8>`, and the freeze/deref plumbing between
//! them. Little-endian fixed-width accessors only.

use std::ops::Deref;

/// A cursor over a readable byte region.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, n: usize) {
        (**self).advance(n);
    }
}

/// A writable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable byte buffer with an internal read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the unconsumed bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the unconsumed region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.pos += n;
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fixed_width() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_u8(7);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 13);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64_le(), 42);
        assert_eq!(frozen.get_u8(), 7);
        assert!(!frozen.has_remaining());
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3, 4];
        let mut cursor = &data[..];
        assert_eq!(cursor.get_u8(), 1);
        assert_eq!(cursor.remaining(), 3);
        cursor.advance(1);
        assert_eq!(cursor.chunk(), &[3, 4]);
    }

    #[test]
    fn bytes_indexing_views_unconsumed() {
        let mut b = Bytes::from(vec![9u8, 8, 7]);
        assert_eq!(&b[..2], &[9, 8]);
        b.advance(1);
        assert_eq!(&b[..], &[8, 7]);
        assert_eq!(b.to_vec(), vec![8, 7]);
    }
}
