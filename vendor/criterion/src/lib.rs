//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use — `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — with a deliberately
//! lightweight measurement loop: a short warmup, then a fixed time
//! budget, reporting mean ns/iter to stdout. No statistics, plots, or
//! baselines; the real experiment harness lives in `crates/bench/src/bin`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Time budget per benchmark after warmup.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark name, e.g. `minhash_mixer/64`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into one id.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work done per iteration (reported as a rate).
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; this stub sizes runs by time, not
    /// by sample count.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            measure_for: self.criterion.measure_for,
            result: None,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.result);
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            measure_for: self.criterion.measure_for,
            result: None,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.result);
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, result: Option<Measurement>) {
        let Some(m) = result else {
            println!("{}/{id}: no measurement recorded", self.name);
            return;
        };
        let ns_per_iter = m.total.as_nanos() as f64 / m.iters as f64;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(", {:.3} Melem/s", n as f64 / ns_per_iter * 1e3)
            }
            Throughput::Bytes(n) => {
                format!(
                    ", {:.3} MiB/s",
                    n as f64 / ns_per_iter * 1e9 / (1024.0 * 1024.0) / 1e6
                )
            }
        });
        println!(
            "{}/{id}: {:.1} ns/iter ({} iters{})",
            self.name,
            ns_per_iter,
            m.iters,
            rate.unwrap_or_default()
        );
    }
}

struct Measurement {
    total: Duration,
    iters: u64,
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    measure_for: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    /// Runs `routine` repeatedly for the time budget and records ns/iter.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup + calibration: time a single run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let budget = self.measure_for;
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some(Measurement {
            total: start.elapsed(),
            iters,
        });
    }
}

/// Bundles benchmark functions into a runner callable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(10));
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0u64..10).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 100u64), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut criterion = Criterion {
            measure_for: Duration::from_millis(2),
        };
        sample_bench(&mut criterion);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 64).to_string(), "a/64");
    }
}
