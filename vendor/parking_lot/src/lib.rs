//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the small API subset the workspace uses — `RwLock` and `Mutex` with
//! parking_lot's non-poisoning semantics — implemented over `std::sync`.
//! A poisoned std lock is transparently recovered (`into_inner` on the
//! poison error), which matches parking_lot's behavior of not poisoning
//! at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader–writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(*m.lock(), "ab");
    }

    #[test]
    fn rwlock_recovers_from_panicking_writer() {
        let l = std::sync::Arc::new(RwLock::new(1));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*l.read(), 1);
    }
}
