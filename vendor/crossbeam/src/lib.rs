//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`scope`] with crossbeam's signature (closures receive the
//! scope handle, the call returns `Result` capturing panics) implemented
//! on top of `std::thread::scope`, which has been stable since 1.63.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Error type of [`scope`]: the payload of a panicking closure.
pub type ScopeError = Box<dyn Any + Send + 'static>;

/// A handle for spawning scoped threads; mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// A handle to a spawned scoped thread; mirrors crossbeam's join semantics.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result (`Err` on panic).
    pub fn join(self) -> Result<T, ScopeError> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope handle so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a scope handle; all spawned threads are joined before
/// this returns. Returns `Err` if `f` or any *unjoined* spawned thread
/// panicked, matching crossbeam's contract.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Namespace parity with the real crate (`crossbeam::thread::scope`).
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_and_returns() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        7usize
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(out, 28);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn panicking_thread_surfaces_as_err() {
        let r = scope(|s| {
            s.spawn::<_, ()>(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
