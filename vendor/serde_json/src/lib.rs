//! Offline stand-in for `serde_json`.
//!
//! Serializes/deserializes JSON text through the stand-in `serde` crate's
//! concrete [`Value`] tree. Covers the API surface this workspace uses:
//! `to_string`, `to_string_pretty`, `to_vec`, `from_str`, `from_slice`,
//! the `json!` macro, and the `Value`/`Number` types.

use std::fmt;

pub use serde::value::{Number, Value};
use serde::{Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Convenience alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------ serialize

/// Renders `value` as compact JSON.
///
/// # Errors
/// Infallible for the value shapes this stub produces; `Result` is kept
/// for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders `value` as 2-space-indented JSON.
///
/// # Errors
/// Infallible for the value shapes this stub produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Renders `value` as compact JSON bytes.
///
/// # Errors
/// Infallible for the value shapes this stub produces.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest-roundtrip float formatting and
                // always includes a `.0`/exponent, matching serde_json.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------- deserialize

/// Parses JSON text into any `Deserialize` type.
///
/// # Errors
/// Returns `Err` on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON bytes into any `Deserialize` type.
///
/// # Errors
/// Returns `Err` on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' in array, found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' in object, found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: parse the low half if present.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.eat_literal("\\u") {
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape character {:?}",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or_else(|| Error::new("truncated utf-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|e| Error::new(format!("invalid number {text:?}: {e}")))?,
            )
        } else if text.starts_with('-') {
            Number::NegInt(
                text.parse::<i64>()
                    .map_err(|e| Error::new(format!("invalid number {text:?}: {e}")))?,
            )
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|e| Error::new(format!("invalid number {text:?}: {e}")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

fn utf8_width(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------- json!

/// Builds a [`Value`] from JSON-like syntax. Supports the literal shapes
/// this workspace uses: objects, arrays, literals, and embedded
/// expressions (which must implement `Serialize`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:tt : $value:tt),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::json!($value)) ),*
        ])
    };
    ($other:expr) => {
        ::serde::Serialize::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "name": "edge",
            "count": 3,
            "ratio": 0.5,
            "tags": ["a", "b"],
            "none": null,
            "ok": true,
        });
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            r#"{"name":"edge","count":3,"ratio":0.5,"tags":["a","b"],"none":null,"ok":true}"#
        );
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = json!({"a": 1});
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let back: Value = from_str(r#""line\nbreak é 😀""#).unwrap();
        assert_eq!(back, Value::String("line\nbreak \u{e9} \u{1F600}".into()));
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let back: Value = from_str("[-3, 1e3, -0.25]").unwrap();
        assert_eq!(
            back,
            Value::Array(vec![
                Value::Number(Number::NegInt(-3)),
                Value::Number(Number::Float(1000.0)),
                Value::Number(Number::Float(-0.25)),
            ])
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
    }

    #[test]
    fn typed_roundtrip_via_from_slice() {
        let bytes = to_vec(&vec![1u64, 2, 3]).unwrap();
        let back: Vec<u64> = from_slice(&bytes).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn non_finite_floats_render_null() {
        let text = to_string(&f64::NAN).unwrap();
        assert_eq!(text, "null");
    }
}
