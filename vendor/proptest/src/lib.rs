//! Offline stand-in for `proptest`.
//!
//! Deterministic randomized property testing covering the API surface
//! this workspace uses: the `proptest!` macro, `prop_assert*` /
//! `prop_assume!`, `any::<T>()`, numeric range strategies, tuple
//! strategies, `prop_map`, and `collection::{vec, hash_set}`.
//!
//! Differences from the real crate, by design:
//!
//! * No shrinking — a failing case reports the values via the assertion
//!   message only.
//! * The RNG is seeded from the test's module path + name, so runs are
//!   fully reproducible and failures are stable across invocations.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ------------------------------------------------------------------ rng

/// Deterministic test RNG (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a fixed seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // 128-bit multiply avoids modulo bias well enough for tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Builds the deterministic RNG for a named test.
#[must_use]
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325; // FNV-1a
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h)
}

// ----------------------------------------------------------- config/err

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps offline test runs brisk while
        // still exercising varied inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property failed; the test should fail.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; retry with new inputs.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection with the given message.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

// ------------------------------------------------------------ strategy

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy that post-processes generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + i128::from(rng.below(span))) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + i128::from(rng.below(span + 1))) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.next_f64() * (end - start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Collection sizes accepted by [`collection::vec`] and friends.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.max_exclusive - self.min) as u64;
        self.min + rng.below(span) as usize
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates hash sets whose elements come from `element`.
    ///
    /// If the element domain is too small to reach the drawn size, the
    /// set is returned at whatever size was reachable (the real crate
    /// rejects instead; no caller in this workspace depends on that).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 100 + 1000 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

// -------------------------------------------------------------- macros

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` successful cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    // Callers write `#[test]` on each property (real-proptest idiom);
    // swallow it here since the expansion below emits its own.
    (($config:expr)
     #[test]
     $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut __rejects: u32 = 0;
            let mut __passed: u32 = 0;
            while __passed < __config.cases {
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(__why)) => {
                        __rejects += 1;
                        assert!(
                            __rejects <= 10_000,
                            "prop_assume rejected too many inputs (last: {__why})"
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__why)) => {
                        panic!("property `{}` failed after {} cases: {__why}",
                               stringify!($name), __passed);
                    }
                }
            }
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)+), __l, __r
        );
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "{} (both: {:?})",
            format!($($fmt)+), __l
        );
    }};
}

/// Rejects the current inputs (the case is retried, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The glob-import surface tests expect: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_rng() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(
            crate::test_rng("x").next_u64(),
            crate::test_rng("y").next_u64()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u64..17), &mut rng);
            assert!((5..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = Strategy::generate(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::test_rng("sizes");
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(any::<u8>(), 1..9), &mut rng);
            assert!((1..9).contains(&v.len()));
            let s = Strategy::generate(&crate::collection::hash_set(any::<u64>(), 3..6), &mut rng);
            assert!((3..6).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_up(x in any::<u64>(), y in 1u64..100, mut v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assume!(x != 0);
            v.push(0);
            prop_assert!((1..100).contains(&y));
            prop_assert_ne!(x, 0);
            prop_assert_eq!(v.last().copied(), Some(0), "push failed for {:?}", v);
        }

        #[test]
        fn tuples_and_map(pair in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 19);
        }
    }
}
