//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this crate supplies
//! the serialization surface the workspace actually uses. Instead of
//! serde's visitor-based data model it uses a concrete [`value::Value`]
//! tree: `Serialize` renders into a `Value`, `Deserialize` reads out of
//! one, and the `serde_json` stand-in is the only format on top. The
//! `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! companion `serde_derive` stub) support plain structs, unit-variant
//! enums, `#[serde(transparent)]`, and `#[serde(rename_all =
//! "snake_case")]` — the shapes present in this repository.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

use std::fmt;

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `self` out of a value tree.
    ///
    /// # Errors
    /// Returns a message describing the first shape mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The value to use when an object field is absent entirely
    /// (`None` means "absence is an error"); `Option<T>` overrides this.
    fn absent() -> Option<Self> {
        None
    }
}

// ---------------------------------------------------------------- ser

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Renders a map key as the JSON object-member name, matching serde_json's
/// rule that string and integral keys become strings and anything else is
/// unsupported.
fn key_to_string(key: &Value) -> String {
    match key {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string or number, got {other:?}"),
    }
}

/// Reads a JSON object-member name back into a key type: strings first,
/// then the integral reading (for `VertexId`-style numeric newtypes).
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        return K::from_value(&Value::Number(crate::value::Number::PosInt(u)));
    }
    if let Ok(i) = s.parse::<i64>() {
        return K::from_value(&Value::Number(crate::value::Number::NegInt(i)));
    }
    Err(Error::custom(format!("cannot read map key from {s:?}")))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output regardless of hash seed.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

// ---------------------------------------------------------------- de

fn type_name_of(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

fn mismatch(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", type_name_of(got)))
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| {
                            Error::custom(format!(
                                "number {n} out of range for {}",
                                stringify!($t)
                            ))
                        }),
                    other => Err(mismatch("unsigned integer", other)),
                }
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| {
                            Error::custom(format!(
                                "number {n} out of range for {}",
                                stringify!($t)
                            ))
                        }),
                    other => Err(mismatch("integer", other)),
                }
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => n
                .as_f64()
                .ok_or_else(|| Error::custom(format!("number {n} not representable as f64"))),
            other => Err(mismatch("number", other)),
        }
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(mismatch("bool", other)),
        }
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(mismatch("string", other)),
        }
    }
}

impl Deserialize for &'static str {
    /// Leaks the string to obtain `'static`; acceptable because the only
    /// types using this are small static spec tables deserialized (if
    /// ever) in tests. Real serde instead restricts this impl to
    /// borrowed input.
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(mismatch("array", other)),
        }
    }
}
impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(mismatch(
                        concat!("array of length ", $len),
                        other,
                    )),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(mismatch("object", other)),
        }
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(mismatch("object", other)),
        }
    }
}

/// Support code generated by the derive macros; not part of the public
/// API contract.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up `name` in an object value and deserializes it; absent
    /// fields fall back to [`Deserialize::absent`].
    ///
    /// # Errors
    /// Non-object input, a missing mandatory field, or a field-level
    /// deserialization failure.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v {
            Value::Object(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, fv)) => {
                    T::from_value(fv).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
                }
                None => T::absent().ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            },
            other => Err(super::mismatch("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_via_value() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn integers_deserialize_into_floats() {
        assert_eq!(f64::from_value(&7u64.to_value()).unwrap(), 7.0);
    }

    #[test]
    fn option_handles_null_and_absent() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_value(&5u64.to_value()).unwrap(),
            Some(5)
        );
        let obj = Value::Object(vec![]);
        let missing: Option<u64> = __private::field(&obj, "nope").unwrap();
        assert_eq!(missing, None);
        assert!(__private::field::<u64>(&obj, "nope").is_err());
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let b: Box<[u64]> = v.clone().into_boxed_slice();
        assert_eq!(Box::<[u64]>::from_value(&b.to_value()).unwrap(), b);
        let t = (1u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn out_of_range_is_error() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert!(u64::from_value(&(-1i64).to_value()).is_err());
    }
}
