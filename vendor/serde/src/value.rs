//! The concrete value tree the stand-in serde stack serializes through.

use std::fmt;

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (`Vec` of pairs, not a map) so that
/// serializing the same data twice yields byte-identical output — the
/// snapshot determinism tests rely on this.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any numeric value.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered set of named members.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for other shapes or absent keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The u64 payload, if this is a non-negative integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The f64 reading of any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element sequence, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Renders compact JSON, matching serde_json's `Display` for `Value`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON number: unsigned, negative, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// Reads as u64 if representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(_) => None,
            Number::Float(f) => {
                if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// Reads as i64 if representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Reads as f64 (matches the real serde_json signature; always `Some`,
    /// possibly lossy for huge ints).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        Some(match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        })
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(u) => write!(f, "{u}"),
            Number::NegInt(i) => write!(f, "{i}"),
            Number::Float(x) => write!(f, "{x:?}"),
        }
    }
}
