//! Offline stand-in for the `rand` crate.
//!
//! Implements the API subset the workspace uses — `Rng::{gen, gen_range,
//! gen_bool}`, `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose}` — with a xoshiro256++ generator
//! seeded through SplitMix64. Streams differ from upstream rand's
//! ChaCha-based `StdRng`, which is fine for the statistical tests and
//! generators here; nothing in the repo pins exact historical streams.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words plus derived convenience draws.
pub trait Rng {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw of `T` over its natural domain (`f64`/`f32` in
    /// `[0, 1)`, integers over the full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

/// Construction from seeds; mirrors `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for u8 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges drawable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, bound)` by rejection sampling.
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - u64::MAX % bound;
    loop {
        let word = rng.next_u64();
        if word < zone {
            return word % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the stand-in
    /// for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

/// Slice shuffling and selection; mirrors `rand::seq::SliceRandom`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-export so `use rand::{Rng, SeedableRng}` plus `rand::rngs::StdRng`
/// all resolve as with the real crate.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::uniform_below;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(StdRng::seed_from_u64(9).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(2..=5usize);
            assert!((2..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_below_is_roughly_flat() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[uniform_below(&mut rng, 7) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
        assert_eq!(v.choose(&mut rng).map(|x| *x < 50), Some(true));
    }
}
