//! Sub-linear similar-vertex search with the LSH index.
//!
//! Pairwise queries answer "how similar are u and v?"; real applications
//! ask "*who* is most similar to u?". Scanning all n vertices per query
//! is O(n·k); LSH banding over the sketch slots retrieves a small
//! candidate set in near-constant time, then ranks it with the full
//! sketch. This example measures candidate-set size, recall of the
//! brute-force top-10, and the speedup.
//!
//! ```sh
//! cargo run --release --example similarity_search
//! ```

use std::time::Instant;

use streamlink::data::{Scale, SimulatedDataset};
use streamlink::prelude::*;
use streamlink::sketch::LshIndex;

fn main() {
    let stream = SimulatedDataset::DblpLike.stream(Scale::Small);
    let mut store = SketchStore::new(SketchConfig::with_slots(128).seed(2));
    store.insert_stream(stream.edges());
    let n = store.vertex_count();
    println!(
        "sketched {} vertices from {}",
        n,
        SimulatedDataset::DblpLike
    );

    // 48 bands × 2 rows: candidate threshold ≈ (1/48)^(1/2) ≈ 0.14 — tuned for
    // collaboration graphs where interesting overlaps sit around 0.2-0.5.
    let index = LshIndex::build(&store, 48, 2).expect("128 slots accommodate 48x2");
    println!(
        "LSH index: 48 bands x 2 rows, similarity threshold ~{:.2}, {} bucket entries\n",
        index.threshold(),
        index.entry_count()
    );

    let queries: Vec<VertexId> = store.vertices().take(50).collect();

    // Brute force: score the query against every vertex.
    let t = Instant::now();
    let mut brute: Vec<Vec<(VertexId, f64)>> = Vec::new();
    for &q in &queries {
        let mut scored: Vec<(VertexId, f64)> = store
            .vertices()
            .filter(|&v| v != q)
            .filter_map(|v| store.jaccard(q, v).map(|j| (v, j)))
            .filter(|&(_, j)| j > 0.0)
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(10);
        brute.push(scored);
    }
    let brute_time = t.elapsed();

    // LSH: candidates only.
    let t = Instant::now();
    let mut lsh: Vec<Vec<(VertexId, f64)>> = Vec::new();
    let mut candidate_total = 0usize;
    for &q in &queries {
        candidate_total += index.candidates(&store, q).len();
        lsh.push(index.top_k(&store, q, 10));
    }
    let lsh_time = t.elapsed();

    // Recall of the brute-force top-10 (only counting entries above the
    // index's design threshold — below it, LSH is *designed* to miss).
    let threshold = index.threshold();
    let (mut relevant, mut recovered) = (0usize, 0usize);
    for (bf, approx) in brute.iter().zip(&lsh) {
        let got: std::collections::HashSet<VertexId> = approx.iter().map(|&(v, _)| v).collect();
        for &(v, j) in bf {
            if j >= threshold {
                relevant += 1;
                recovered += usize::from(got.contains(&v));
            }
        }
    }

    println!("queries: {}", queries.len());
    println!(
        "brute force: {:>9.2?} total ({} comparisons/query)",
        brute_time,
        n - 1
    );
    println!(
        "LSH search:  {:>9.2?} total ({:.0} candidates/query, {:.1}x faster)",
        lsh_time,
        candidate_total as f64 / queries.len() as f64,
        brute_time.as_secs_f64() / lsh_time.as_secs_f64().max(1e-9)
    );
    if relevant > 0 {
        println!(
            "recall of above-threshold brute-force hits: {recovered}/{relevant} ({:.0}%)",
            100.0 * recovered as f64 / relevant as f64
        );
    }
}
