//! Sharded ingestion and exact sketch merging.
//!
//! Sketch slots are min-registers, so stores built from edge-disjoint
//! shards merge into *exactly* the store a single sequential pass would
//! produce. This example splits a stream across worker threads, merges,
//! verifies bit-equality of every sketch, and reports the speedup.
//!
//! ```sh
//! cargo run --release --example distributed_merge
//! ```

use std::time::Instant;

use streamlink::prelude::*;
use streamlink::sketch::parallel::ingest_parallel;

fn main() {
    let config = SketchConfig::with_slots(128).seed(11);
    let edges: Vec<Edge> = BarabasiAlbert::new(60_000, 4, 5).edges().collect();
    println!("stream: {} edges over 60k vertices", edges.len());

    let t0 = Instant::now();
    let sequential = ingest_parallel(config, &edges, 1);
    let t_seq = t0.elapsed();

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    let t1 = Instant::now();
    let parallel = ingest_parallel(config, &edges, threads);
    let t_par = t1.elapsed();

    // Verify exactness: every vertex sketch and degree must be identical.
    let mut checked = 0usize;
    for v in sequential.vertices() {
        assert_eq!(
            sequential.sketch(v),
            parallel.sketch(v),
            "sketch diverged at {v}"
        );
        assert_eq!(
            sequential.degree(v),
            parallel.degree(v),
            "degree diverged at {v}"
        );
        checked += 1;
    }
    println!("verified {checked} vertex sketches identical across ingestion modes");

    println!(
        "sequential: {:>8.2?}  ({:.1} M edges/s)",
        t_seq,
        edges.len() as f64 / t_seq.as_secs_f64() / 1e6
    );
    println!(
        "{} threads: {:>8.2?}  ({:.1} M edges/s, {:.2}x)",
        threads,
        t_par,
        edges.len() as f64 / t_par.as_secs_f64() / 1e6,
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );

    // And the merged store answers queries like any other.
    let (u, v) = (VertexId(10), VertexId(11));
    println!(
        "\nsample query after merge: J({u}, {v}) = {:.4}",
        parallel.jaccard(u, v).unwrap_or(0.0)
    );
}
