//! The accuracy story end-to-end: predicted vs measured error bands.
//!
//! Shows the theory modules doing real work: for a sweep of sketch
//! sizes, compare the Hoeffding error bound and the binomial standard
//! deviation against the *measured* error of real sketches, and
//! demonstrate per-query Wilson confidence intervals.
//!
//! ```sh
//! cargo run --release --example accuracy_dashboard
//! ```

use streamlink::data::{Scale, SimulatedDataset};
use streamlink::predict::evaluate::sample_overlap_pairs;
use streamlink::prelude::*;
use streamlink::sketch::AccuracyPlan;

fn main() {
    let stream = SimulatedDataset::DblpLike.stream(Scale::Small);
    let exact = AdjacencyGraph::from_edges(stream.edges());
    let pairs = sample_overlap_pairs(&exact, 400, 3);
    println!(
        "dataset: {} | {} query pairs with overlap\n",
        SimulatedDataset::DblpLike,
        pairs.len()
    );

    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>12}",
        "k", "bound ε(δ=5%)", "binomial σ", "measured MAE", "95% misses"
    );
    for k in [32usize, 64, 128, 256, 512] {
        let mut store = SketchStore::new(SketchConfig::with_slots(k).seed(11));
        store.insert_stream(stream.edges());

        let eps = AccuracyPlan::error_bound(k, 0.05);
        let mut mae = 0.0;
        let mut misses = 0usize;
        let mut sigma_sum = 0.0;
        for &(u, v) in &pairs {
            let truth = exact.jaccard(u, v);
            let est = store.jaccard(u, v).unwrap_or(0.0);
            mae += (est - truth).abs();
            sigma_sum += AccuracyPlan::jaccard_variance(truth, k).sqrt();
            // Wilson interval at 95%: does it cover the truth?
            let matches = (est * k as f64).round() as usize;
            let (lo, hi) = AccuracyPlan::wilson_interval(matches, k, 1.96);
            if truth < lo || truth > hi {
                misses += 1;
            }
        }
        let n = pairs.len() as f64;
        println!(
            "{:>6} {:>14.4} {:>14.4} {:>14.4} {:>11.1}%",
            k,
            eps,
            sigma_sum / n,
            mae / n,
            100.0 * misses as f64 / n
        );
    }

    println!(
        "\nreading: measured MAE tracks the binomial σ (the tight truth), the\n\
         Hoeffding ε is the conservative worst-case band above both, and the\n\
         Wilson 95% intervals miss the truth ≈5% of the time — the guarantee\n\
         the paper's estimators promise, reproduced end to end."
    );
}
