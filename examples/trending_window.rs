//! Sliding-window link prediction: reacting to drift.
//!
//! A long-running stream changes regime mid-flight (a community dissolves
//! and a new one forms). A whole-stream sketch keeps recommending stale
//! partners; the windowed store forgets them and tracks the new regime.
//!
//! ```sh
//! cargo run --release --example trending_window
//! ```

use streamlink::prelude::*;
use streamlink::sketch::WindowedStore;

fn main() {
    let config = SketchConfig::with_slots(128).seed(4);
    let mut whole = SketchStore::new(config);
    // Window: 4 epochs x 500 edges = last ~2000 edges.
    let mut windowed = WindowedStore::new(config, 500, 4);

    let (alice, bob, carol) = (VertexId(1), VertexId(2), VertexId(3));

    // Regime 1 (3000 edges): alice and bob co-occur in community A.
    let feed = |store: &mut SketchStore, win: &mut WindowedStore, u: VertexId, v: VertexId| {
        store.insert_edge(u, v);
        win.insert_edge(u, v);
    };
    for i in 0..1500u64 {
        let w = VertexId(100 + i % 40);
        feed(&mut whole, &mut windowed, alice, w);
        feed(&mut whole, &mut windowed, bob, w);
    }
    println!("after regime 1 (alice ~ bob in community A):");
    report(&whole, &windowed, alice, bob, carol);

    // Regime 2 (3000 edges): alice migrates to community B with carol;
    // bob goes quiet.
    for i in 0..1500u64 {
        let w = VertexId(900 + i % 40);
        feed(&mut whole, &mut windowed, alice, w);
        feed(&mut whole, &mut windowed, carol, w);
    }
    println!("\nafter regime 2 (alice migrated to community B with carol):");
    report(&whole, &windowed, alice, bob, carol);

    println!(
        "\nthe whole-stream sketch still ranks the stale partner (bob) comparable to \
         the current one (carol); the window has forgotten regime 1 entirely."
    );
}

fn report(
    whole: &SketchStore,
    windowed: &WindowedStore,
    alice: VertexId,
    bob: VertexId,
    carol: VertexId,
) {
    let f = |x: Option<f64>| x.map_or("unseen".to_string(), |v| format!("{v:.3}"));
    println!(
        "  whole stream : J(alice, bob) = {:>6}   J(alice, carol) = {:>6}",
        f(whole.jaccard(alice, bob)),
        f(whole.jaccard(alice, carol)),
    );
    println!(
        "  last-2k window: J(alice, bob) = {:>6}   J(alice, carol) = {:>6}",
        f(windowed.jaccard(alice, bob)),
        f(windowed.jaccard(alice, carol)),
    );
}
