//! Surviving an at-least-once feed: plain vs duplicate-robust store.
//!
//! Message queues redeliver. MinHash slots don't care (idempotent), but
//! the plain store's degree counters double-count, inflating CN and AA.
//! The robust store swaps counters for per-vertex HyperLogLog distinct
//! counts and shrugs the duplicates off.
//!
//! ```sh
//! cargo run --release --example unreliable_feed
//! ```

use streamlink::prelude::*;
use streamlink::sketch::RobustStore;
use streamlink::stream::adapters::NoiseInjector;
use streamlink::stream::EdgeStream;

fn main() {
    // The true stream, then what the consumer actually sees: every edge
    // delivered twice on average, plus stray self-loops and reordering.
    let clean = BarabasiAlbert::new(2_000, 4, 42);
    let injector = NoiseInjector {
        duplicate_prob: 1.0,
        self_loop_prob: 0.05,
        max_reorder: 32,
        seed: 7,
    };
    let noisy = injector.apply(&clean);
    println!(
        "clean stream: {} edges; delivered stream: {} records\n",
        clean.edges().count(),
        noisy.len()
    );

    let config = SketchConfig::with_slots(256).seed(1);
    // Ground truth: plain store over the CLEAN stream.
    let mut truth = SketchStore::new(config);
    truth.insert_stream(clean.edges());
    // Consumers of the NOISY stream.
    let mut plain = SketchStore::new(config);
    plain.insert_stream(noisy.as_slice().iter().copied());
    let mut robust = RobustStore::new(config, 10);
    robust.insert_stream(noisy.as_slice().iter().copied());

    let mut pairs = Vec::new();
    for u in 0..80u64 {
        for v in (u + 1)..80u64 {
            let (u, v) = (VertexId(u), VertexId(v));
            if truth.common_neighbors(u, v).unwrap_or(0.0) >= 1.0 {
                pairs.push((u, v));
            }
        }
    }

    let mut plain_err = 0.0;
    let mut robust_err = 0.0;
    for &(u, v) in &pairs {
        let t = truth.common_neighbors(u, v).unwrap();
        plain_err += (plain.common_neighbors(u, v).unwrap() - t).abs();
        robust_err += (robust.common_neighbors(u, v).unwrap() - t).abs();
    }
    let n = pairs.len() as f64;
    println!(
        "common-neighbor MAE over {} overlapping pairs:",
        pairs.len()
    );
    println!(
        "  plain store  (raw counters): {:.3}  <- inflated ~2x by re-delivery",
        plain_err / n
    );
    println!("  robust store (HLL degrees):  {:.3}", robust_err / n);

    let (u, v) = pairs[0];
    println!("\nexample pair ({u}, {v}):");
    println!("  truth CN  = {:.2}", truth.common_neighbors(u, v).unwrap());
    println!("  plain CN  = {:.2}", plain.common_neighbors(u, v).unwrap());
    println!(
        "  robust CN = {:.2}",
        robust.common_neighbors(u, v).unwrap()
    );
    println!(
        "\nmemory: plain {} KiB, robust {} KiB (HLL adds 2^p bytes/vertex)",
        plain.memory_bytes() / 1024,
        robust.memory_bytes() / 1024
    );
}
