//! Predicting future collaborations from a co-authorship stream.
//!
//! Temporal link prediction end-to-end: split a DBLP-like publication
//! stream 80/20 in time, sketch the past, and measure how well each
//! measure's *estimated* scores rank the actual future collaborations —
//! compared against exact scoring on the same candidates.
//!
//! ```sh
//! cargo run --release --example citation_stream
//! ```

use streamlink::data::{Scale, SimulatedDataset};
use streamlink::predict::Evaluator;
use streamlink::prelude::*;

fn main() {
    let stream = SimulatedDataset::DblpLike.stream(Scale::Small);
    println!(
        "stream: {} ({} edges)\n",
        SimulatedDataset::DblpLike,
        stream.len()
    );

    // 80% train / 20% test, 4 negatives per positive.
    let evaluator = Evaluator::new(&stream, 0.8, 4, 99);
    println!(
        "evaluation: {} future collaborations vs {} non-collaborations",
        evaluator.positives().len(),
        evaluator.negatives().len()
    );

    let exact = ExactScorer::from_edges(evaluator.train().edges());
    let mut store = SketchStore::new(SketchConfig::with_slots(256).seed(3));
    store.insert_stream(evaluator.train().edges());
    let sketch = SketchScorer::new(store);

    println!(
        "\n{:<24} {:>12} {:>12} {:>8}",
        "measure", "exact AUC", "sketch AUC", "Δ"
    );
    for measure in Measure::ALL {
        let e = evaluator.evaluate(&exact, measure, &[]);
        let s = evaluator.evaluate(&sketch, measure, &[]);
        let (ea, sa) = (e.auc.unwrap_or(0.5), s.auc.unwrap_or(0.5));
        println!(
            "{:<24} {:>12.4} {:>12.4} {:>8.4}",
            measure.to_string(),
            ea,
            sa,
            (ea - sa).abs()
        );
    }

    println!("\nprecision@k of the sketch-ranked Adamic-Adar recommendations:");
    let report = evaluator.evaluate(&sketch, Measure::AdamicAdar, &[10, 25, 50, 100]);
    for (k, p) in &report.precision_at {
        println!("  precision@{k:<4} = {p:.3}");
    }
}
