//! Friend recommendation from a live social stream.
//!
//! The scenario from the paper's introduction: a social network's edge
//! feed is too fast and too large to store, but the product needs
//! "people you may know" — rank a user's non-neighbors by a neighborhood
//! measure. We sketch the stream, then recommend by estimated Adamic–Adar
//! and check the top-10 against the exact top-10.
//!
//! ```sh
//! cargo run --release --example social_recommendation
//! ```

use streamlink::data::{Scale, SimulatedDataset};
use streamlink::prelude::*;

fn main() {
    // Flickr-like growth stream: heavy-tailed, hub-dominated.
    let stream = SimulatedDataset::FlickrLike.stream(Scale::Small);
    println!(
        "stream: {} ({} edges)",
        SimulatedDataset::FlickrLike,
        stream.len()
    );

    let mut store = SketchStore::new(SketchConfig::with_slots(512).seed(1));
    store.insert_stream(stream.edges());
    let exact = AdjacencyGraph::from_edges(stream.edges());

    // Recommend for a mid-degree user: rank all non-neighbor candidates
    // by estimated AA (a real system would restrict to 2-hop candidates;
    // we brute-force for clarity).
    let user = pick_user(&exact);
    println!("recommending for {user} (degree {})\n", exact.degree(user));

    let mut estimated: Vec<(VertexId, f64)> = Vec::new();
    let mut truth: Vec<(VertexId, f64)> = Vec::new();
    for v in exact.vertices() {
        if v == user || exact.has_edge(user, v) {
            continue;
        }
        if let Some(score) = store.adamic_adar(user, v) {
            estimated.push((v, score));
        }
        truth.push((v, exact.adamic_adar(user, v)));
    }
    let top = |mut list: Vec<(VertexId, f64)>| {
        list.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        list.truncate(10);
        list
    };
    let (est_top, exact_top) = (top(estimated), top(truth));

    println!(
        "{:<6} {:>14} {:>16}",
        "rank", "sketch top-10", "exact top-10"
    );
    for i in 0..10 {
        println!(
            "{:<6} {:>8} {:>5.2} {:>10} {:>5.2}",
            i + 1,
            est_top[i].0.to_string(),
            est_top[i].1,
            exact_top[i].0.to_string(),
            exact_top[i].1
        );
    }

    let exact_set: std::collections::HashSet<_> = exact_top.iter().map(|(v, _)| *v).collect();
    let hits = est_top
        .iter()
        .filter(|(v, _)| exact_set.contains(v))
        .count();
    println!("\nsketch top-10 recovered {hits}/10 of the exact top-10");
    println!(
        "memory: {} KiB of sketches vs {} KiB of exact adjacency",
        store.memory_bytes() / 1024,
        exact.memory_bytes() / 1024
    );
}

/// Pick the vertex whose degree is closest to 20 — enough neighbors to
/// have interesting recommendations, not a hub.
fn pick_user(g: &AdjacencyGraph) -> VertexId {
    g.vertices()
        .min_by_key(|&v| (g.degree(v) as i64 - 20).unsigned_abs())
        .expect("graph is nonempty")
}
