//! Quickstart: sketch a graph stream and compare estimates with exact
//! values.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use streamlink::prelude::*;

fn main() {
    // 1. Configure the sketch: 256 slots per vertex ≈ ±6% Jaccard error
    //    at 95% confidence (see AccuracyPlan).
    let config = SketchConfig::with_slots(256).seed(7);
    let mut store = SketchStore::new(config);

    // 2. A synthetic social stream: 5 000 vertices, preferential
    //    attachment, ~15 000 edges. In production this would be your
    //    event feed.
    let stream = BarabasiAlbert::new(5_000, 3, 42);

    // The exact graph is built here ONLY to show estimation quality; the
    // whole point of sketches is that you don't need it.
    let mut exact = AdjacencyGraph::new();

    for edge in stream.edges() {
        store.insert_edge(edge.src, edge.dst); // O(k) per edge
        exact.insert_edge(edge.src, edge.dst); // O(1) but O(m) memory
    }

    println!(
        "stream ingested: {} edges, {} vertices",
        store.edges_processed(),
        store.vertex_count()
    );
    println!(
        "memory: sketches {} KiB (constant per vertex) vs exact adjacency {} KiB \
         (grows with every edge; the crossover sits at avg degree ~0.4k — see exp_memory)\n",
        store.memory_bytes() / 1024,
        exact.memory_bytes() / 1024
    );

    // 3. Query some pairs.
    println!(
        "{:>10} {:>10} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "u", "v", "J est", "J exact", "CN est", "CN exact", "AA est", "AA exact"
    );
    for (u, v) in [(0u64, 1u64), (1, 2), (2, 3), (10, 20), (5, 50), (100, 200)] {
        let (u, v) = (VertexId(u), VertexId(v));
        let j_est = store.jaccard(u, v).unwrap_or(f64::NAN);
        let cn_est = store.common_neighbors(u, v).unwrap_or(f64::NAN);
        let aa_est = store.adamic_adar(u, v).unwrap_or(f64::NAN);
        println!(
            "{:>10} {:>10} | {:>8.4} {:>8.4} | {:>8.2} {:>8} | {:>8.3} {:>8.3}",
            u.to_string(),
            v.to_string(),
            j_est,
            exact.jaccard(u, v),
            cn_est,
            exact.common_neighbors(u, v),
            aa_est,
            exact.adamic_adar(u, v),
        );
    }

    // 4. The planner tells you how many slots a target accuracy needs.
    let plan = streamlink::sketch::AccuracyPlan::new(0.05, 0.01);
    println!(
        "\nfor ±0.05 Jaccard error at 99% confidence you need k = {} slots ({} bytes/vertex)",
        plan.required_slots(),
        plan.required_slots() * 16
    );
}
